# Convenience targets for the reproduction.

.PHONY: install test bench bench-tiny examples loc clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	python -m pytest tests/ -q

test-verbose:
	python -m pytest tests/ -v

bench:
	python -m pytest benchmarks/ --benchmark-only

bench-tiny:
	REPRO_BENCH_PROFILE=tiny REPRO_BENCH_TIME_LIMIT=30 \
		python -m pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/debug_nonequivalence.py
	python examples/engine_comparison.py
	python examples/architectural_cec.py
	python examples/sdc_analysis.py
	python examples/reproduce_table2.py --profile tiny --skip-fig7

loc:
	find src tests benchmarks examples -name "*.py" | xargs wc -l | tail -1

clean:
	rm -rf benchmarks/.cache .pytest_cache build *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
