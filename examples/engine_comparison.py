#!/usr/bin/env python3
"""Comparing the four equivalence-checking engines.

Runs the simulation-based engine, the SAT sweeping baseline, the BDD
engine and the combined flow on two contrasting workloads:

- a *voter* (majority) circuit — BDD-friendly, SAT-mediocre;
- a *multiplier* — BDD-hostile, SAT-slow, but ideal for exhaustive
  simulation sweeping.

This is the paper's core argument in miniature: no single engine wins
everywhere, and exhaustive simulation covers ground SAT struggles with.

Run:  python examples/engine_comparison.py
"""

import time

from repro import (
    BddChecker,
    SatSweepChecker,
    SimSweepEngine,
    CombinedChecker,
    multiplier,
    voter,
)
from repro.synth.resyn import compress2


def time_checker(name, checker, original, optimized):
    start = time.perf_counter()
    result = checker.check(original, optimized)
    seconds = time.perf_counter() - start
    extra = ""
    if hasattr(result.report, "reduction_percent") and result.reduced_miter:
        extra = f" (residue {result.reduced_miter.num_ands} ANDs)"
    print(f"  {name:<22} {result.status.value:<13} {seconds:7.2f}s{extra}")
    return result


def main() -> None:
    for label, factory in [("voter(63)", lambda: voter(63)),
                           ("multiplier(7)", lambda: multiplier(7))]:
        original = factory()
        optimized = compress2(original)
        print(f"\n=== {label}: {original.num_ands} -> {optimized.num_ands} ANDs ===")
        time_checker("sim engine", SimSweepEngine(), original, optimized)
        time_checker("SAT sweeping", SatSweepChecker(), original, optimized)
        time_checker("BDD", BddChecker(node_limit=2_000_000), original, optimized)
        time_checker("combined (paper flow)", CombinedChecker(), original, optimized)


if __name__ == "__main__":
    main()
