#!/usr/bin/env python3
"""LUT mapping with priority cuts, verified by our own CEC engine.

The paper's cut generator comes straight from LUT-mapping technology
(priority cuts, ICCAD'07).  This example closes the loop: map a circuit
onto 6-input LUTs, re-synthesise the LUT network back into an AIG, and
prove the round trip equivalent with the simulation-based engine.

Run:  python examples/lut_mapping.py
"""

from repro import check_equivalence
from repro.bench.generators import kogge_stone_adder, multiplier
from repro.map import lut_network_to_aig, map_luts


def demo(label, aig, k):
    network = map_luts(aig, k=k)
    print(f"\n{label}: {aig.num_ands} ANDs, depth {aig.depth()}")
    print(f"  mapped -> {network.num_luts} LUT{k}s, depth {network.depth()}")
    remade = lut_network_to_aig(network)
    print(f"  re-synthesised -> {remade.num_ands} ANDs")
    result = check_equivalence(aig, remade)
    print(f"  CEC verdict: {result.status.value} "
          f"(engine reduced {result.report.reduction_percent:.1f}%)")
    assert result.is_equivalent


def main() -> None:
    demo("multiplier(6)", multiplier(6), k=6)
    demo("kogge_stone_adder(16)", kogge_stone_adder(16), k=4)


if __name__ == "__main__":
    main()
