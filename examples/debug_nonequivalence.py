#!/usr/bin/env python3
"""Debugging a buggy netlist with counter-examples.

Injects a subtle single-minterm bug into an optimised square circuit —
the kind of corruption random simulation almost never catches — then
shows the checker disproving equivalence and replaying the returned
counter-example on both circuits.

Run:  python examples/debug_nonequivalence.py
"""

from repro import check_equivalence, square
from repro.aig.builder import AigBuilder
from repro.bench.wordlib import equals_const
from repro.synth.resyn import compress2


def inject_bug(aig, trigger_value: int):
    """Flip output bit 5 when the input equals ``trigger_value``."""
    builder = AigBuilder(aig.num_pis, name=aig.name + "_buggy")
    mapping = builder.import_cone(aig, {pi: 2 * pi for pi in aig.pis()})
    outs = [mapping[po >> 1] ^ (po & 1) for po in aig.pos]
    pis = [2 * pi for pi in aig.pis()]
    trigger = equals_const(builder, pis, trigger_value)
    outs[5] = builder.add_xor(outs[5], trigger)
    builder.add_pos(outs)
    return builder.build()


def main() -> None:
    original = square(8)
    optimized = compress2(original)
    buggy = inject_bug(optimized, trigger_value=0xB7)
    print(f"checking {original.name} vs a netlist corrupted on one input pattern")

    result = check_equivalence(original, buggy)
    print(f"verdict: {result.status.value}")
    assert result.status.value == "nonequivalent"

    cex = result.cex
    value = sum(bit << i for i, bit in enumerate(cex))
    print(f"counter-example: x = {value} (pattern {cex})")
    good = original.evaluate(cex)
    bad = buggy.evaluate(cex)
    print(f"original outputs : {good}")
    print(f"buggy outputs    : {bad}")
    diff = [i for i, (g, b) in enumerate(zip(good, bad)) if g != b]
    print(f"outputs differing: {diff}")
    assert value == 0xB7 and diff == [5]


if __name__ == "__main__":
    main()
