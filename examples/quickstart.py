#!/usr/bin/env python3
"""Quickstart: prove a logic optimisation correct.

Builds an 8-bit multiplier, optimises it with the resyn2-like script,
and proves original == optimised with the paper's combined flow
(simulation-based sweeping engine + SAT residue checking).

Run:  python examples/quickstart.py
"""

from repro import check_equivalence, multiplier, resyn2


def main() -> None:
    original = multiplier(8)
    print(f"original : {original.num_ands} AND gates, depth {original.depth()}")

    optimized = resyn2(original)
    print(f"optimized: {optimized.num_ands} AND gates, depth {optimized.depth()}")

    result = check_equivalence(original, optimized)
    print(f"\nverdict  : {result.status.value}")
    report = result.report
    print(f"engine   : {report.total_seconds:.2f}s, "
          f"miter reduced by {report.reduction_percent:.1f}%")
    for phase in report.phases:
        print(f"  phase {phase.kind}: {phase.seconds:.3f}s, "
              f"{phase.proved} proved / {phase.candidates} candidates")
    assert result.is_equivalent


if __name__ == "__main__":
    main()
