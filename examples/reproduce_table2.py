#!/usr/bin/env python3
"""Reproduce the paper's Table II (and print Fig. 6 / Fig. 7 data).

Builds the benchmark suite (original vs resyn2-optimised, enlarged by
``double``), runs the three checkers per case and prints the Table II
layout, then the Fig. 6 phase breakdown and the Fig. 7 normalised
intermediate-miter times.

Run:  python examples/reproduce_table2.py --profile tiny          # ~1 min
      python examples/reproduce_table2.py --profile default       # long
      python examples/reproduce_table2.py --cases multiplier,voter
"""

import argparse

from repro.bench.harness import (
    format_fig6,
    format_fig7,
    format_table2,
    run_fig6,
    run_fig7,
    run_table2,
)
from repro.bench.suite import default_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="tiny",
                        choices=["tiny", "default"])
    parser.add_argument("--cases", default=None,
                        help="comma-separated subset of case names")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="per-baseline wall clock budget (seconds)")
    parser.add_argument("--skip-fig7", action="store_true")
    args = parser.parse_args()

    only = args.cases.split(",") if args.cases else None
    print(f"building suite (profile={args.profile}) ...")
    cases = default_suite(args.profile, only=only)
    for case in cases:
        stats = case.stats()
        print(f"  {case.name:<18} miter {stats['miter_nodes']:>7} ANDs, "
              f"{stats['miter_levels']:>4} levels")

    print("\nrunning Table II comparison ...")
    rows = run_table2(cases, baseline_time_limit=args.time_limit)
    print(format_table2(rows))

    print("\nFig. 6 — engine phase breakdown:")
    print(format_fig6(run_fig6(cases)))

    if not args.skip_fig7:
        print("\nFig. 7 — SAT time on intermediate miters (normalised):")
        fig7_cases = [c for c in cases
                      if not c.name.startswith(("log2", "sin", "sqrt"))]
        print(format_fig7(run_fig7(fig7_cases, time_limit=args.time_limit)))


if __name__ == "__main__":
    main()
