#!/usr/bin/env python3
"""Architectural equivalence checking.

The hardest CEC instances are not resynthesised netlists but genuinely
different *architectures* of the same arithmetic: a ripple-carry vs a
carry-select vs a Kogge–Stone adder, or an array vs a Wallace-tree
multiplier.  Internal equivalences between such designs are sparse
(mostly at word boundaries), which is exactly the regime where PO-level
exhaustive simulation shines and internal sweeping struggles.

Run:  python examples/architectural_cec.py
"""

import time

from repro import CombinedChecker, SatSweepChecker, multiplier
from repro.bench.generators import (
    adder,
    carry_select_adder,
    kogge_stone_adder,
    wallace_multiplier,
)


def check(label, a, b, sat_limit=60.0):
    print(f"\n=== {label}: {a.num_ands} vs {b.num_ands} ANDs, "
          f"depth {a.depth()} vs {b.depth()} ===")
    combined = CombinedChecker(
        sat_checker=SatSweepChecker(time_limit=sat_limit)
    )
    start = time.perf_counter()
    result = combined.check(a, b)
    seconds = time.perf_counter() - start
    print(f"  combined flow: {result.status.value} in {seconds:.2f}s "
          f"(engine reduced {combined.timings.reduction_percent:.1f}%)")
    assert result.status.value == "equivalent"


def main() -> None:
    width = 10
    ripple = adder(width)
    check("ripple vs carry-select", ripple, carry_select_adder(width))
    check("ripple vs Kogge-Stone", ripple, kogge_stone_adder(width))
    check("carry-select vs Kogge-Stone",
          carry_select_adder(width), kogge_stone_adder(width))
    check("array vs Wallace multiplier",
          multiplier(7), wallace_multiplier(7))


if __name__ == "__main__":
    main()
