#!/usr/bin/env python3
"""Why cut selection matters: measuring SDCs at candidate cuts.

Local function checking (paper §III-C) proves a pair only when the
local truth tables match; satisfiability don't-cares (SDCs) at the cut
can mask a real equivalence.  The paper's Table I criteria are designed
to pick cuts with few SDCs — small cuts that pull reconvergence inside
the cone, and high-fanout nodes as cut points.

This script enumerates cuts for nodes of a multiplier and reports, per
Table I pass, the average SDC ratio and reconvergence of the selected
cuts, empirically backing the §III-C1 design discussion.

Run:  python examples/sdc_analysis.py
"""

from repro import multiplier
from repro.analysis import reconvergent_node_count, sdc_ratio
from repro.cuts.enumeration import CutEnumerator
from repro.cuts.selection import CutSelector


def main() -> None:
    aig = multiplier(5)
    fanouts = aig.fanout_counts()
    levels = aig.levels()

    print(f"circuit: {aig.name} ({aig.num_ands} ANDs)\n")
    print(f"{'pass':<6}{'cuts':>6}{'avg size':>10}{'avg SDC%':>10}"
          f"{'avg reconv':>12}")
    for pass_id in (1, 2, 3):
        selector = CutSelector(pass_id, fanouts, levels)
        enumerator = CutEnumerator(aig, k_l=5, num_priority=4,
                                   selector=selector)
        sizes, sdcs, reconv, count = 0.0, 0.0, 0.0, 0
        for _level, nodes in enumerator.run({}):
            for node in nodes:
                if levels[node] < 3:    # skip trivial shallow cones
                    continue
                for cut in enumerator.priority_cuts(node)[:2]:
                    if len(cut) < 2:
                        continue
                    try:
                        ratio = sdc_ratio(aig, cut, max_support=12)
                    except ValueError:
                        continue
                    sizes += len(cut)
                    sdcs += ratio
                    reconv += reconvergent_node_count(aig, node, cut)
                    count += 1
        if count:
            print(f"{pass_id:<6}{count:>6}{sizes / count:>10.2f}"
                  f"{100 * sdcs / count:>10.2f}{reconv / count:>12.2f}")

    print("\ninterpretation: passes preferring small, high-fanout cuts")
    print("(pass 1) keep SDC ratios low, which is exactly why identical")
    print("local functions at those cuts usually exist for true equivalences.")


if __name__ == "__main__":
    main()
