#!/usr/bin/env python3
"""A guided tour of the engine's internals.

Reproduces the Fig. 5 flow *manually* — partial simulation, equivalence
classes, one global-checking batch, one cut-generation pass — printing
what each stage sees.  Useful for understanding the paper's machinery
(and this code base) one step at a time.

Run:  python examples/sweep_internals.py
"""

from repro.aig.literals import lit
from repro.aig.miter import build_miter
from repro.aig.traversal import supports_capped
from repro.bench.generators import multiplier
from repro.cuts.common import common_cuts
from repro.cuts.enumeration import CutEnumerator
from repro.cuts.selection import CutSelector
from repro.simulation.exhaustive import ExhaustiveSimulator, PairStatus
from repro.simulation.merging import merge_windows
from repro.simulation.window import Pair, build_window
from repro.sweep.classes import SimulationState
from repro.synth.resyn import compress2


def main() -> None:
    original = multiplier(5)
    optimized = compress2(original)
    miter = build_miter(original, optimized)
    print(f"miter: {miter.num_ands} ANDs, {miter.num_pos} POs, "
          f"{miter.num_pis} PIs\n")

    # --- Step 1: partial simulation initialises equivalence classes ---
    state = SimulationState(miter.num_pis, num_random_words=8, seed=1)
    classes = state.classes(miter)
    sizes = sorted((len(c.members) for c in classes), reverse=True)
    print(f"step 1 — partial simulation ({state.num_patterns} patterns):")
    print(f"  {len(classes)} candidate classes, "
          f"{sum(s - 1 for s in sizes)} candidate pairs, "
          f"largest class {sizes[0] if sizes else 0} members")

    # --- Step 2: one global-checking batch (the G phase's core) ---
    supports = supports_capped(miter, 14)
    windows = []
    for repr_node, node, phase in classes.all_pairs():
        sr, sn = supports[repr_node], supports[node]
        if sr is None or sn is None or len(sr | sn) > 14:
            continue
        union = sorted(sr | sn)
        roots = [x for x in (repr_node, node) if x and x not in (sr | sn)]
        windows.append(build_window(
            miter, union, roots,
            [Pair(lit(repr_node), lit(node, phase), tag=node)],
        ))
    merged = merge_windows(miter, windows, k_s=14)
    print(f"\nstep 2 — global checking: {len(windows)} windows "
          f"merged into {len(merged)}")
    simulator = ExhaustiveSimulator()
    outcomes = simulator.run(miter, merged)
    equal = sum(1 for o in outcomes if o.status is PairStatus.EQUAL)
    print(f"  exhaustive simulation: {equal}/{len(outcomes)} pairs proved, "
          f"{simulator.stats.rounds} rounds, "
          f"{simulator.stats.words_simulated} words simulated")

    # --- Step 3: one cut-generation pass (the L phase's core) ---
    repr_of = {}
    pair_info = {}
    for c in classes:
        for m in c.members:
            repr_of[m] = c.representative
        for r, n, phase in c.candidate_pairs():
            if miter.is_and(n):
                pair_info[n] = (r, phase)
    selector = CutSelector(1, miter.fanout_counts(), miter.levels())
    enumerator = CutEnumerator(miter, k_l=8, num_priority=8, selector=selector)
    total_cuts = 0
    usable_common = 0
    for _level, nodes in enumerator.run(repr_of):
        for node in nodes:
            total_cuts += len(enumerator.priority_cuts(node))
            info = pair_info.get(node)
            if info:
                r = info[0]
                pr = enumerator.priority_cuts(r) if r else []
                usable_common += len(
                    common_cuts(pr, enumerator.priority_cuts(node), 8)
                )
    print(f"\nstep 3 — cut pass 1 (Table I criteria): "
          f"{total_cuts} priority cuts enumerated, "
          f"{usable_common} usable common cuts across "
          f"{len(pair_info)} pairs")
    print("\n(the real engine interleaves checking with enumeration via the")
    print(" bounded buffer of Algorithm 2, reduces the miter after each")
    print(" phase, and repeats until nothing changes — see SimSweepEngine)")


if __name__ == "__main__":
    main()
