"""Shared fixtures for the experiment benchmarks.

Environment knobs
-----------------
``REPRO_BENCH_PROFILE``
    Suite profile: ``default`` (Table II shape, minutes) or ``tiny``
    (seconds; used in CI smoke runs).
``REPRO_BENCH_CASES``
    Comma-separated case subset, e.g. ``multiplier,voter``.
``REPRO_BENCH_TIME_LIMIT``
    Per-engine wall-clock budget in seconds for the SAT baselines
    (default 120).  Mirrors the paper's timeout handling (ABC timed out
    after 122 days on log2_10xd; speed-ups there use the timeout value).

Suite construction (generation + resyn2) is cached on disk under
``benchmarks/.cache`` so repeated benchmark runs skip synthesis.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List

import pytest

from repro.aig.aiger import read_aiger, write_aiger
from repro.bench.suite import (
    SUITE_PROFILES,
    SUITE_VERSION,
    BenchmarkCase,
    default_suite,
)

CACHE_DIR = Path(__file__).parent / ".cache"


def bench_profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "default")


def bench_time_limit() -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "120"))


def bench_case_names() -> List[str]:
    profile = bench_profile()
    names = list(SUITE_PROFILES[profile])
    subset = os.environ.get("REPRO_BENCH_CASES")
    if subset:
        wanted = {n.strip() for n in subset.split(",")}
        names = [n for n in names if n in wanted]
    return names


def _cache_paths(profile: str, name: str):
    base = CACHE_DIR / f"{profile}_v{SUITE_VERSION}"
    return base / f"{name}_orig.aig", base / f"{name}_opt.aig"


def _load_or_build(profile: str, name: str) -> BenchmarkCase:
    from repro.aig.transform import double

    factory, doublings = SUITE_PROFILES[profile][name]
    orig_path, opt_path = _cache_paths(profile, name)
    case_name = f"{name}_{doublings}xd" if doublings else name
    if orig_path.exists() and opt_path.exists():
        original = read_aiger(orig_path)
        optimized = read_aiger(opt_path)
        original.name = f"{case_name}_orig"
        optimized.name = f"{case_name}_opt"
        return BenchmarkCase(
            name=case_name,
            original=original,
            optimized=optimized,
            doublings=doublings,
        )
    case = default_suite(profile, only=[name])[0]
    orig_path.parent.mkdir(parents=True, exist_ok=True)
    write_aiger(case.original, orig_path)
    write_aiger(case.optimized, opt_path)
    return case


_CASE_CACHE: Dict[str, BenchmarkCase] = {}


def get_case(name: str) -> BenchmarkCase:
    """Fetch (and memoise) one suite case by its profile-local name."""
    profile = bench_profile()
    key = f"{profile}:{name}"
    if key not in _CASE_CACHE:
        _CASE_CACHE[key] = _load_or_build(profile, name)
    return _CASE_CACHE[key]


@pytest.fixture(scope="session")
def time_limit() -> float:
    return bench_time_limit()


class ResultBoard:
    """Collects per-case results and prints a report at session end."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.rows: Dict[str, object] = {}

    def add(self, name: str, row) -> None:
        self.rows[name] = row


_BOARDS: List[ResultBoard] = []


def get_board(title: str) -> ResultBoard:
    for board in _BOARDS:
        if board.title == title:
            return board
    board = ResultBoard(title)
    _BOARDS.append(board)
    return board


def pytest_sessionfinish(session, exitstatus):
    """Print the assembled experiment tables and dump them as JSON."""
    import dataclasses
    import json
    import re
    import sys

    results_dir = Path(__file__).parent / "results"
    for board in _BOARDS:
        if not board.rows:
            continue
        formatter = getattr(board, "formatter", None)
        print(f"\n===== {board.title} =====", file=sys.stderr)
        if formatter:
            print(formatter(list(board.rows.values())), file=sys.stderr)
        else:
            for name, row in board.rows.items():
                print(f"{name}: {row}", file=sys.stderr)
        # Machine-readable copy for EXPERIMENTS.md regeneration.
        results_dir.mkdir(exist_ok=True)
        slug = re.sub(r"[^a-z0-9]+", "_", board.title.lower()).strip("_")
        payload = {}
        for name, row in board.rows.items():
            if dataclasses.is_dataclass(row):
                payload[name] = dataclasses.asdict(row)
            else:
                payload[name] = row
        with open(results_dir / f"{slug}.json", "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
