"""Ablations of the design choices the paper calls out.

- **Window merging** (§III-B3): merging overlapping global-checking
  windows cuts the simulation-table slot count; disabled, the P/G phases
  simulate shared logic repeatedly.
- **Similarity-driven cut selection** (§III-C1): without it the cuts of
  a pair tend not to overlap, so fewer common cuts of size ≤ k_l exist
  and local checking proves less per pass.
- **Table I pass diversity**: any single pass proves less than the
  three-pass rotation.
- **EC transfer** (§V): carrying the engine's pattern pool into the SAT
  back end avoids re-disproving pairs the engine already refuted.
- **Adaptive pass disabling** (§V): passes that prove nothing stop
  being run in later local phases.
"""

from __future__ import annotations

import pytest

from repro.portfolio.checker import CombinedChecker
from repro.sat.sweeping import SatSweepChecker
from repro.simulation.exhaustive import ExhaustiveSimulator
from repro.simulation.merging import merge_windows, total_simulation_slots
from repro.simulation.window import Pair, build_window
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine

from conftest import get_board, get_case


def _mergeable_case():
    """square has many overlapping PO cones — the merging showcase."""
    return get_case("square")


def test_window_merging_ablation(benchmark):
    """Merging must reduce simulation slots and not change the verdict."""
    case = _mergeable_case()
    miter = case.miter
    from repro.aig.traversal import supports_capped

    supports = supports_capped(miter, 24)
    windows = []
    for i, po in enumerate(miter.pos):
        supp = supports[po >> 1]
        if supp is None or not supp:
            continue
        roots = [po >> 1] if (po >> 1) not in supp else []
        windows.append(
            build_window(miter, sorted(supp), roots, [Pair(po, 0, tag=i)])
        )
    merged = benchmark(merge_windows, miter, windows, 24)
    plain_slots = total_simulation_slots(windows)
    merged_slots = total_simulation_slots(merged)
    board = get_board("Ablation — window merging (slots)")
    board.add(case.name, {
        "windows": f"{len(windows)} -> {len(merged)}",
        "slots": f"{plain_slots} -> {merged_slots}",
    })
    assert merged_slots <= plain_slots
    assert len(merged) <= len(windows)
    # Verdicts unchanged on a sample of the batch.
    sim = ExhaustiveSimulator()
    sample = windows[:4]
    sample_tags = {p.tag for w in sample for p in w.pairs}
    plain = {
        o.pair.tag: o.status for o in sim.run(miter, sample)
    }
    merged_sample = [
        w for w in merge_windows(miter, sample, 24)
    ]
    again = {
        o.pair.tag: o.status
        for o in sim.run(miter, merged_sample)
        if o.pair.tag in sample_tags
    }
    assert plain == again


def test_window_merging_engine_speed(benchmark):
    """Engine wall-clock with merging on vs off (P-phase heavy case)."""
    case = _mergeable_case()
    with_merge = SimSweepEngine(EngineConfig(window_merging=True))
    without_merge = SimSweepEngine(EngineConfig(window_merging=False))

    result_on = benchmark.pedantic(
        lambda: with_merge.check_miter(case.miter), rounds=1, iterations=1
    )
    import time

    start = time.perf_counter()
    result_off = without_merge.check_miter(case.miter)
    off_seconds = time.perf_counter() - start
    assert result_on.status == result_off.status
    board = get_board("Ablation — window merging (engine seconds)")
    board.add(case.name, {
        "merged": round(result_on.report.total_seconds, 2),
        "unmerged": round(off_seconds, 2),
    })


def test_similarity_ablation(benchmark):
    """Similarity-driven selection should not prove fewer pairs."""
    case = get_case("multiplier")
    config_on = EngineConfig(similarity_selection=True, max_local_phases=4)
    config_off = EngineConfig(similarity_selection=False, max_local_phases=4)

    result_on = benchmark.pedantic(
        lambda: SimSweepEngine(config_on).check_miter(case.miter),
        rounds=1,
        iterations=1,
    )
    result_off = SimSweepEngine(config_off).check_miter(case.miter)

    def local_proved(result):
        return sum(p.proved for p in result.report.phases if p.kind == "L")

    board = get_board("Ablation — similarity-driven cut selection")
    board.add(case.name, {
        "proved_with_similarity": local_proved(result_on),
        "proved_without": local_proved(result_off),
    })
    assert result_on.status is not CecStatus.NONEQUIVALENT
    assert result_off.status is not CecStatus.NONEQUIVALENT


@pytest.mark.parametrize("passes", [(1,), (2,), (3,), (1, 2, 3)])
def test_cut_pass_ablation(benchmark, passes):
    """Each Table I pass alone vs the three-pass rotation."""
    case = get_case("voter")
    config = EngineConfig(passes=passes, max_local_phases=4)
    result = benchmark.pedantic(
        lambda: SimSweepEngine(config).check_miter(case.miter),
        rounds=1,
        iterations=1,
    )
    assert result.status is not CecStatus.NONEQUIVALENT
    board = get_board("Ablation — Table I pass selection (voter)")
    board.add(f"passes={passes}", {
        "reduction_percent": round(result.report.reduction_percent, 1),
    })


def test_ec_transfer_ablation(benchmark, time_limit):
    """§V: transferring the pattern pool to the SAT back end."""
    case = get_case("vga_lcd")
    sat = lambda: SatSweepChecker(time_limit=time_limit)

    with_transfer = CombinedChecker(sat_checker=sat(), transfer_ecs=True)
    without_transfer = CombinedChecker(sat_checker=sat(), transfer_ecs=False)

    result_on = benchmark.pedantic(
        lambda: with_transfer.check_miter(case.miter), rounds=1, iterations=1
    )
    result_off = without_transfer.check_miter(case.miter)
    assert result_on.status is not CecStatus.NONEQUIVALENT
    assert result_off.status is not CecStatus.NONEQUIVALENT
    board = get_board("Ablation — EC transfer to the SAT back end")
    board.add(case.name, {
        "sat_disproved_with_transfer": with_transfer.sat_checker.stats.disproved_pairs,
        "sat_disproved_without": without_transfer.sat_checker.stats.disproved_pairs,
        "sat_seconds_with": round(with_transfer.timings.sat_seconds, 2),
        "sat_seconds_without": round(without_transfer.timings.sat_seconds, 2),
    })
    # Pairs the engine already refuted need not be re-disproved by SAT.
    assert (
        with_transfer.sat_checker.stats.disproved_pairs
        <= without_transfer.sat_checker.stats.disproved_pairs
    )


@pytest.mark.parametrize("strategy", ["random", "counting", "walking", "mixed"])
def test_pattern_strategy_ablation(benchmark, strategy):
    """Initial-pattern quality ([3],[20]): effect on class refinement.

    Better patterns split spurious classes earlier, so the engine wastes
    fewer exhaustive checks on pairs that are not equivalent (visible as
    fewer G-phase CEXs and fewer candidates overall).
    """
    case = get_case("voter")
    config = EngineConfig(pattern_strategy=strategy, max_local_phases=2)
    result = benchmark.pedantic(
        lambda: SimSweepEngine(config).check_miter(case.miter),
        rounds=1,
        iterations=1,
    )
    assert result.status is not CecStatus.NONEQUIVALENT
    board = get_board("Ablation — initial pattern strategy (voter)")
    candidates = sum(p.candidates for p in result.report.phases)
    cexs = sum(p.cex for p in result.report.phases)
    board.add(strategy, {"candidates": candidates, "cex": cexs})


def test_adaptive_passes_ablation(benchmark):
    """§V: disabling unproductive passes cannot change soundness."""
    case = get_case("sqrt")
    adaptive = EngineConfig(adaptive_passes=True)
    fixed = EngineConfig(adaptive_passes=False)
    result_adaptive = benchmark.pedantic(
        lambda: SimSweepEngine(adaptive).check_miter(case.miter),
        rounds=1,
        iterations=1,
    )
    result_fixed = SimSweepEngine(fixed).check_miter(case.miter)
    assert result_adaptive.status is not CecStatus.NONEQUIVALENT
    assert result_fixed.status is not CecStatus.NONEQUIVALENT
    board = get_board("Ablation — adaptive pass disabling (sqrt)")
    board.add(case.name, {
        "adaptive_seconds": round(result_adaptive.report.total_seconds, 2),
        "fixed_seconds": round(result_fixed.report.total_seconds, 2),
        "adaptive_reduction": round(result_adaptive.report.reduction_percent, 1),
        "fixed_reduction": round(result_fixed.report.reduction_percent, 1),
    })
