"""Table II: runtime comparison of the three checkers.

For every suite case this benchmarks

- the SAT sweeping baseline (ABC ``&cec`` substitute) on the full miter,
- the portfolio checker (Conformal substitute),
- the combined simulation-engine + SAT flow ("Ours"),

asserts that all conclusive verdicts agree (every case is equivalent by
construction), and assembles the Table II text report at session end.
Baselines run under ``REPRO_BENCH_TIME_LIMIT``; a timeout is reported in
the status column and — like the paper's 122-day ABC timeout — the
time-limit value enters the speed-up column.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import Table2Row, format_table2, geomean
from repro.portfolio.checker import CombinedChecker, PortfolioChecker
from repro.sat.sweeping import SatSweepChecker
from repro.sweep.engine import CecStatus

from conftest import bench_case_names, get_board, get_case

CASES = bench_case_names()

_PARTIAL: dict = {}


def _board():
    board = get_board("Table II — runtime comparison")
    board.formatter = format_table2
    return board


def _record(case_name: str, key: str, value) -> None:
    entry = _PARTIAL.setdefault(case_name, {})
    entry[key] = value
    wanted = {"abc", "cfm", "ours"}
    if wanted <= set(entry):
        case = get_case(case_name)
        stats = case.stats()
        abc_sec, abc_status = entry["abc"]
        cfm_sec, cfm_status = entry["cfm"]
        ours = entry["ours"]
        row = Table2Row(
            name=case.name,
            pis=stats["pis"],
            pos=stats["pos"],
            miter_nodes=stats["miter_nodes"],
            miter_levels=stats["miter_levels"],
            abc_seconds=abc_sec,
            abc_status=abc_status,
            cfm_seconds=cfm_sec,
            cfm_status=cfm_status,
            gpu_seconds=ours["engine_seconds"],
            reduced_percent=ours["reduced"],
            residue_sat_seconds=ours["sat_seconds"],
            total_seconds=ours["total"],
            ours_status=ours["status"],
        )
        _board().add(case.name, row)


@pytest.mark.parametrize("case_name", CASES)
def test_table2_sat_baseline(benchmark, case_name, time_limit):
    case = get_case(case_name)
    checker = SatSweepChecker(time_limit=time_limit)

    def run():
        return checker.check_miter(case.miter)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status in (CecStatus.EQUIVALENT, CecStatus.UNDECIDED)
    _record(case_name, "abc", (benchmark.stats.stats.mean, result.status.value))


@pytest.mark.parametrize("case_name", CASES)
def test_table2_portfolio(benchmark, case_name, time_limit):
    case = get_case(case_name)
    checker = PortfolioChecker(
        bdd_time_limit=min(30.0, time_limit),
        sat_checker=SatSweepChecker(time_limit=time_limit),
    )

    def run():
        return checker.check_miter(case.miter)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status in (CecStatus.EQUIVALENT, CecStatus.UNDECIDED)
    _record(case_name, "cfm", (benchmark.stats.stats.mean, result.status.value))


@pytest.mark.parametrize("case_name", CASES)
def test_table2_ours(benchmark, case_name, time_limit):
    case = get_case(case_name)
    checker = CombinedChecker(
        sat_checker=SatSweepChecker(time_limit=time_limit)
    )

    def run():
        return checker.check_miter(case.miter)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every suite case is equivalent by construction: the combined flow
    # must never disprove it, and with the default budgets it must not
    # leave arithmetic cases fully unreduced.
    assert result.status in (CecStatus.EQUIVALENT, CecStatus.UNDECIDED)
    assert result.status is not CecStatus.NONEQUIVALENT
    _record(
        case_name,
        "ours",
        {
            "engine_seconds": checker.timings.engine_seconds,
            "sat_seconds": checker.timings.sat_seconds,
            "total": checker.timings.total_seconds,
            "reduced": checker.timings.reduction_percent,
            "status": result.status.value,
        },
    )


def test_table2_headline_claims(benchmark):
    """The paper's headline shape, on whatever cases ran this session.

    - several cases are fully proved by the engine alone (100 % reduction);
    - the combined flow achieves a geomean speed-up > 1 over the SAT
      baseline when the full default suite runs.

    (Wrapped in a trivial benchmark so ``--benchmark-only`` runs it
    after the per-case benchmarks.)
    """

    def verify():
        rows = list(_board().rows.values())
        if len(rows) < 3:
            pytest.skip("not enough cases benchmarked in this session")
        fully_reduced = [r for r in rows if r.reduced_percent >= 99.9]
        assert fully_reduced, "engine should fully prove at least one case"
        if len(rows) >= 8:  # full suite
            speedups = [r.speedup_vs_abc for r in rows]
            assert geomean(speedups) > 1.0
        return len(rows)

    benchmark.pedantic(verify, rounds=1, iterations=1)
