"""Micro-benchmarks of the engine's kernels.

These measure the substrate throughputs the paper's GPU kernels provide
(word-parallel simulation, window planning, cut enumeration, CDCL
queries), so regressions in the hot paths show up independently of the
end-to-end experiment numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aig.miter import build_miter
from repro.aig.traversal import supports_capped
from repro.bench import generators as gen
from repro.cuts.enumeration import CutEnumerator
from repro.cuts.selection import CutSelector
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver
from repro.simulation.exhaustive import ExhaustiveSimulator
from repro.simulation.partial import simulate_words
from repro.simulation.window import Pair, build_window
from repro.synth.resyn import compress2


@pytest.fixture(scope="module")
def mult_miter():
    original = gen.multiplier(8)
    return build_miter(original, compress2(original))


def test_kernel_partial_simulation(benchmark, mult_miter):
    """Whole-miter random simulation, 64 words (4096 patterns)."""
    rng = np.random.default_rng(1)
    pi_words = rng.integers(
        0, 1 << 64, size=(mult_miter.num_pis, 64), dtype=np.uint64
    )
    tables = benchmark(simulate_words, mult_miter, pi_words)
    assert tables.shape == (mult_miter.num_nodes, 64)


def test_kernel_exhaustive_simulation(benchmark, mult_miter):
    """One merged 16-input window over the full miter (2^16 patterns)."""
    supports = supports_capped(mult_miter, 16)
    pairs = []
    inputs = set()
    roots = []
    for i, po in enumerate(mult_miter.pos):
        supp = supports[po >> 1]
        if supp is None:
            continue
        inputs |= supp
        roots.append(po >> 1)
        pairs.append(Pair(po, 0, tag=i))
    window = build_window(mult_miter, sorted(inputs), roots, pairs)
    simulator = ExhaustiveSimulator()

    outcomes = benchmark(simulator.run, mult_miter, [window])
    assert len(outcomes) == len(pairs)


def test_kernel_cut_enumeration(benchmark, mult_miter):
    """One full priority-cut pass (k_l=8, C=8) over the miter."""
    selector = CutSelector(
        1, mult_miter.fanout_counts(), mult_miter.levels()
    )

    def run():
        enum = CutEnumerator(mult_miter, 8, 8, selector)
        count = 0
        for _level, nodes in enum.run({}):
            count += len(nodes)
        return count

    count = benchmark(run)
    assert count == mult_miter.num_ands


def test_kernel_sat_equivalence_queries(benchmark, mult_miter):
    """CDCL equivalence queries on PO pairs of the miter cone."""

    def run():
        solver = SatSolver()
        cnf = CnfBuilder(mult_miter, solver)
        unsat = 0
        for po in mult_miter.pos[:4]:
            selector = solver.new_var()
            sel = selector << 1
            solver.add_clause([sel ^ 1, cnf.literal(po)])
            from repro.sat.solver import SolveStatus

            if solver.solve(assumptions=[sel]) is SolveStatus.UNSAT:
                unsat += 1
            solver.add_clause([sel ^ 1])
        return unsat

    unsat = benchmark(run)
    assert unsat == 4  # every miter PO is constant false


def test_kernel_window_merging(benchmark, mult_miter):
    """Sort-and-merge heuristic over all global-checking windows."""
    from repro.simulation.merging import merge_windows

    supports = supports_capped(mult_miter, 16)
    windows = []
    for i, po in enumerate(mult_miter.pos):
        supp = supports[po >> 1]
        if supp is None or not supp:
            continue
        roots = [po >> 1] if (po >> 1) not in supp else []
        windows.append(
            build_window(mult_miter, sorted(supp), roots, [Pair(po, 0, i)])
        )
    merged = benchmark(merge_windows, mult_miter, windows, 16)
    assert sum(len(w.pairs) for w in merged) == len(windows)
