"""Fig. 6: runtime breakdown of the simulation-based engine.

One engine run per case; the P/G/L wall-clock fractions are collected
and printed as the Fig. 6 table at session end.  Expected shape (paper):
log2 and sin are pure P; control logic is P-dominated; arithmetic
needing sweeping is L-dominated with a visible G share.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Fig6Row, format_fig6
from repro.sweep.engine import CecStatus, SimSweepEngine

from conftest import bench_case_names, get_board, get_case

CASES = bench_case_names()


def _board():
    board = get_board("Fig. 6 — engine phase breakdown")
    board.formatter = format_fig6
    return board


@pytest.mark.parametrize("case_name", CASES)
def test_fig6_phase_breakdown(benchmark, case_name):
    case = get_case(case_name)
    engine = SimSweepEngine()

    def run():
        return engine.check_miter(case.miter)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status is not CecStatus.NONEQUIVALENT
    fractions = result.report.phase_fractions()
    total = sum(fractions.values())
    assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0
    _board().add(
        case.name,
        Fig6Row(
            name=case.name,
            fractions=fractions,
            seconds=result.report.phase_seconds(),
        ),
    )


def test_fig6_shapes(benchmark):
    """Phase-attribution shapes that should match the paper.

    (Wrapped in a trivial benchmark so ``--benchmark-only`` runs it.)
    """

    def verify():
        rows = {row.name: row for row in _board().rows.values()}

        def frac(name, kind):
            for full_name, row in rows.items():
                if full_name.startswith(name):
                    return row.fractions.get(kind, 0.0)
            return None

        # log2 and sin are proved outright by PO checking (paper Fig. 6).
        for case in ("log2", "sin"):
            p = frac(case, "P")
            if p is not None:
                assert p > 0.9, f"{case} should be P-dominated (got {p:.2f})"
        # At default scale the multiplier needs the local phases
        # (G initialises classes, L proves the pairs); the tiny-profile
        # multiplier is small enough for PO checking, so skip there.
        from conftest import bench_profile

        l_mult = frac("multiplier", "L")
        if l_mult is not None and bench_profile() == "default":
            assert l_mult > 0.5, f"multiplier should be L-dominated ({l_mult:.2f})"
        return len(rows)

    benchmark.pedantic(verify, rounds=1, iterations=1)
