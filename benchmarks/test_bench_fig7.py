"""Fig. 7: SAT time on intermediate miters, normalised.

For each case the engine is stopped after P, after PG, and run in full
(PGL); the SAT sweeping baseline then proves each residual miter.  Times
are normalised by the SAT time on the *original* miter, reproducing the
paper's bars.  The defining property is monotonicity: more engine phases
can only shrink the residue, so normalised times must not increase
along P → PG → PGL.

The paper plots this for the cases the engine meaningfully reduces
(hyp, multiplier, square, voter, ac97_ctrl, vga_lcd) and omits the
P-proved (log2, sin) and barely-reduced (sqrt) ones; the same subset is
used here.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import format_fig7, run_fig7

from conftest import bench_case_names, get_board, get_case

FIG7_FAMILIES = ("hyp", "multiplier", "square", "voter", "ac97", "vga")
CASES = [
    name
    for name in bench_case_names()
    if any(name.startswith(f) for f in FIG7_FAMILIES)
]


def _board():
    board = get_board("Fig. 7 — SAT time on intermediate miters (normalised)")
    board.formatter = format_fig7
    return board


@pytest.mark.parametrize("case_name", CASES)
def test_fig7_intermediate_miters(benchmark, case_name, time_limit):
    case = get_case(case_name)

    def run():
        return run_fig7(
            [case], sat_conflict_limit=100_000, time_limit=time_limit
        )[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    # Monotone improvement: each additional engine phase leaves SAT a
    # smaller (or equal) problem.
    assert (
        row.reduced_ands["P"]
        >= row.reduced_ands["PG"]
        >= row.reduced_ands["PGL"]
    )
    _board().add(case.name, row)
