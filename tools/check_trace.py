#!/usr/bin/env python
"""Validate a Chrome ``trace_event`` JSON file produced by ``repro.obs``.

CI runs this against the trace artifact of the traced smoke job::

    python tools/check_trace.py trace.json \
        --require-phases phase.P phase.G phase.L --require-workers 2

The checker enforces the subset of the Chrome trace format the
``repro.obs`` tracer emits (no external jsonschema dependency needed —
the rules below *are* the schema):

- top level: an object with a non-empty ``traceEvents`` list;
- every event: an object with string ``name``, ``ph`` in
  ``{"X", "M", "i", "I", "C"}``, integer ``pid`` and ``tid``;
- complete events (``ph == "X"``): numeric ``ts >= 0``, ``dur >= 0``
  and a string ``cat``;
- metadata events (``ph == "M"``): an ``args.name`` string;
- ``--require-phases``: each named span must appear as an ``X`` event;
- ``--require-workers N``: at least ``N`` distinct pids must both carry
  a ``process_name`` metadata record starting with ``worker`` and have
  at least one ``X`` event — i.e. the merged timeline really contains
  span data from that many worker processes;
- ``--require-rebuild``: at least one incremental ``rebuild`` span
  (category ``state``) must appear, and every rebuild span must carry
  the ``merges``/``ands_before``/``ands_after``/``carried_words``
  bookkeeping in its ``args`` — i.e. the run really went through the
  carry-across-phases :class:`SweepState` path instead of a silent
  rebuild-from-scratch fallback;
- ``--require-shm``: the run must have used the shared-memory data
  plane, judged from the counter (``C``) events: segments were created
  and adopted, ``shm.segments_leaked`` is zero, the bytes published as
  segments dominate the bytes that crossed the queues pickled
  (``shm.bytes_shared > ipc.bytes_pickled``), and the carry-over ratio
  held across the process boundary (``state.carried_words >
  state.recomputed_words`` in the *merged* counters — workers carried,
  the parent adopted);
- ``--require-sched``: the run must have gone through the adaptive
  per-pair scheduler: every ``sched.dispatch.<lane>`` counter is
  present (pre-registered at zero, so absence means the dispatcher
  never ran), ``sched.mispredict`` is recorded, and the batched SAT
  lane actually batched — ``sat.batch.pairs > sat.batch.solves`` with
  at least one solve, i.e. many pairs shared each solver instance;
- ``--require-cubes``: the run must have raced cofactor cubes for at
  least one hard residue query: the ``cubes.split``/``cubes.races``/
  ``cubes.cancelled`` counters are present, a ``cubes.race`` span
  appears, and at least one losing sibling was cancelled after the
  first winner (``cubes.cancelled >= 1``) — i.e. first-winner
  cancellation really fired instead of every cube running to the end.

Exit status: 0 when the trace validates, 1 otherwise (errors listed on
stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Sequence

ALLOWED_PHASES = {"X", "M", "i", "I", "C"}


REBUILD_ARGS = ("merges", "ands_before", "ands_after", "carried_words")

#: Counters that must be present and positive under ``--require-shm``.
SHM_REQUIRED_COUNTERS = (
    "shm.segments_created",
    "shm.segments_adopted",
    "shm.bytes_shared",
)

#: The adaptive scheduler's dispatch lanes (``--require-sched``).  The
#: "cube" lane is deliberately absent: it only exists when the cube knob
#: is on, and its evidence is gated separately by ``--require-cubes``.
SCHED_LANES = ("sim", "cut", "bdd", "sat")

#: Counters that must be present under ``--require-cubes``.
CUBE_REQUIRED_COUNTERS = ("cubes.split", "cubes.races", "cubes.cancelled")


def validate_trace(
    payload: object,
    require_phases: Sequence[str] = (),
    require_workers: int = 0,
    require_rebuild: bool = False,
    require_shm: bool = False,
    require_sched: bool = False,
    require_cubes: bool = False,
) -> List[str]:
    """Check one parsed trace payload; returns a list of error strings."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents is missing, not a list, or empty"]

    process_names: Dict[int, str] = {}
    span_names = set()
    pids_with_spans = set()
    counters: Dict[str, float] = {}
    rebuild_spans = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or non-string name")
            continue
        ph = event.get("ph")
        if ph not in ALLOWED_PHASES:
            errors.append(f"{where} ({name}): bad ph {ph!r}")
            continue
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{where} ({name}): missing integer {field}")
        if ph == "X":
            ts = event.get("ts")
            dur = event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where} ({name}): X event needs ts >= 0")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where} ({name}): X event needs dur >= 0")
            if not isinstance(event.get("cat"), str):
                errors.append(f"{where} ({name}): X event needs a cat string")
            span_names.add(name)
            if isinstance(event.get("pid"), int):
                pids_with_spans.add(event["pid"])
            if name == "rebuild":
                rebuild_spans += 1
                args = event.get("args")
                if not isinstance(args, dict):
                    errors.append(
                        f"{where} (rebuild): span carries no args"
                    )
                else:
                    for key in REBUILD_ARGS:
                        if not isinstance(args.get(key), int):
                            errors.append(
                                f"{where} (rebuild): args.{key} missing "
                                "or not an integer"
                            )
        elif ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("name"), str
            ):
                errors.append(
                    f"{where} ({name}): M event needs an args.name string"
                )
            elif name == "process_name" and isinstance(event.get("pid"), int):
                process_names[event["pid"]] = args["name"]
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(
                args.get("value"), (int, float)
            ):
                errors.append(
                    f"{where} ({name}): C event needs a numeric args.value"
                )
            else:
                counters[name] = args["value"]

    for phase in require_phases:
        if phase not in span_names:
            errors.append(f"required span {phase!r} not found in the trace")

    if require_rebuild and rebuild_spans == 0:
        errors.append(
            "no 'rebuild' span found: the run never went through the "
            "incremental SweepState rebuild path"
        )

    if require_workers > 0:
        worker_pids = {
            pid
            for pid, name in process_names.items()
            if name.startswith("worker") and pid in pids_with_spans
        }
        if len(worker_pids) < require_workers:
            errors.append(
                f"trace has spans from {len(worker_pids)} worker "
                f"process(es), need {require_workers}"
            )

    if require_shm:
        for counter in SHM_REQUIRED_COUNTERS:
            if counters.get(counter, 0) <= 0:
                errors.append(
                    f"counter {counter!r} missing or zero: the run did "
                    "not use the shared-memory data plane"
                )
        if counters.get("shm.segments_leaked", 0) != 0:
            errors.append(
                f"shm.segments_leaked = {counters['shm.segments_leaked']}: "
                "worker segments had to be recovered by the prefix sweep"
            )
        shared = counters.get("shm.bytes_shared", 0)
        pickled = counters.get("ipc.bytes_pickled", 0)
        if shared and pickled and pickled >= shared:
            errors.append(
                f"ipc.bytes_pickled ({pickled:.0f}) >= shm.bytes_shared "
                f"({shared:.0f}): the bulk data did not move through "
                "segments"
            )
        carried = counters.get("state.carried_words", 0)
        recomputed = counters.get("state.recomputed_words", 0)
        if carried <= recomputed:
            errors.append(
                f"state.carried_words ({carried:.0f}) <= "
                f"state.recomputed_words ({recomputed:.0f}): the carry-over "
                "ratio did not hold across the process boundary"
            )

    if require_sched:
        for lane in SCHED_LANES:
            counter = f"sched.dispatch.{lane}"
            if counter not in counters:
                errors.append(
                    f"counter {counter!r} missing: the adaptive scheduler "
                    "never exported its dispatch counters (counters are "
                    "pre-registered at zero, so absence means the "
                    "dispatcher never ran)"
                )
        if "sched.mispredict" not in counters:
            errors.append(
                "counter 'sched.mispredict' missing: the cost model's "
                "feedback loop never reported"
            )
        pairs = counters.get("sat.batch.pairs", 0)
        solves = counters.get("sat.batch.solves", 0)
        if solves < 1:
            errors.append(
                "sat.batch.solves < 1: the batched SAT lane never solved "
                "(the final PO proof alone should produce one batch)"
            )
        elif pairs <= solves:
            errors.append(
                f"sat.batch.pairs ({pairs:.0f}) <= sat.batch.solves "
                f"({solves:.0f}): SAT queries were not batched — each "
                "solver instance should serve many pairs"
            )

    if require_cubes:
        for counter in CUBE_REQUIRED_COUNTERS:
            if counter not in counters:
                errors.append(
                    f"counter {counter!r} missing: the run never entered "
                    "the cube-and-conquer path (set REPRO_CUBE_THRESHOLD "
                    "to route hard final POs through it)"
                )
        if counters.get("cubes.split", 0) < 1:
            errors.append(
                "cubes.split < 1: no residue query was ever cofactor-split"
            )
        if counters.get("cubes.races", 0) < 1:
            errors.append(
                "cubes.races < 1: no cube race reached a verdict"
            )
        if counters.get("cubes.cancelled", 0) < 1:
            errors.append(
                "cubes.cancelled < 1: no losing sibling was cancelled "
                "after the first winner — first-winner cancellation was "
                "never observed"
            )
        if "cubes.race" not in span_names:
            errors.append(
                "no 'cubes.race' span found: the distributed cube race "
                "never ran (counters without the span would mean the "
                "in-process lane only)"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate a repro.obs Chrome trace file"
    )
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument(
        "--require-phases", nargs="*", default=[], metavar="SPAN",
        help="span names that must appear as X events",
    )
    parser.add_argument(
        "--require-workers", type=int, default=0, metavar="N",
        help="minimum number of worker processes with spans",
    )
    parser.add_argument(
        "--require-rebuild", action="store_true",
        help="require at least one incremental 'rebuild' span",
    )
    parser.add_argument(
        "--require-shm", action="store_true",
        help="require shared-memory data-plane counters (created/adopted "
        "segments, zero leaks, bytes_shared > bytes_pickled, carry-over "
        "held across processes)",
    )
    parser.add_argument(
        "--require-sched", action="store_true",
        help="require adaptive-scheduler counters (all sched.dispatch.* "
        "lanes present, sched.mispredict recorded, sat.batch.pairs > "
        "sat.batch.solves)",
    )
    parser.add_argument(
        "--require-cubes", action="store_true",
        help="require cube-and-conquer evidence (cubes.split/races/"
        "cancelled counters, a 'cubes.race' span, and at least one "
        "loser cancelled after the first winner)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {args.trace}: {error}", file=sys.stderr)
        return 1

    errors = validate_trace(
        payload,
        require_phases=args.require_phases,
        require_workers=args.require_workers,
        require_rebuild=args.require_rebuild,
        require_shm=args.require_shm,
        require_sched=args.require_sched,
        require_cubes=args.require_cubes,
    )
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    events = payload["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    pids = {e.get("pid") for e in events}
    print(
        f"ok: {args.trace} validates "
        f"({spans} spans across {len(pids)} process(es))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
