#!/usr/bin/env python3
"""Regenerate the measured sections of EXPERIMENTS.md.

Reads the JSON result dumps the benchmark session writes under
``benchmarks/results/`` and rewrites the measured blocks of
EXPERIMENTS.md in place (between ``MEASURED_*`` placeholders or their
previously generated blocks).

Run after a benchmark session:

    REPRO_BENCH_PROFILE=default pytest benchmarks/ --benchmark-only
    python tools/update_experiments.py
"""

import json
import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"
DOC = REPO / "EXPERIMENTS.md"

BEGIN = "<!-- BEGIN:{tag} -->"
END = "<!-- END:{tag} -->"


def load(slug):
    path = RESULTS / f"{slug}.json"
    if not path.is_file():
        return None
    with open(path) as handle:
        return json.load(handle)


def render_table2(rows):
    lines = [
        "| Case | SAT baseline (s) | Portfolio (s) | Engine (s) | Reduced % "
        "| Residue SAT (s) | Total (s) | × vs SAT | × vs Portfolio |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    import math

    speed_sat, speed_pf = [], []
    for name, row in rows.items():
        x_sat = row["abc_seconds"] / row["total_seconds"]
        x_pf = (
            row["cfm_seconds"] / row["total_seconds"]
            if not math.isnan(float(row["cfm_seconds"]))
            else float("nan")
        )
        speed_sat.append(x_sat)
        if not math.isnan(x_pf):
            speed_pf.append(x_pf)
        abc_note = "*" if row["abc_status"] == "undecided" else ""
        cfm_note = "*" if row["cfm_status"] == "undecided" else ""
        lines.append(
            f"| {name} | {row['abc_seconds']:.1f}{abc_note} "
            f"| {float(row['cfm_seconds']):.1f}{cfm_note} "
            f"| {row['gpu_seconds']:.1f} | {row['reduced_percent']:.1f} "
            f"| {row['residue_sat_seconds']:.1f} | {row['total_seconds']:.1f} "
            f"| {x_sat:.2f}× | {x_pf:.2f}× |"
        )

    def geomean(values):
        import math as m

        positives = [v for v in values if v > 0]
        if not positives:
            return 0.0
        return m.exp(sum(m.log(v) for v in positives) / len(positives))

    lines.append(
        f"| **Geomean** | | | | | | | **{geomean(speed_sat):.2f}×** "
        f"| **{geomean(speed_pf):.2f}×** |"
    )
    lines.append("")
    lines.append(
        "`*` = baseline hit the wall-clock limit; its time-limit value "
        "enters the speed-up, as the paper does with ABC's 122-day timeout."
    )
    return "\n".join(lines)


def render_fig6(rows):
    lines = [
        "| Case | P % | G % | L % |",
        "|---|---|---|---|",
    ]
    for name, row in rows.items():
        fr = row["fractions"]
        lines.append(
            f"| {name} | {100 * fr.get('P', 0):.1f} "
            f"| {100 * fr.get('G', 0):.1f} | {100 * fr.get('L', 0):.1f} |"
        )
    return "\n".join(lines)


def render_fig7(rows):
    lines = [
        "| Case | standalone SAT (s) | after P | after PG | after PGL |",
        "|---|---|---|---|---|",
    ]
    for name, row in rows.items():
        n = row["normalized"]
        lines.append(
            f"| {name} | {row['standalone_seconds']:.1f} "
            f"| {n['P']:.2f} | {n['PG']:.2f} | {n['PGL']:.2f} |"
        )
    return "\n".join(lines)


def render_ablations():
    blocks = []
    for path in sorted(RESULTS.glob("ablation*.json")):
        with open(path) as handle:
            data = json.load(handle)
        title = path.stem.replace("_", " ")
        blocks.append(f"**{title}**")
        blocks.append("")
        for key, value in data.items():
            blocks.append(f"- `{key}`: {value}")
        blocks.append("")
    return "\n".join(blocks) if blocks else "*(no ablation results found)*"


def splice(text, tag, rendered):
    begin = BEGIN.format(tag=tag)
    end = END.format(tag=tag)
    block = f"{begin}\n{rendered}\n{end}"
    if begin in text:
        pattern = re.compile(
            re.escape(begin) + r".*?" + re.escape(end), re.DOTALL
        )
        return pattern.sub(lambda _m: block, text)
    placeholder = f"MEASURED_{tag.upper()}"
    if placeholder in text:
        return text.replace(placeholder, block)
    raise SystemExit(f"no anchor for {tag} in EXPERIMENTS.md")


def main() -> None:
    text = DOC.read_text()
    table2 = load("table_ii_runtime_comparison")
    if table2:
        text = splice(text, "table2", render_table2(table2))
    fig6 = load("fig_6_engine_phase_breakdown")
    if fig6:
        text = splice(text, "fig6", render_fig6(fig6))
    fig7 = load("fig_7_sat_time_on_intermediate_miters_normalised")
    if fig7:
        text = splice(text, "fig7", render_fig7(fig7))
    text = splice(text, "ablations", render_ablations())
    DOC.write_text(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
