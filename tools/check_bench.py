#!/usr/bin/env python
"""Gate a fresh ``BENCH_*.json`` payload against a checked-in baseline.

CI regenerates a benchmark payload on every run and this checker diffs
it against ``benchmarks/baselines/``::

    python tools/check_bench.py BENCH_table2.json \
        --baseline benchmarks/baselines --max-ratio 25

Three families of regressions are caught:

- **verdict drift** — every baseline row must reappear in the fresh
  payload (matched by name, plus round for serve rows) and agree on
  every verdict column (``abc_status``/``cfm_status``/``ours_status``
  for table2, ``status`` for serve).  ``skipped``/``failed`` entries are
  wildcards: a row whose portfolio was skipped in one run and ran in the
  other is a configuration difference, not a correctness regression;
- **wall-clock regression** — the geometric mean of the per-row
  fresh/baseline time ratios must stay under ``--max-ratio``.  The gated
  column is the one the experiment is *about*: ``total_seconds`` for
  table2, client-observed ``latency`` for serve, the summed phase
  seconds for fig6, ``standalone_seconds`` for fig7.  CI machines are
  noisy and the absolute times are tiny, so the shipped threshold is
  deliberately generous — the gate exists to catch order-of-magnitude
  cliffs (an accidentally-disabled cache, a serialisation path gone
  quadratic), not 10% jitter;
- **hygiene counters** — the *fresh* payload must report zero leaked
  shared-memory segments (summed ``shm.segments_leaked`` over every
  row) and, for serve payloads carrying a ``daemon`` stats snapshot, at
  most ``--max-respawns`` worker respawns (default 0: a healthy bench
  run never crashes or deadline-kills a worker).

Fresh rows with no baseline counterpart pass with a named ``note:``
line — new coverage is not a regression — and ``--write-baseline``
regenerates the baseline file from the fresh payload (the hygiene
gates still apply, so a leaking or crashing run can never become the
new reference).

Exit status: 0 when the payload passes, 1 otherwise (errors listed on
stderr, one per line).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, List, Sequence, Tuple

#: Statuses that never fail the verdict comparison: a side that skipped
#: or failed an engine has no verdict to disagree with.
WILDCARD_STATUSES = {"skipped", "failed"}

#: Verdict columns compared per experiment.
VERDICT_FIELDS = {
    "table2": ("abc_status", "cfm_status", "ours_status"),
    "serve": ("status",),
    "fig6": (),
    "fig7": (),
}


def row_key(experiment: str, row: Dict) -> Tuple:
    """Identity of one row for baseline↔fresh matching."""
    if experiment == "serve":
        return (str(row.get("name")), str(row.get("round")))
    return (str(row.get("name")),)


def row_seconds(experiment: str, row: Dict) -> float:
    """The wall-clock column the ratio gate compares for one row."""
    if experiment == "table2":
        return float(row.get("total_seconds", 0.0))
    if experiment == "serve":
        return float(row.get("latency", 0.0))
    if experiment == "fig6":
        seconds = row.get("seconds", {})
        return float(sum(seconds.values())) if seconds else 0.0
    if experiment == "fig7":
        return float(row.get("standalone_seconds", 0.0))
    return 0.0


def _geomean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0 and math.isfinite(v)]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def _leaked_segments(payload: Dict) -> float:
    """Summed ``shm.segments_leaked`` over every row of a payload."""
    leaked = 0.0
    for row in payload.get("rows", []):
        shm = row.get("shm") or {}
        leaked += float(shm.get("shm.segments_leaked", 0.0))
    return leaked


def _daemon_respawns(payload: Dict) -> int:
    """Worker respawn count from a serve payload's daemon snapshot."""
    daemon = payload.get("daemon") or {}
    pool = daemon.get("pool") or {}
    return int(pool.get("respawns", 0))


def check_bench(
    fresh: Dict,
    baseline: Dict,
    max_ratio: float = 25.0,
    max_respawns: int = 0,
) -> Tuple[List[str], Dict]:
    """Diff a fresh payload against its baseline.

    Returns ``(errors, summary)``; the run passes iff ``errors`` is
    empty.  ``summary`` carries the compared-row count and the geomean
    ratio for the caller to print.
    """
    errors: List[str] = []
    experiment = fresh.get("experiment")
    if not isinstance(experiment, str) or "rows" not in fresh:
        return (["fresh payload is not a BENCH_*.json object"], {})
    if baseline.get("experiment") != experiment:
        errors.append(
            f"experiment mismatch: fresh is {experiment!r}, baseline is "
            f"{baseline.get('experiment')!r}"
        )
        return (errors, {})

    fresh_rows = {
        row_key(experiment, row): row for row in fresh.get("rows", [])
    }
    verdict_fields = VERDICT_FIELDS.get(experiment, ())
    ratios: List[float] = []
    compared = 0
    for base_row in baseline.get("rows", []):
        key = row_key(experiment, base_row)
        label = ":".join(key)
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            errors.append(f"row {label!r} present in baseline, missing fresh")
            continue
        compared += 1
        for field in verdict_fields:
            base_verdict = str(base_row.get(field, ""))
            fresh_verdict = str(fresh_row.get(field, ""))
            if (
                base_verdict in WILDCARD_STATUSES
                or fresh_verdict in WILDCARD_STATUSES
            ):
                continue
            if base_verdict != fresh_verdict:
                errors.append(
                    f"row {label!r}: {field} changed "
                    f"{base_verdict!r} -> {fresh_verdict!r}"
                )
        base_seconds = row_seconds(experiment, base_row)
        fresh_seconds = row_seconds(experiment, fresh_row)
        if (
            base_seconds > 0
            and fresh_seconds > 0
            and math.isfinite(base_seconds)
            and math.isfinite(fresh_seconds)
        ):
            ratios.append(fresh_seconds / base_seconds)

    if compared == 0:
        errors.append("no baseline row matched the fresh payload")

    # Fresh rows the baseline has never seen are *new coverage* (a bench
    # suite gaining a circuit, a row gaining a round), not a regression:
    # they pass with a named note so the log says exactly what appeared,
    # and `--write-baseline` is the intended follow-up to adopt them.
    baseline_keys = {
        row_key(experiment, row) for row in baseline.get("rows", [])
    }
    new_rows = [
        ":".join(key) for key in fresh_rows if key not in baseline_keys
    ]

    ratio = _geomean(ratios)
    if ratio and ratio > max_ratio:
        errors.append(
            f"geomean wall-clock ratio {ratio:.2f} exceeds "
            f"--max-ratio {max_ratio:g} "
            f"({len(ratios)} row(s) compared)"
        )

    leaked = _leaked_segments(fresh)
    if leaked:
        errors.append(
            f"fresh payload leaked {leaked:.0f} shared-memory segment(s) "
            "(summed shm.segments_leaked over rows)"
        )

    respawns = _daemon_respawns(fresh)
    if respawns > max_respawns:
        errors.append(
            f"daemon respawned {respawns} worker(s), allowed "
            f"{max_respawns}: the bench run crashed or deadline-killed "
            "workers"
        )

    return (
        errors,
        {
            "experiment": experiment,
            "rows_compared": compared,
            "ratio": ratio,
            "leaked_segments": leaked,
            "respawns": respawns,
            "new_rows": sorted(new_rows),
        },
    )


def resolve_baseline(path: str, experiment: str) -> str:
    """A directory baseline resolves to ``BENCH_<experiment>.json``."""
    if os.path.isdir(path):
        return os.path.join(path, f"BENCH_{experiment}.json")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gate a fresh BENCH_*.json against a checked-in baseline"
    )
    parser.add_argument("fresh", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--baseline", default="benchmarks/baselines", metavar="PATH",
        help="baseline payload, or a directory holding "
        "BENCH_<experiment>.json (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--max-ratio", type=float, default=25.0, metavar="R",
        help="fail when the geomean fresh/baseline wall-clock ratio "
        "exceeds R (default 25: catch cliffs, tolerate CI jitter)",
    )
    parser.add_argument(
        "--max-respawns", type=int, default=0, metavar="N",
        help="allowed daemon worker respawns in a serve payload "
        "(default 0)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from the fresh payload instead of "
        "diffing: the hygiene gates (leaked segments, respawns) still "
        "apply so a broken run cannot become the new reference",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.fresh, "r", encoding="utf-8") as handle:
            fresh = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {args.fresh}: {error}", file=sys.stderr)
        return 1
    experiment = fresh.get("experiment", "")
    baseline_path = resolve_baseline(args.baseline, str(experiment))

    if args.write_baseline:
        if not isinstance(experiment, str) or not experiment:
            print(
                f"error: {args.fresh} is not a BENCH_*.json object",
                file=sys.stderr,
            )
            return 1
        hygiene: List[str] = []
        leaked = _leaked_segments(fresh)
        if leaked:
            hygiene.append(
                f"fresh payload leaked {leaked:.0f} shared-memory "
                "segment(s); refusing to adopt it as the baseline"
            )
        respawns = _daemon_respawns(fresh)
        if respawns > args.max_respawns:
            hygiene.append(
                f"daemon respawned {respawns} worker(s), allowed "
                f"{args.max_respawns}; refusing to adopt it as the baseline"
            )
        if hygiene:
            for error in hygiene:
                print(f"error: {error}", file=sys.stderr)
            return 1
        os.makedirs(os.path.dirname(baseline_path) or ".", exist_ok=True)
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"ok: wrote baseline {baseline_path} from {args.fresh} "
            f"({len(fresh.get('rows', []))} row(s))"
        )
        return 0

    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(
            f"error: cannot read baseline {baseline_path}: {error}",
            file=sys.stderr,
        )
        return 1

    errors, summary = check_bench(
        fresh,
        baseline,
        max_ratio=args.max_ratio,
        max_respawns=args.max_respawns,
    )
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    for label in summary.get("new_rows", []):
        print(
            f"note: new row {label!r} absent from baseline — not gated "
            "(run --write-baseline to adopt it)"
        )
    print(
        f"ok: {args.fresh} vs {baseline_path} — "
        f"{summary['rows_compared']} row(s), "
        f"geomean ratio {summary['ratio']:.2f} "
        f"(limit {args.max_ratio:g}), "
        f"0 leaked segments, {summary['respawns']} respawn(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
