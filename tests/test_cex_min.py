"""Tests for counter-example minimisation."""

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.network import negate_outputs
from repro.analysis.cex_min import (
    care_count,
    distinguishes,
    format_care_pattern,
    minimize_cex,
)
from repro.bench.generators import multiplier
from repro.sweep.config import EngineConfig
from repro.sweep.engine import SimSweepEngine
from repro.synth.resyn import compress2

from conftest import random_aig


def single_bit_bug_pair():
    """Two circuits differing only in output 0's dependence on PI 1."""
    b1 = AigBuilder(6)
    b1.add_po(b1.add_and(2, 4))
    b1.add_po(b1.add_xor_multi([2 * i for i in range(1, 7)]))
    a1 = b1.build()
    b2 = AigBuilder(6)
    b2.add_po(b2.add_and(2, 4 ^ 1))  # y inverted: differs only via x,y
    b2.add_po(b2.add_xor_multi([2 * i for i in range(1, 7)]))
    a2 = b2.build()
    return a1, a2


def test_minimize_drops_irrelevant_inputs():
    a1, a2 = single_bit_bug_pair()
    # The two differ iff x=1 (output0: x&y vs x&!y): only PI 1 matters.
    pattern = [1, 0, 1, 1, 0, 1]
    assert distinguishes(a1, a2, pattern)
    care = minimize_cex(a1, a2, pattern)
    assert care[0] == 1             # x must stay 1
    assert care[2:] == [None] * 4   # z.. are don't-cares
    assert care_count(care) <= 2


def test_minimized_pattern_still_distinguishes():
    original = multiplier(4)
    buggy = negate_outputs(compress2(original), [3])
    result = SimSweepEngine(EngineConfig.fast()).check(original, buggy)
    care = minimize_cex(original, buggy, result.cex)
    # Completing don't-cares with the reference values must still fail.
    completed = [
        v if v is not None else result.cex[i] for i, v in enumerate(care)
    ]
    assert distinguishes(original, buggy, completed)
    assert care_count(care) <= len(care)


def test_rejects_non_cex():
    aig = random_aig(num_pis=4, seed=171)
    with pytest.raises(ValueError, match="not a counter-example"):
        minimize_cex(aig, aig.copy(), [0, 0, 0, 0])


def test_rejects_wrong_arity():
    a1, a2 = single_bit_bug_pair()
    with pytest.raises(ValueError, match="values"):
        minimize_cex(a1, a2, [1, 0])


def test_format_care_pattern():
    assert format_care_pattern([1, None, 0, None]) == "1-0-"
    assert care_count([1, None, 0, None]) == 2
