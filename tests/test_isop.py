"""Tests for the Minato–Morreale ISOP extraction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.isop import (
    cofactors,
    eval_cubes,
    isop,
    tt_mask,
    tt_var,
)


def test_tt_var_patterns():
    # 3-variable projections from §II-A of the paper:
    # f0 = 10101010, f1 = 11001100, f2 = 11110000.
    assert tt_var(0, 3) == 0b10101010
    assert tt_var(1, 3) == 0b11001100
    assert tt_var(2, 3) == 0b11110000


def test_tt_var_validates():
    with pytest.raises(ValueError):
        tt_var(3, 3)


def test_cofactors():
    num_vars = 3
    f = tt_var(0, num_vars) & tt_var(2, num_vars)  # x0 & x2
    neg, pos = cofactors(f, 0, num_vars)
    assert neg == 0
    assert pos == tt_var(2, num_vars)
    neg2, pos2 = cofactors(f, 2, num_vars)
    assert neg2 == 0
    assert pos2 == tt_var(0, num_vars)


def test_constants():
    assert isop(0, 3) == []
    assert isop(tt_mask(3), 3) == [()]


def test_single_literal():
    cubes = isop(tt_var(1, 3), 3)
    assert cubes == [((1, 0),)]


def test_known_function():
    # f = x0·x1' (truth table 0010 repeated over x2) — one cube.
    f = tt_var(0, 3) & (tt_var(1, 3) ^ tt_mask(3))
    cubes = isop(f, 3)
    assert eval_cubes(cubes, 3) == f
    assert len(cubes) == 1
    assert set(cubes[0]) == {(0, 0), (1, 1)}


def test_xor_needs_two_cubes():
    f = tt_var(0, 2) ^ tt_var(1, 2)
    cubes = isop(f, 2)
    assert eval_cubes(cubes, 2) == f
    assert len(cubes) == 2


def test_cover_is_irredundant():
    """Removing any cube must change the function."""
    rnd = random.Random(17)
    for _ in range(40):
        k = rnd.randint(2, 5)
        table = rnd.getrandbits(1 << k)
        cubes = isop(table, k)
        assert eval_cubes(cubes, k) == (table & tt_mask(k))
        for i in range(len(cubes)):
            reduced = cubes[:i] + cubes[i + 1 :]
            assert eval_cubes(reduced, k) != eval_cubes(cubes, k)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.randoms())
def test_isop_exactness_property(k, rnd):
    table = rnd.getrandbits(1 << k)
    cubes = isop(table, k)
    assert eval_cubes(cubes, k) == (table & tt_mask(k))
