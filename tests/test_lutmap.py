"""Tests for k-LUT mapping."""

import itertools
import random

import pytest

from repro.bench.generators import adder, multiplier
from repro.map import LutMapper, lut_network_to_aig, map_luts
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine

from conftest import brute_force_equivalent, random_aig, to_word, word_val


def test_mapping_preserves_function_exhaustive():
    aig = random_aig(num_pis=6, num_nodes=60, num_pos=3, seed=161)
    network = map_luts(aig, k=4)
    for bits in itertools.product([0, 1], repeat=6):
        assert network.evaluate(list(bits)) == aig.evaluate(list(bits))


@pytest.mark.parametrize("k", [2, 4, 6])
def test_lut_sizes_respected(k):
    aig = random_aig(num_pis=7, num_nodes=80, seed=162)
    network = map_luts(aig, k=k)
    assert all(len(lut.inputs) <= k for lut in network.luts)


def test_larger_k_never_needs_more_luts():
    aig = multiplier(5)
    small = map_luts(aig, k=3)
    large = map_luts(aig, k=6)
    assert large.num_luts <= small.num_luts
    assert large.depth() <= small.depth()


def test_mapped_depth_below_aig_depth():
    aig = adder(12)
    network = map_luts(aig, k=6)
    assert network.depth() < aig.depth()
    assert network.num_luts < aig.num_ands


def test_round_trip_to_aig_and_cec():
    """map → re-synthesise → prove equivalent with our own engine."""
    original = multiplier(4)
    network = map_luts(original, k=5)
    remade = lut_network_to_aig(network)
    assert remade.num_pis == original.num_pis
    ok, pattern = brute_force_equivalent(original, remade)
    assert ok, pattern
    result = SimSweepEngine(EngineConfig()).check(original, remade)
    assert result.status is CecStatus.EQUIVALENT


def test_lut_network_arithmetic():
    width = 5
    aig = adder(width)
    network = map_luts(aig, k=4)
    rnd = random.Random(7)
    for _ in range(40):
        x, y = rnd.randrange(1 << width), rnd.randrange(1 << width)
        out = network.evaluate(to_word(x, width) + to_word(y, width))
        assert word_val(out) == x + y


def test_constant_and_inverted_pos():
    from repro.aig.builder import AigBuilder

    b = AigBuilder(2)
    b.add_po(0)
    b.add_po(b.add_and(2, 4) ^ 1)
    aig = b.build()
    network = map_luts(aig, k=4)
    for bits in itertools.product([0, 1], repeat=2):
        assert network.evaluate(list(bits)) == aig.evaluate(list(bits))


def test_area_mode_preserves_function():
    aig = multiplier(4)
    network = map_luts(aig, k=5, mode="area")
    for _ in range(40):
        import random as _r

        rnd = _r.Random(3)
        pattern = [rnd.randint(0, 1) for _ in range(aig.num_pis)]
        assert network.evaluate(pattern) == aig.evaluate(pattern)


def test_area_mode_never_larger_on_arithmetic():
    """Area flow should not produce more LUTs than depth mode here."""
    aig = adder(16)
    depth_mode = map_luts(aig, k=5, mode="depth")
    area_mode = map_luts(aig, k=5, mode="area")
    assert area_mode.num_luts <= depth_mode.num_luts
    # And depth mode must win (or tie) on depth.
    assert depth_mode.depth() <= area_mode.depth()


def test_mapper_validates_parameters():
    with pytest.raises(ValueError):
        LutMapper(k=1)
    with pytest.raises(ValueError):
        LutMapper(k=4, cuts_per_node=0)
    with pytest.raises(ValueError):
        LutMapper(mode="balanced")


def test_evaluate_validates_arity():
    network = map_luts(random_aig(num_pis=4, seed=163), k=4)
    with pytest.raises(ValueError):
        network.evaluate([0, 1])
