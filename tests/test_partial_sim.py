"""Tests for the word-parallel partial simulator."""

import numpy as np
import pytest

from repro.simulation.partial import pack_patterns, po_words, simulate_words

from conftest import random_aig


def test_simulate_words_matches_reference_evaluator():
    aig = random_aig(num_pis=6, num_nodes=60, num_pos=4, seed=41)
    rng = np.random.default_rng(1)
    pi_words = rng.integers(0, 1 << 64, size=(6, 3), dtype=np.uint64)
    tables = simulate_words(aig, pi_words)
    for word in range(3):
        for bit in (0, 17, 63):
            pattern = [
                int((int(pi_words[i, word]) >> bit) & 1) for i in range(6)
            ]
            values = aig.evaluate_all(pattern)
            for node in range(aig.num_nodes):
                got = (int(tables[node, word]) >> bit) & 1
                assert got == int(values[node]), (node, word, bit)


def test_simulate_words_validates_shape():
    aig = random_aig(num_pis=4, seed=42)
    with pytest.raises(ValueError):
        simulate_words(aig, np.zeros((3, 2), dtype=np.uint64))


def test_constant_row_is_zero():
    aig = random_aig(num_pis=4, seed=43)
    tables = simulate_words(aig, np.ones((4, 2), dtype=np.uint64))
    assert np.all(tables[0] == 0)


def test_pack_patterns_round_trip():
    patterns = [[1, 0, 1], [0, 0, 1], [1, 1, 1], [0, 1, 0]]
    words = pack_patterns(patterns, 3)
    assert words.shape == (3, 1)
    for p, pattern in enumerate(patterns):
        for i in range(3):
            assert ((int(words[i, 0]) >> p) & 1) == pattern[i]


def test_pack_patterns_tail_repeats_last():
    words = pack_patterns([[1, 0]], 2)
    # Bit 0 holds the pattern; all higher bits must repeat it, so PI 0's
    # word is all-ones and PI 1's word is all-zeros.
    assert int(words[0, 0]) == (1 << 64) - 1
    assert int(words[1, 0]) == 0


def test_pack_patterns_validates_width():
    with pytest.raises(ValueError):
        pack_patterns([[1, 0, 1]], 2)


def test_pack_patterns_empty():
    assert pack_patterns([], 4).shape == (4, 0)


def test_po_words_apply_phases():
    aig = random_aig(num_pis=5, num_nodes=30, num_pos=3, seed=44)
    rng = np.random.default_rng(2)
    pi_words = rng.integers(0, 1 << 64, size=(5, 2), dtype=np.uint64)
    tables = simulate_words(aig, pi_words)
    pos = po_words(aig, tables)
    for i, po in enumerate(aig.pos):
        expected = tables[po >> 1] ^ (
            np.uint64(0xFFFFFFFFFFFFFFFF) if po & 1 else np.uint64(0)
        )
        assert np.array_equal(pos[i], expected)
