"""Tests for engine reports and phase timing."""

import time

import pytest

from repro.aig.network import negate_outputs
from repro.bench.generators import multiplier
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.sweep.report import (
    EngineFailure,
    EngineReport,
    EngineRunRecord,
    PhaseRecord,
    PhaseTimer,
    PortfolioReport,
)
from repro.synth.resyn import compress2


def test_phase_timer_accumulates():
    record = PhaseRecord("L")
    with PhaseTimer(record):
        time.sleep(0.01)
    first = record.seconds
    assert first >= 0.01
    with PhaseTimer(record):
        time.sleep(0.01)
    assert record.seconds >= first + 0.01


def test_reduction_percent():
    report = EngineReport(initial_ands=200, final_ands=50)
    assert report.reduction_percent == pytest.approx(75.0)
    assert EngineReport(initial_ands=0, final_ands=0).reduction_percent == 100.0
    full = EngineReport(initial_ands=10, final_ands=0)
    assert full.reduction_percent == 100.0


def test_phase_aggregation():
    report = EngineReport(initial_ands=10)
    report.phases = [
        PhaseRecord("P", seconds=1.0),
        PhaseRecord("G", seconds=2.0),
        PhaseRecord("L", seconds=3.0),
        PhaseRecord("L", seconds=1.0),
    ]
    seconds = report.phase_seconds()
    assert seconds == {"P": 1.0, "G": 2.0, "L": 4.0}
    fractions = report.phase_fractions()
    assert fractions["L"] == pytest.approx(4.0 / 7.0)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_phase_fractions_empty_and_zero():
    assert EngineReport().phase_fractions() == {}
    report = EngineReport()
    report.phases = [PhaseRecord("P", seconds=0.0)]
    assert report.phase_fractions() == {"P": 0.0}


def test_record_as_dict():
    record = PhaseRecord("G", seconds=1.5, candidates=10, proved=7, cex=2)
    data = record.as_dict()
    assert data["kind"] == "G"
    assert data["proved"] == 7
    assert data["cex"] == 2


def test_disproof_does_not_report_full_reduction():
    """Regression: a NONEQUIVALENT verdict used to set ``final_ands=0``,
    making ``reduction_percent`` claim 100 % reduction on a disproof."""
    original = multiplier(4)
    buggy = negate_outputs(compress2(original), [1])
    result = SimSweepEngine().check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    report = result.report
    assert report.final_ands > 0
    assert report.reduction_percent < 100.0


def test_portfolio_report_failures_and_summary():
    report = PortfolioReport(start_method="spawn", winner="sat")
    report.engines = [
        EngineRunRecord(name="sat", status="equivalent", seconds=1.0),
        EngineRunRecord(
            name="bdd",
            status="failed",
            seconds=0.5,
            failure=EngineFailure(
                engine="bdd", message="boom", exit_code=-9
            ),
        ),
        EngineRunRecord(name="sim", status="undecided", residue_ands=42),
    ]
    assert [f.engine for f in report.failures] == ["bdd"]
    assert report.record("sim").residue_ands == 42
    assert report.record("missing") is None
    lines = report.summary_lines()
    assert "winner=sat" in lines[0]
    assert any("boom" in line and "exit code -9" in line for line in lines)
    assert any("residue 42 ANDs" in line for line in lines)
    data = report.engines[1].as_dict()
    assert data["status"] == "failed"
    assert "boom" in data["failure"]
