"""Tests for engine reports and phase timing."""

import time

import pytest

from repro.aig.network import negate_outputs
from repro.bench.generators import multiplier
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.sweep.report import (
    EngineFailure,
    EngineReport,
    EngineRunRecord,
    PhaseRecord,
    PhaseTimer,
    PortfolioReport,
)
from repro.synth.resyn import compress2


def test_phase_timer_accumulates():
    record = PhaseRecord("L")
    with PhaseTimer(record):
        time.sleep(0.01)
    first = record.seconds
    assert first >= 0.01
    with PhaseTimer(record):
        time.sleep(0.01)
    assert record.seconds >= first + 0.01


def test_reduction_percent():
    report = EngineReport(initial_ands=200, final_ands=50)
    assert report.reduction_percent == pytest.approx(75.0)
    assert EngineReport(initial_ands=0, final_ands=0).reduction_percent == 100.0
    full = EngineReport(initial_ands=10, final_ands=0)
    assert full.reduction_percent == 100.0


def test_phase_aggregation():
    report = EngineReport(initial_ands=10)
    report.phases = [
        PhaseRecord("P", seconds=1.0),
        PhaseRecord("G", seconds=2.0),
        PhaseRecord("L", seconds=3.0),
        PhaseRecord("L", seconds=1.0),
    ]
    seconds = report.phase_seconds()
    assert seconds == {"P": 1.0, "G": 2.0, "L": 4.0}
    fractions = report.phase_fractions()
    assert fractions["L"] == pytest.approx(4.0 / 7.0)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_phase_fractions_empty_and_zero():
    assert EngineReport().phase_fractions() == {}
    report = EngineReport()
    report.phases = [PhaseRecord("P", seconds=0.0)]
    assert report.phase_fractions() == {"P": 0.0}


def test_record_as_dict():
    record = PhaseRecord("G", seconds=1.5, candidates=10, proved=7, cex=2)
    data = record.as_dict()
    assert data["kind"] == "G"
    assert data["proved"] == 7
    assert data["cex"] == 2


def test_disproof_does_not_report_full_reduction():
    """Regression: a NONEQUIVALENT verdict used to set ``final_ands=0``,
    making ``reduction_percent`` claim 100 % reduction on a disproof."""
    original = multiplier(4)
    buggy = negate_outputs(compress2(original), [1])
    result = SimSweepEngine().check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    report = result.report
    assert report.final_ands > 0
    assert report.reduction_percent < 100.0


def test_portfolio_report_failures_and_summary():
    report = PortfolioReport(start_method="spawn", winner="sat")
    report.engines = [
        EngineRunRecord(name="sat", status="equivalent", seconds=1.0),
        EngineRunRecord(
            name="bdd",
            status="failed",
            seconds=0.5,
            failure=EngineFailure(
                engine="bdd", message="boom", exit_code=-9
            ),
        ),
        EngineRunRecord(name="sim", status="undecided", residue_ands=42),
    ]
    assert [f.engine for f in report.failures] == ["bdd"]
    assert report.record("sim").residue_ands == 42
    assert report.record("missing") is None
    lines = report.summary_lines()
    assert "winner=sat" in lines[0]
    assert any("boom" in line and "exit code -9" in line for line in lines)
    assert any("residue 42 ANDs" in line for line in lines)
    data = report.engines[1].as_dict()
    assert data["status"] == "failed"
    assert "boom" in data["failure"]


def test_phase_record_round_trip():
    record = PhaseRecord(
        "G", seconds=1.5, candidates=10, proved=7, cex=2,
        miter_ands_after=33,
    )
    rebuilt = PhaseRecord.from_dict(record.as_dict())
    assert rebuilt == record


def test_phase_record_from_dict_tolerates_missing_and_unknown_keys():
    rebuilt = PhaseRecord.from_dict({"kind": "P", "future_field": 1})
    assert rebuilt.kind == "P"
    assert rebuilt.seconds == 0.0
    assert rebuilt.candidates == 0


def test_engine_report_round_trip():
    from repro.cache.counters import CacheCounters

    report = EngineReport(
        initial_ands=100,
        final_ands=40,
        total_seconds=2.5,
        exhaustive_pairs=12,
        phases=[
            PhaseRecord("P", seconds=0.5, candidates=1, proved=1),
            PhaseRecord("G", seconds=1.0, candidates=8, proved=5, cex=3),
        ],
        cache=CacheCounters(hits=4, misses=2),
        metrics={"counters": {"sim.words_simulated": 64}, "histograms": {}},
    )
    rebuilt = EngineReport.from_dict(report.as_dict())
    assert rebuilt.initial_ands == 100
    assert rebuilt.final_ands == 40
    assert rebuilt.total_seconds == 2.5
    assert rebuilt.exhaustive_pairs == 12
    assert rebuilt.phases == report.phases
    assert rebuilt.cache.hits == 4
    assert rebuilt.metrics == report.metrics
    # The round-trip of the round-trip is stable.
    assert rebuilt.as_dict() == report.as_dict()


def test_engine_report_round_trip_without_cache():
    report = EngineReport(initial_ands=10, final_ands=10)
    rebuilt = EngineReport.from_dict(report.as_dict())
    assert rebuilt.cache is None
    assert rebuilt.phases == []


def test_engine_run_record_as_dict_nests_report():
    record = EngineRunRecord(
        name="combined",
        status="equivalent",
        seconds=1.0,
        report=EngineReport(initial_ands=5, final_ands=0),
    )
    data = record.as_dict()
    assert data["report"]["initial_ands"] == 5
    assert EngineRunRecord(name="x", status="y").as_dict()["report"] is None


def test_portfolio_report_as_dict():
    report = PortfolioReport(start_method="spawn", winner="sat")
    report.engines = [
        EngineRunRecord(name="sat", status="equivalent", seconds=1.0)
    ]
    report.metrics = {"counters": {"c": 1}, "histograms": {}}
    data = report.as_dict()
    assert data["winner"] == "sat"
    assert data["start_method"] == "spawn"
    assert data["engines"][0]["name"] == "sat"
    assert data["metrics"]["counters"] == {"c": 1}
    assert data["finisher"] is None
