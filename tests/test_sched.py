"""Adaptive per-pair scheduling: verdict equivalence and lane soundness.

The scheduler's contract is that lane choice affects speed, never the
verdict: the property sweep here runs ~100 seeded miters (equivalent
transforms and injected bugs) through the adaptive flow and the fixed
pipeline and requires identical verdicts, then pins every lane with
``REPRO_SCHED_FORCE`` to show each one is individually sound (forced
runs still prove equivalences and still find the injected bug's
counter-example, because unresolved pairs reroute to the SAT backstop).
"""

import math
import random

import pytest

from repro.aig.network import Aig
from repro.bench import generators as gen
from repro.obs import Tracer, use_tracer
from repro.portfolio.checker import CombinedChecker
from repro.sched import (
    FORCE_ENV,
    LANES,
    AdaptiveSweeper,
    CostModel,
    FeatureExtractor,
    SatBatchLane,
)
from repro.sched.features import PairFeatures
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus
from repro.sweep.state import SweepState
from repro.synth.balance import balance
from repro.synth.resyn import compress2
from repro.synth.rewrite import cut_rewrite

from conftest import brute_force_equivalent, random_aig


def _mutate(aig: Aig, seed: int) -> Aig:
    """Flip one AND fanin phase — the classic synthesis-bug model."""
    rnd = random.Random(seed)
    f0, f1 = aig.fanin_literals()
    f0 = [int(x) for x in f0]
    f1 = [int(x) for x in f1]
    pos = list(aig.pos)
    if not f0:  # the transform collapsed every AND; flip a PO instead
        pos[rnd.randrange(len(pos))] ^= 1
    elif rnd.random() < 0.5:
        f0[rnd.randrange(len(f0))] ^= 1
    else:
        f1[rnd.randrange(len(f1))] ^= 1
    return Aig(aig.num_pis, f0, f1, pos, name=aig.name + "_bug")


def _case(seed: int):
    """One seeded miter instance: (original, other, expected_equal)."""
    original = random_aig(
        num_pis=5 + seed % 4, num_nodes=40 + seed % 30, num_pos=3,
        seed=seed,
    )
    transform = [balance, lambda a: cut_rewrite(a, 4), compress2][seed % 3]
    if seed % 2 == 0:
        other = transform(original)
    else:
        other = _mutate(transform(original), seed)
    equal, _ = brute_force_equivalent(original, other)
    return original, other, equal


# ---------------------------------------------------------------------------
# Property sweep: adaptive ≡ fixed on ~100 seeded miters
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed_block", range(10))
def test_adaptive_and_fixed_verdicts_identical(seed_block):
    """10 blocks × 10 seeds = 100 miters: both flows, same verdicts,
    and every verdict matches brute force."""
    for seed in range(seed_block * 10, seed_block * 10 + 10):
        original, other, equal = _case(seed)
        fixed = CombinedChecker(EngineConfig.fast(), sched="fixed").check(
            original, other
        )
        auto = CombinedChecker(EngineConfig.fast(), sched="auto").check(
            original, other
        )
        assert fixed.status == auto.status, seed
        expected = CecStatus.EQUIVALENT if equal else CecStatus.NONEQUIVALENT
        assert auto.status is expected, seed
        if not equal:
            assert original.evaluate(auto.cex) != other.evaluate(auto.cex), (
                seed
            )


# ---------------------------------------------------------------------------
# Forced single lanes stay sound and complete
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("lane", LANES)
def test_forced_lane_still_proves_and_disproves(lane, monkeypatch):
    """Pinning every dispatch to one lane must not change any verdict:
    lanes only settle pairs with sound certificates, the rest reroute
    to the SAT backstop, and the final PO proof is always exact."""
    monkeypatch.setenv(FORCE_ENV, lane)
    for seed in range(8):
        original, other, equal = _case(seed)
        sweeper = AdaptiveSweeper(EngineConfig.fast())
        assert sweeper.model.forced_lane() == lane
        result = sweeper.check(original, other)
        expected = CecStatus.EQUIVALENT if equal else CecStatus.NONEQUIVALENT
        assert result.status is expected, (lane, seed)
        if not equal:
            assert original.evaluate(result.cex) != other.evaluate(
                result.cex
            ), (lane, seed)


def test_force_env_with_unknown_lane_is_ignored(monkeypatch):
    monkeypatch.setenv(FORCE_ENV, "quantum")
    assert CostModel().forced_lane() is None


# ---------------------------------------------------------------------------
# Cost model unit behaviour
# ---------------------------------------------------------------------------


def _features(**overrides) -> PairFeatures:
    base = dict(
        support_a=4, support_b=4, union_size=6, level=10, class_size=2,
        agreement_words=32, node_is_and=True,
        union_support=frozenset(range(6)),
    )
    base.update(overrides)
    return PairFeatures(**base)


def test_static_costs_encode_feasibility():
    model = CostModel()
    wide = _features(union_size=-1, union_support=None)
    assert math.isinf(model.static_cost("sim", wide))
    pi_pair = _features(node_is_and=False)
    assert math.isinf(model.static_cost("cut", pi_pair))
    beyond_bdd = _features(union_size=model.bdd_cap + 1)
    assert math.isinf(model.static_cost("bdd", beyond_bdd))
    # SAT is the backstop: finite on everything.
    for f in (wide, pi_pair, beyond_bdd):
        assert math.isfinite(model.static_cost("sat", f))
    # choose() always lands on a feasible lane.
    hopeless = _features(
        union_size=-1, union_support=None, node_is_and=False
    )
    assert model.choose(hopeless) in ("bdd", "sat")


def test_mispredict_penalty_grows_and_decays():
    model = CostModel()
    f = _features()
    base = model.predicted_cost("sim", f)
    model.record("sim", f, seconds=1e-4, resolved=False)
    assert model.predicted_cost("sim", f) > base
    assert model.mispredicts == 1
    for _ in range(10):
        model.record("sim", f, seconds=1e-4, resolved=True)
    assert model.penalty["sim"] == 1.0


def test_observed_latency_corrects_static_seed():
    model = CostModel(min_observations=4)
    f = _features()
    seeded = model.predicted_cost("sat", f)
    # The lane turns out far slower than its seed claims.
    for _ in range(6):
        model.record("sat", f, seconds=1.0, resolved=True)
    corrected = model.predicted_cost("sat", f)
    assert corrected > seeded
    snapshot = model.as_dict()
    assert snapshot["dispatched"]["sat"] == 0  # record() is not choose()
    assert snapshot["observed_p50"]["sat"] > 0


def test_choose_is_deterministic_per_seed():
    f = _features()
    picks_a = [CostModel(seed=7).choose(f) for _ in range(5)]
    picks_b = [CostModel(seed=7).choose(f) for _ in range(5)]
    assert picks_a == picks_b


# ---------------------------------------------------------------------------
# Feature extraction off the live sweep state
# ---------------------------------------------------------------------------


def test_feature_extractor_reads_sweep_state():
    miter = gen.multiplier(4)
    state = SweepState(miter, num_random_words=4, seed=1)
    extractor = FeatureExtractor(state, cap=12)
    classes = state.classes()
    sizes = extractor.class_sizes(classes)
    checked = 0
    for repr_node, node, phase in classes.all_pairs():
        if not (miter.is_and(node) or miter.is_pi(node)):
            continue
        f = extractor.pair(repr_node, node, sizes.get(node, 2))
        assert f.agreement_words == state.agreement_words
        assert f.class_size >= 2
        assert f.level >= 0
        if f.union_support is not None:
            assert f.union_size == len(f.union_support)
            assert f.union_size <= 2 * 12
        else:
            assert f.union_size == -1
        checked += 1
    assert checked > 0


def test_feature_tables_memoised_until_network_changes():
    miter = gen.adder(6)
    state = SweepState(miter, num_random_words=4, seed=1)
    first = state.support_sets(8)
    assert state.support_sets(8) is first  # same network, same cap
    assert state.support_sets(10) is not first  # cap change recomputes


# ---------------------------------------------------------------------------
# Batched SAT lane: shared solver, pairs > solves
# ---------------------------------------------------------------------------


def test_sat_batch_shares_one_solver_across_pairs():
    tracer = Tracer(process_name="test-sched")
    with use_tracer(tracer):
        original = gen.multiplier(4)
        sweeper = AdaptiveSweeper(EngineConfig.fast())
        result = sweeper.check(original, compress2(original))
        counters = tracer.metrics.as_dict()["counters"]
    assert result.status is CecStatus.EQUIVALENT
    # Every lane counter is exported (pre-registered even when zero).
    for lane in LANES:
        assert f"sched.dispatch.{lane}" in counters
    assert "sched.mispredict" in counters
    pairs = counters.get("sat.batch.pairs", 0)
    solves = counters.get("sat.batch.solves", 0)
    if pairs:
        # Batching invariant: many pairs per solver instance.
        assert solves < pairs


def test_sat_batch_budget_scales_with_level():
    lane = SatBatchLane(conflict_budget=1_000)
    shallow = lane.budget_for(_features(level=0))
    deep = lane.budget_for(_features(level=64))
    assert shallow == 1_000
    assert deep > shallow


# ---------------------------------------------------------------------------
# Integration details
# ---------------------------------------------------------------------------


def test_combined_rejects_unknown_sched_mode():
    with pytest.raises(ValueError):
        CombinedChecker(sched="turbo")


def test_adaptive_report_keeps_engine_phase_records():
    original = gen.voter(13)
    checker = CombinedChecker(EngineConfig.fast(), sched="auto")
    result = checker.check(original, compress2(original))
    assert result.status is CecStatus.EQUIVALENT
    kinds = [p.kind for p in result.report.phases]
    assert "P" in kinds
    timings = checker.timings
    assert timings.engine_seconds > 0
    assert timings.total_seconds >= timings.engine_seconds


def test_cost_model_is_shared_across_checks():
    """A tenant-resident model keeps learning across jobs."""
    model = CostModel()
    original = gen.multiplier(4)
    optimized = compress2(original)
    for _ in range(2):
        checker = CombinedChecker(
            EngineConfig.fast(), sched="auto", cost_model=model
        )
        result = checker.check(original, optimized)
        assert result.status is CecStatus.EQUIVALENT
    total = sum(model.dispatched.values())
    observed = sum(h.count for h in model.histograms.values())
    if total:
        assert observed > 0
