"""Tests for the shared random-pattern disproof helper."""

import numpy as np

from repro.aig.builder import AigBuilder
from repro.simulation.partial import pack_patterns, simulate_words
from repro.sweep.disproof import find_po_disproof


def _miter_like(po_literal_builder):
    b = AigBuilder(3)
    po_literal_builder(b)
    return b.build()


def test_finds_satisfying_pattern():
    b = AigBuilder(2)
    b.add_po(b.add_and(2, 4))  # "miter" satisfied when x=y=1
    miter = b.build()
    pi_words = pack_patterns([[0, 0], [1, 1], [1, 0]], 2)
    tables = simulate_words(miter, pi_words)
    pattern = find_po_disproof(miter, pi_words, tables)
    assert pattern == [1, 1]
    assert miter.evaluate(pattern) == [1]


def test_none_when_pool_misses():
    b = AigBuilder(2)
    b.add_po(b.add_and(2, 4))
    miter = b.build()
    pi_words = pack_patterns([[0, 0], [0, 1], [1, 0]], 2)
    tables = simulate_words(miter, pi_words)
    assert find_po_disproof(miter, pi_words, tables) is None


def test_constant_pos_skipped():
    b = AigBuilder(2)
    b.add_po(0)
    b.add_po(b.add_and(2, 4) ^ 1)  # satisfied unless x=y=1
    miter = b.build()
    pi_words = pack_patterns([[0, 1]], 2)
    tables = simulate_words(miter, pi_words)
    pattern = find_po_disproof(miter, pi_words, tables)
    assert pattern is not None
    assert miter.evaluate(pattern)[1] == 1


def test_inverted_po_handled():
    b = AigBuilder(1)
    b.add_po(2 ^ 1)  # !x: satisfied when x=0
    miter = b.build()
    pi_words = pack_patterns([[1], [0]], 1)
    tables = simulate_words(miter, pi_words)
    pattern = find_po_disproof(miter, pi_words, tables)
    assert pattern == [0]
