"""Tests for the CEC-as-a-service daemon (:mod:`repro.serve`)."""

import asyncio
import glob
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.aig.miter import build_miter
from repro.bench.generators import multiplier, voter
from repro.aig.network import negate_outputs
from repro.cache.store import Verdict
from repro.obs import Tracer, use_tracer
from repro.serve import (
    DEFAULT_TENANT,
    AdmissionController,
    AdmissionError,
    CecServer,
    ProtocolError,
    ServeClient,
    ServeError,
    TenantError,
    TenantManager,
    aig_from_wire,
    aig_to_wire,
    validate_tenant,
)
from repro.serve.pool import ServeJob, WorkerPool
from repro.serve.protocol import (
    pack_frame,
    read_frame_sync,
    write_frame_sync,
)
from repro.sweep.classes import SharedPool
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.synth.resyn import compress2

from conftest import random_aig

SHM_DIR = "/dev/shm"


def _run_segments():
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(glob.glob(os.path.join(SHM_DIR, "rs*")))


@pytest.fixture(autouse=True)
def _no_leftover_segments():
    """Every serve test must leave /dev/shm as clean as it found it."""
    before = _run_segments()
    yield
    assert _run_segments() == before


def _equivalent_miter(width=9):
    original = voter(width)
    return build_miter(original, compress2(original))


def _nonequivalent_miter(width=3):
    original = multiplier(width)
    return build_miter(original, negate_outputs(compress2(original), [1]))


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


def test_frame_round_trip_over_socketpair():
    left, right = socket.socketpair()
    try:
        payload = {"op": "ping", "nested": {"x": [1, 2, 3]}}
        write_frame_sync(left, payload)
        assert read_frame_sync(right) == payload
        left.close()
        assert read_frame_sync(right) is None  # clean EOF
    finally:
        right.close()


def test_frame_rejects_non_object_payloads():
    left, right = socket.socketpair()
    try:
        left.sendall(pack_frame({"ok": True})[:4] + b"[1,2,3]"[:4])
        left.close()
        with pytest.raises(ProtocolError):
            read_frame_sync(right)
    finally:
        right.close()


def test_pack_frame_rejects_oversized_payloads(monkeypatch):
    import repro.serve.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_FRAME", 64)
    with pytest.raises(ProtocolError):
        protocol.pack_frame({"blob": "x" * 128})


def test_aig_wire_round_trip():
    aig = random_aig(num_pis=5, num_nodes=30, num_pos=2, seed=77)
    clone = aig_from_wire(aig_to_wire(aig))
    assert clone.num_pis == aig.num_pis
    assert clone.num_ands == aig.num_ands
    pattern = [1, 0, 1, 1, 0]
    assert clone.evaluate(pattern) == aig.evaluate(pattern)


def test_aig_from_wire_rejects_malformed():
    with pytest.raises(ProtocolError):
        aig_from_wire({"num_pis": 2})
    with pytest.raises(ProtocolError):
        aig_from_wire("not an object")


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def test_admission_bounds_and_backpressure():
    admission = AdmissionController(max_pending=4, max_batch=2)
    admission.try_admit(2)
    admission.try_admit(2)
    with pytest.raises(AdmissionError) as busy:
        admission.try_admit(1)
    assert busy.value.code == "busy"
    admission.release(2)
    admission.try_admit(1)  # budget freed
    with pytest.raises(AdmissionError) as batch:
        admission.try_admit(3)
    assert batch.value.code == "batch"
    assert admission.rejected >= 4


def test_admission_tenant_quota_rejects_noisy_tenant():
    admission = AdmissionController(
        max_pending=16, max_batch=8, tenant_quota=2
    )
    admission.try_admit(2, tenants={"noisy": 2})
    # The noisy tenant is full; a third job is rejected with 'quota'.
    with pytest.raises(AdmissionError) as quota:
        admission.try_admit(1, tenants={"noisy": 1})
    assert quota.value.code == "quota"
    # Other tenants are unaffected by the noisy one's rejection.
    admission.try_admit(2, tenants={"quiet": 2})
    # A mixed batch is all-or-nothing: nothing is admitted when one
    # tenant in it would blow its quota.
    pending_before = admission.pending
    with pytest.raises(AdmissionError) as mixed:
        admission.try_admit(2, tenants={"noisy": 1, "quiet": 1})
    assert mixed.value.code == "quota"
    assert admission.pending == pending_before
    assert admission.tenant_pending == {"noisy": 2, "quiet": 2}
    # Completions free the tenant's slots again.
    admission.release(tenant="noisy")
    admission.try_admit(1, tenants={"noisy": 1})
    stats = admission.as_dict()
    assert stats["tenant_quota"] == 2
    assert stats["tenant_pending"]["noisy"] == 2


def test_admission_without_quota_ignores_tenants():
    admission = AdmissionController(max_pending=4, max_batch=4)
    admission.try_admit(4, tenants={"one": 4})  # no quota → no cap
    assert admission.tenant_pending == {}
    assert "tenant_quota" not in admission.as_dict()
    admission.release(4, tenant="one")  # harmless without accounting


def test_admission_drain_and_stop_lifecycle():
    admission = AdmissionController()
    admission.try_admit(1)
    admission.begin_drain()
    with pytest.raises(AdmissionError) as draining:
        admission.try_admit(1)
    assert draining.value.code == "draining"
    assert not admission.idle
    admission.release()
    assert admission.idle
    admission.stop()
    with pytest.raises(AdmissionError) as stopped:
        admission.try_admit(1)
    assert stopped.value.code == "stopped"


# ---------------------------------------------------------------------------
# Tenants
# ---------------------------------------------------------------------------


def test_tenant_name_validation():
    validate_tenant("team-a.prod_2")
    for bad in ("", "../escape", ".hidden", "a/b", "x" * 65, 42):
        with pytest.raises(TenantError):
            validate_tenant(bad)


def test_tenant_isolation_and_merge(tmp_path):
    manager = TenantManager(str(tmp_path), shards=2)
    taken = manager.merge_delta(
        "team-a", [("key1", Verdict(status="equivalent"))]
    )
    assert taken == 1
    manager.merge_delta("team-b", [("key2", Verdict(status="equivalent"))])
    assert manager.flush() == 2
    assert manager.tenants == ("team-a", "team-b")
    # Knowledge stays in its namespace.
    assert manager.cache("team-a").store.get("key2") is None
    assert manager.cache("team-b").store.get("key2") is not None
    directory, shards = manager.worker_config("team-a")
    assert directory == str(tmp_path / "team-a")
    assert shards == 2


def test_tenant_manager_without_root_is_memory_only():
    manager = TenantManager(None)
    assert manager.worker_config("default") is None
    manager.merge_delta("default", [("k", Verdict(status="equivalent"))])
    assert manager.flush() == 0  # nothing persisted


# ---------------------------------------------------------------------------
# Shared pattern pools
# ---------------------------------------------------------------------------


def test_shared_pool_adopted_by_engine():
    pool = SharedPool.generate(9, 4, 42, "random")
    config = EngineConfig(num_random_words=4, seed=42)
    assert pool.compatible(config, 9)
    assert not pool.compatible(config, 8)
    tracer = Tracer("test")
    with use_tracer(tracer):
        engine = SimSweepEngine(config, initial_pool=pool)
        result = engine.check_miter(_equivalent_miter(9))
    assert result.status is CecStatus.EQUIVALENT
    assert tracer.metrics.counters.get("state.pool_adopted", 0) == 1


def test_incompatible_pool_is_ignored():
    pool = SharedPool.generate(9, 2, 7, "random")  # wrong seed/words
    tracer = Tracer("test")
    with use_tracer(tracer):
        engine = SimSweepEngine(EngineConfig(), initial_pool=pool)
        result = engine.check_miter(_equivalent_miter(9))
    assert result.status is CecStatus.EQUIVALENT
    assert tracer.metrics.counters.get("state.pool_adopted", 0) == 0


# ---------------------------------------------------------------------------
# Worker pool: warm serving, crash recovery, deadlines
# ---------------------------------------------------------------------------


def test_pool_warm_submission_hits_resident_cache(tmp_path):
    """The second identical submission must hit the worker-resident
    cache: ``cache.hits`` increases and wall-clock drops."""
    miter = _equivalent_miter(9)
    pool = WorkerPool(workers=1, tenants=TenantManager(str(tmp_path)))
    try:
        cold = pool.run_batch([ServeJob(miter=miter)], timeout=60)[0]
        warm = pool.run_batch([ServeJob(miter=miter)], timeout=60)[0]
    finally:
        pool.shutdown()
    assert cold.status == "equivalent"
    assert warm.status == "equivalent"
    assert cold.cache_hits == 0
    assert warm.cache_hits > 0
    assert warm.seconds < cold.seconds
    # Same persistent process served both: no respawn, no re-import.
    assert cold.worker == warm.worker
    assert pool.stats()["respawns"] == 0


def test_pool_reports_counterexamples(tmp_path):
    result = WorkerPool(workers=1)
    try:
        record = result.run_batch(
            [ServeJob(miter=_nonequivalent_miter())], timeout=60
        )[0]
    finally:
        result.shutdown()
    assert record.status == "nonequivalent"
    assert record.cex is not None


def test_pool_killed_worker_respawns_and_serves(tmp_path):
    """A SIGKILLed worker is detected, respawned, and the pool keeps
    serving — with the respawn warm from the flushed tenant cache."""
    miter = _equivalent_miter(9)
    pool = WorkerPool(workers=1, tenants=TenantManager(str(tmp_path)))
    try:
        first = pool.run_batch([ServeJob(miter=miter)], timeout=60)[0]
        assert first.status == "equivalent"
        victim = pool._workers[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(10)
        pool.poll(0.2)  # detect the death, respawn in place
        assert pool.stats()["respawns"] == 1
        again = pool.run_batch([ServeJob(miter=miter)], timeout=60)[0]
    finally:
        pool.shutdown()
    assert again.status == "equivalent"
    # The respawn reloaded the flushed tenant cache: still warm.
    assert again.cache_hits > 0


def test_pool_job_lost_to_crash_is_reported_as_error():
    """A job in flight when its worker dies resolves as an error result
    instead of hanging the batch."""
    pool = WorkerPool(workers=1)
    try:
        job_id = pool.submit(
            ServeJob(miter=_equivalent_miter(9), engine="sleep",
                     engine_kwargs={"seconds": 30.0})
        )
        deadline = time.monotonic() + 10
        while pool._workers[0].process.pid is None:
            time.sleep(0.01)
        time.sleep(0.3)  # let the worker pick the job up
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        result = None
        while result is None and time.monotonic() < deadline:
            for done in pool.poll(0.2):
                if done.job_id == job_id:
                    result = done
    finally:
        pool.shutdown()
    assert result is not None
    assert result.status == "error"
    assert "died" in result.error


def test_pool_deadline_kill_respawns_warm(tmp_path):
    """An over-deadline worker is staged-killed and respawned."""
    pool = WorkerPool(
        workers=1,
        tenants=TenantManager(str(tmp_path)),
        terminate_grace=0.2,
    )
    try:
        stuck = pool.run_batch(
            [
                ServeJob(
                    miter=_equivalent_miter(9),
                    engine="sleep",
                    engine_kwargs={"seconds": 60.0},
                    deadline=0.5,
                )
            ],
            timeout=30,
        )[0]
        assert stuck.status == "error"
        assert "deadline" in stuck.error
        assert pool.stats()["respawns"] == 1
        healthy = pool.run_batch(
            [ServeJob(miter=_equivalent_miter(9))], timeout=60
        )[0]
    finally:
        pool.shutdown()
    assert healthy.status == "equivalent"


def test_pool_shutdown_leaves_no_segments(tmp_path):
    pool = WorkerPool(workers=2, tenants=TenantManager(str(tmp_path)))
    pool.start()
    miter = _equivalent_miter(9)
    pool.run_batch([ServeJob(miter=miter), ServeJob(miter=miter)], timeout=60)
    pool.shutdown()
    assert _run_segments() == []


# ---------------------------------------------------------------------------
# End-to-end daemon
# ---------------------------------------------------------------------------


@pytest.fixture()
def daemon(tmp_path):
    """A real CecServer on a Unix socket, torn down via the protocol."""
    sock = str(tmp_path / "cec.sock")
    server = CecServer(
        sock,
        workers=1,
        cache_root=str(tmp_path / "cache"),
        max_pending=8,
        max_batch=4,
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever()), daemon=True
    )
    thread.start()
    yield sock, server
    if thread.is_alive():
        try:
            with ServeClient(sock, connect_retries=5) as client:
                client.shutdown()
        except (ConnectionError, ServeError, OSError):
            server.stop()
        thread.join(timeout=30)
    assert not thread.is_alive()


def test_server_round_trip_matches_oneshot(daemon):
    """The daemon's verdicts match a one-shot check of the same pairs,
    and the second batch is served warm (hits > 0, no respawn)."""
    sock, server = daemon
    eq = _equivalent_miter(9)
    neq = _nonequivalent_miter()
    with ServeClient(sock, connect_retries=50) as client:
        assert client.ping() == os.getpid()
        cold = client.submit_batch([eq, neq], names=["eq", "neq"])
        warm = client.submit_batch([eq, neq], names=["eq", "neq"])
        stats = client.stats()
    assert [r["status"] for r in cold] == ["equivalent", "nonequivalent"]
    assert [r["status"] for r in warm] == ["equivalent", "nonequivalent"]
    # One-shot ground truth.
    oneshot = SimSweepEngine(EngineConfig())
    assert oneshot.check_miter(eq).status is CecStatus.EQUIVALENT
    assert oneshot.check_miter(neq).status is CecStatus.NONEQUIVALENT
    # Warm serving: resident-cache hits, same persistent worker.
    assert warm[0]["cache_hits"] > 0
    assert stats["pool"]["respawns"] == 0
    assert stats["admission"]["admitted"] == 4
    assert stats["tenants"]["default"]["entries"] > 0


def test_server_tenant_quota_rejects_before_pool(tmp_path):
    """A quota rejection happens at the front door: structured 'quota'
    error, nothing submitted to the worker pool."""
    server = CecServer(
        str(tmp_path / "quota.sock"),
        workers=1,
        tenant_quota=1,
    )
    entry = {"miter": aig_to_wire(_equivalent_miter(9))}

    async def run():
        server._loop = asyncio.get_running_loop()
        return await server._handle_submit(
            {"op": "submit", "jobs": [entry, entry], "tenant": "noisy"}
        )

    reply = asyncio.run(run())
    assert reply["ok"] is False
    assert reply["error"] == "quota"
    assert "noisy" in reply["detail"]
    assert not server.pool.started  # rejected before any worker spawned
    assert server.admission.pending == 0


def test_server_rejects_oversized_batches(daemon):
    sock, _ = daemon
    miter = _equivalent_miter(9)
    with ServeClient(sock, connect_retries=50) as client:
        with pytest.raises(ServeError) as error:
            client.submit_batch([miter] * 5)  # max_batch is 4
    assert error.value.code == "batch"


def test_server_rejects_bad_tenants_and_jobs(daemon):
    sock, _ = daemon
    with ServeClient(sock, connect_retries=50) as client:
        with pytest.raises(ServeError):
            client.submit_batch([_equivalent_miter(9)], tenant="../escape")
        with pytest.raises(ServeError):
            client._request({"op": "submit", "jobs": "nope"})
        with pytest.raises(ServeError):
            client._request({"op": "no-such-op"})


def test_server_shutdown_drains_and_unlinks_socket(daemon):
    sock, server = daemon
    with ServeClient(sock, connect_retries=50) as client:
        record = client.submit_pair(voter(9), compress2(voter(9)))
        assert record["status"] == "equivalent"
        client.shutdown()
    deadline = time.monotonic() + 15
    while os.path.exists(sock) and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not os.path.exists(sock)
    assert _run_segments() == []


# ---------------------------------------------------------------------------
# Telemetry plane: flight recorder postmortems, SLOs, scrape endpoints
# ---------------------------------------------------------------------------


def test_pool_untraced_metrics_and_flight_ring(tmp_path):
    """Telemetry works without a tracer: the pool keeps its own registry
    and worker flight events arrive on every result."""
    from repro.obs import encode_prometheus

    pool = WorkerPool(workers=1, tenants=TenantManager(str(tmp_path)))
    try:
        record = pool.run_batch(
            [ServeJob(miter=_equivalent_miter(9))], timeout=60
        )[0]
        stats = pool.stats()
    finally:
        pool.shutdown()
    assert record.status == "equivalent"
    assert stats["jobs_submitted"] == 1
    assert stats["jobs_completed"] == 1
    assert stats["deadline_kills"] == 0
    assert stats["postmortems"] == []
    # The worker shipped its job/start + job/done milestones parent-side.
    assert stats["per_worker"][0]["flight_events"] >= 3
    text = encode_prometheus(pool.metrics)
    assert "repro_serve_jobs_submitted_total 1" in text
    assert "repro_serve_job_latency_seconds_bucket" in text


def test_pool_deadline_kill_writes_postmortem(tmp_path):
    """A deadline-killed worker leaves a flight-recorder postmortem and
    consumes SLO error budget as a deadline miss."""
    from repro.serve import SloRegistry, parse_slo_spec

    pm_dir = tmp_path / "postmortems"
    slo = SloRegistry([parse_slo_spec("p99=1s")])
    pool = WorkerPool(
        workers=1,
        tenants=TenantManager(str(tmp_path / "cache")),
        terminate_grace=0.2,
        slo=slo,
        postmortem_dir=str(pm_dir),
    )
    try:
        stuck = pool.run_batch(
            [
                ServeJob(
                    miter=_equivalent_miter(9),
                    engine="sleep",
                    engine_kwargs={"seconds": 60.0},
                    deadline=0.5,
                    name="wedged",
                )
            ],
            timeout=30,
        )[0]
        stats = pool.stats()
    finally:
        pool.shutdown()
    assert stuck.status == "error"
    artifacts = sorted(glob.glob(str(pm_dir / "postmortem_w0_*.json")))
    assert len(artifacts) == 1
    with open(artifacts[0], "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["worker"] == 0
    assert payload["reason"] == "deadline"
    assert [job["name"] for job in payload["failed_jobs"]] == ["wedged"]
    assert payload["failed_jobs"][0]["error"] == "job deadline exceeded"
    kinds = {event["kind"] for event in payload["events"]}
    assert "job" in kinds and "kill" in kinds
    assert stats["postmortems"] == artifacts
    assert stats["deadline_kills"] == 1
    # The miss consumed SLO budget for the default tenant.
    tenant = slo.snapshot()["tenants"][DEFAULT_TENANT]
    assert tenant["deadline_misses"] == 1
    assert tenant["objectives"]["p99"]["bad_events"] == 1


def test_server_metrics_op_http_scrape_and_slo_stats(tmp_path):
    """The daemon exposes one coherent scrape over both transports, and
    stats carries uptime, parent RSS, and the SLO snapshot."""
    import urllib.request

    sock = str(tmp_path / "cec.sock")
    server = CecServer(
        sock,
        workers=1,
        cache_root=str(tmp_path / "cache"),
        metrics_port=0,
        slo=["p99=5s"],
        postmortem_dir=str(tmp_path / "pm"),
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve_forever()), daemon=True
    )
    thread.start()
    try:
        with ServeClient(sock, connect_retries=50) as client:
            client.submit_batch(
                [_equivalent_miter(9)], tenant="acme", names=["eq"]
            )
            stats = client.stats()
            text = client.metrics()
            port = stats["metrics_port"]
            assert port == server.metrics_port and port > 0
            url = f"http://127.0.0.1:{port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                scraped = response.read().decode("utf-8")
            client.shutdown()
    finally:
        thread.join(timeout=30)
    assert not thread.is_alive()
    for body in (text, scraped):
        assert "# TYPE repro_serve_jobs_submitted_total counter" in body
        assert "repro_serve_job_latency_seconds_bucket" in body
        assert "repro_serve_uptime_seconds" in body
        assert 'repro_serve_tenant_admitted{tenant="acme"} 1' in body
        assert (
            'repro_slo_burn_rate{objective="p99",tenant="acme"' in body
        )
    assert stats["uptime_seconds"] > 0
    assert stats["rss_bytes"] and stats["rss_bytes"] > 1024 * 1024
    assert stats["slo"]["objectives"] == ["p99=5s"]
    assert stats["slo"]["tenants"]["acme"]["jobs"] == 1
    assert stats["admission"]["per_tenant"]["acme"]["admitted"] == 1


def test_client_timeout_surfaces_structured_error(tmp_path):
    """A wedged daemon yields ServeError('timeout'), not a raw socket
    exception, and the connection is dropped for reuse safety."""
    path = str(tmp_path / "wedged.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(1)
    release = threading.Event()

    def hold():
        conn, _ = listener.accept()
        release.wait(5.0)
        conn.close()

    holder = threading.Thread(target=hold, daemon=True)
    holder.start()
    try:
        client = ServeClient(path, timeout=0.3, connect_timeout=5.0)
        assert client.connect_timeout == 5.0
        with pytest.raises(ServeError) as error:
            client.ping()
        assert error.value.code == "timeout"
        assert "0.3" in str(error.value)
        assert client._sock is None  # dropped: frame stream is mid-message
    finally:
        release.set()
        holder.join(5.0)
        listener.close()
