"""Tests for the functional-knowledge cache (:mod:`repro.cache`)."""

import json
import os

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.miter import build_miter
from repro.aig.network import negate_outputs
from repro.bench import generators as gen
from repro.cache import (
    EQUIVALENT,
    INCONCLUSIVE,
    NONEQUIVALENT,
    CacheConfig,
    CacheCounters,
    MiterFingerprints,
    ProofStore,
    SweepCache,
    Verdict,
)
from repro.cache.fingerprint import remove_var, shrink_table, var_projection
from repro.cache.store import FORMAT_VERSION, PROOFS_FILENAME
from repro.portfolio.checker import CombinedChecker
from repro.sat.sweeping import SatSweepChecker
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def _two_ways_and3():
    """x1&x2&x3 built with two different association orders."""
    b = AigBuilder(3)
    x1, x2, x3 = 2, 4, 6
    left = b.add_and(b.add_and(x1, x2), x3)
    right = b.add_and(x1, b.add_and(x2, x3))
    b.add_po(left)
    b.add_po(right)
    return b.build(), left, right


def test_truth_table_keys_identify_equal_functions():
    aig, left, right = _two_ways_and3()
    fp = MiterFingerprints(aig)
    assert left != right  # different nodes...
    assert fp.key_of(left >> 1) == fp.key_of(right >> 1)  # ...same function


def test_npn_equivalent_but_different_functions_get_different_keys():
    # AND and OR share an NPN class; they must NOT share a proof key.
    b = AigBuilder(2)
    x1, x2 = 2, 4
    and_node = b.add_and(x1, x2)
    or_node = b.add_or(x1, x2)
    b.add_po(and_node)
    b.add_po(or_node)
    fp = MiterFingerprints(b.build())
    assert fp.key_of(and_node >> 1) != fp.key_of(or_node >> 1)


def test_keys_stable_across_rebuilds():
    """The same circuit built twice yields identical keys (warm start)."""
    fp1 = MiterFingerprints(gen.multiplier(4))
    fp2 = MiterFingerprints(gen.multiplier(4))
    aig = gen.multiplier(4)
    for node in range(aig.first_and, aig.num_nodes):
        assert fp1.key_of(node) == fp2.key_of(node)


def test_structural_keys_for_wide_cones():
    config = CacheConfig(tt_support_limit=4)
    aig = gen.adder(8)  # POs depend on up to 16 PIs
    fp = MiterFingerprints(aig, config)
    wide = [po >> 1 for po in aig.pos if fp.table_of(po >> 1) is None]
    assert wide, "expected some cones beyond the truth-table limit"
    assert all(fp.key_of(n).startswith("S:") for n in wide)
    fp2 = MiterFingerprints(gen.adder(8), config)
    assert [fp.key_of(n) for n in wide] == [fp2.key_of(n) for n in wide]


def test_decide_pair_equivalent_and_phase():
    aig, left, right = _two_ways_and3()
    fp = MiterFingerprints(aig)
    assert fp.decide_pair(left, right) == ("equivalent", None)
    status, cex = fp.decide_pair(left, right ^ 1)
    assert status == "nonequivalent"
    assert cex is not None and len(cex) == aig.num_pis


def test_decide_pair_cex_is_a_real_distinguisher():
    b = AigBuilder(3)
    x1, x2, x3 = 2, 4, 6
    f = b.add_and(x1, x2)  # depends on x1,x2
    g = b.add_and(x1, x3)  # depends on x1,x3
    b.add_po(f)
    b.add_po(g)
    aig = b.build()
    fp = MiterFingerprints(aig)
    status, cex = fp.decide_pair(f, g)
    assert status == "nonequivalent"
    # Replay: x1&x2 vs x1&x3 must differ under the synthesised pattern.
    v_f = cex[0] & cex[1]
    v_g = cex[0] & cex[2]
    assert v_f != v_g


def test_pair_key_symmetric():
    aig, left, right = _two_ways_and3()
    fp = MiterFingerprints(aig)
    assert fp.pair_key(left, right) == fp.pair_key(right, left)
    assert fp.pair_key(left ^ 1, right) == fp.pair_key(left, right ^ 1)
    assert fp.pair_key(left, right) != fp.pair_key(left, right ^ 1)


def test_cut_key_order_insensitive():
    aig = gen.multiplier(3)
    fp = MiterFingerprints(aig)
    cut = [aig.first_and, aig.first_and + 1, aig.first_and + 2]
    assert fp.cut_key(cut) == fp.cut_key(list(reversed(cut)))


def test_shrink_table_drops_fake_support():
    # f = x_a over support (a, b): b is non-influential.
    table = var_projection(0, 2)
    shrunk, support = shrink_table(table, (3, 7))
    assert support == (3,)
    assert shrunk == 0b10


def test_remove_var_projects_out_dont_care():
    table = var_projection(1, 2)  # x_b over (a, b)
    assert remove_var(table, 0, 2) == 0b10


# ----------------------------------------------------------------------
# Proof store
# ----------------------------------------------------------------------


def test_store_roundtrip(tmp_path):
    store = ProofStore()
    cex = [1, 0, 1, 1]
    assert store.put("P:a|b|0", Verdict(EQUIVALENT, engine="sim"))
    assert store.put(
        "P:a|c|1", Verdict(NONEQUIVALENT, cex=cex, num_pis=4, context="G")
    )
    assert store.append_pending(str(tmp_path)) == 2
    loaded = ProofStore.load(str(tmp_path))
    assert len(loaded) == 2
    assert loaded.get("P:a|b|0").status == EQUIVALENT
    verdict = loaded.get("P:a|c|1")
    assert verdict.cex == cex
    assert verdict.num_pis == 4
    assert verdict.context == "G"


def test_store_conclusive_never_regresses():
    store = ProofStore()
    assert store.put("k", Verdict(EQUIVALENT))
    assert not store.put("k", Verdict(INCONCLUSIVE, conflict_limit=10**9))
    assert store.get("k").status == EQUIVALENT


def test_store_inconclusive_upgrades_on_higher_budget():
    store = ProofStore()
    assert store.put("k", Verdict(INCONCLUSIVE, conflict_limit=100))
    assert not store.put("k", Verdict(INCONCLUSIVE, conflict_limit=100))
    assert not store.put("k", Verdict(INCONCLUSIVE, conflict_limit=50))
    assert store.put("k", Verdict(INCONCLUSIVE, conflict_limit=200))
    assert store.put("k", Verdict(EQUIVALENT))


def test_store_tolerates_corrupt_lines(tmp_path):
    store = ProofStore()
    store.put("P:a|b|0", Verdict(EQUIVALENT))
    store.append_pending(str(tmp_path))
    path = tmp_path / PROOFS_FILENAME
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{truncated garba")  # torn write
    loaded = ProofStore.load(str(tmp_path))
    assert len(loaded) == 1
    assert loaded.load_errors == 1


def test_store_rejects_incompatible_format(tmp_path):
    path = tmp_path / PROOFS_FILENAME
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"format": FORMAT_VERSION + 1}) + "\n")
        handle.write('{"k":"P:a|b|0","s":"equivalent"}\n')
    assert len(ProofStore.load(str(tmp_path))) == 0


def test_store_last_occurrence_wins(tmp_path):
    path = tmp_path / PROOFS_FILENAME
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"format": FORMAT_VERSION}) + "\n")
        handle.write('{"k":"k","s":"inconclusive","l":5}\n')
        handle.write('{"k":"k","s":"equivalent"}\n')
    assert ProofStore.load(str(tmp_path)).get("k").status == EQUIVALENT


def test_store_compact_merges_and_dedups(tmp_path):
    a = ProofStore()
    a.put("shared", Verdict(INCONCLUSIVE, conflict_limit=10))
    a.put("only_a", Verdict(EQUIVALENT))
    a.append_pending(str(tmp_path))
    b = ProofStore.load(str(tmp_path))
    b.put("shared", Verdict(EQUIVALENT))
    b.put("only_b", Verdict(EQUIVALENT))
    b.append_pending(str(tmp_path))
    # Compact through a store that never saw b's appends: they survive.
    a.put("shared", Verdict(EQUIVALENT))
    a.compact(str(tmp_path))
    final = ProofStore.load(str(tmp_path))
    assert set(final) == {"shared", "only_a", "only_b"}
    assert final.get("shared").status == EQUIVALENT
    lines = (tmp_path / PROOFS_FILENAME).read_text().splitlines()
    assert len(lines) == 1 + 3  # format line + one line per key


# ----------------------------------------------------------------------
# Bound cache semantics
# ----------------------------------------------------------------------


def _wide_miter():
    return build_miter(gen.adder(8), gen.kogge_stone_adder(8))


def test_bound_cache_records_and_replays(tmp_path):
    miter = _wide_miter()
    cache = SweepCache(CacheConfig(directory=str(tmp_path)))
    bound = cache.bind(miter)
    po = miter.pos[-1]  # carry-out: wide support, not table-decidable
    assert bound.lookup_pair(po, 0) is None  # cold miss
    bound.record_equivalent(po, 0, context="P")
    assert cache.counters.stores == 1
    cache.flush()

    warm = SweepCache(CacheConfig(directory=str(tmp_path))).bind(miter)
    known = warm.lookup_pair(po, 0)
    assert known is not None and known.is_equivalent


def test_bound_cache_invalidates_bogus_cex(tmp_path):
    miter = _wide_miter()
    cache = SweepCache(CacheConfig(directory=str(tmp_path)))
    bound = cache.bind(miter)
    po = miter.pos[-1]  # carry-out: wide support, not table-decidable
    key = bound.fingerprints.pair_key(po, 0)
    # Poison the store: claims nonequivalent with a non-distinguishing cex
    # (the miter is equivalent, so NO pattern can distinguish PO vs 0).
    cache.store.put(
        key,
        Verdict(
            NONEQUIVALENT, cex=[0] * miter.num_pis, num_pis=miter.num_pis
        ),
    )
    assert bound.lookup_pair(po, 0) is None
    assert cache.counters.invalidated == 1
    assert cache.store.get(key) is None  # dropped from the live view


def test_bound_cache_num_pis_mismatch_invalidates(tmp_path):
    miter = _wide_miter()
    cache = SweepCache(CacheConfig(directory=str(tmp_path)))
    bound = cache.bind(miter)
    po = miter.pos[-1]  # carry-out: wide support, not table-decidable
    key = bound.fingerprints.pair_key(po, 0)
    cache.store.put(key, Verdict(NONEQUIVALENT, cex=[1, 0], num_pis=2))
    assert bound.lookup_pair(po, 0) is None
    assert cache.counters.invalidated == 1


def test_bound_cache_inconclusive_needs_opt_in(tmp_path):
    miter = _wide_miter()
    cache = SweepCache(CacheConfig(directory=str(tmp_path)))
    bound = cache.bind(miter)
    po = miter.pos[-1]  # carry-out: wide support, not table-decidable
    bound.record_inconclusive(po, 0, conflict_limit=500)
    assert bound.lookup_pair(po, 0) is None
    known = bound.lookup_pair(po, 0, want_inconclusive=True)
    assert known is not None
    assert known.status == INCONCLUSIVE
    assert known.conflict_limit == 500


def test_bound_cache_skips_table_decidable_pairs():
    aig, left, right = _two_ways_and3()
    cache = SweepCache(CacheConfig())
    bound = cache.bind(aig)
    bound.record_equivalent(left, right)
    assert cache.counters.stores == 0  # fingerprints re-decide these free
    known = bound.lookup_pair(left, right)
    assert known is not None and known.is_equivalent
    assert cache.counters.fingerprint_decided == 1


def test_local_mismatch_memo_roundtrip(tmp_path):
    miter = _wide_miter()
    cache = SweepCache(CacheConfig(directory=str(tmp_path)))
    bound = cache.bind(miter)
    a, b = miter.pos[-1], miter.pos[-2]
    cut = [3, 5, 9]
    assert not bound.local_mismatch_seen(a, b, cut)
    bound.record_local_mismatch(a, b, cut)
    cache.flush()
    warm = SweepCache(CacheConfig(directory=str(tmp_path))).bind(miter)
    assert warm.local_mismatch_seen(a, b, list(reversed(cut)))


def test_readonly_cache_never_writes(tmp_path):
    miter = _wide_miter()
    cache = SweepCache(
        CacheConfig(directory=str(tmp_path), readonly=True)
    )
    bound = cache.bind(miter)
    bound.record_equivalent(miter.pos[-1], 0)
    assert cache.flush() == 0
    assert not os.path.exists(tmp_path / PROOFS_FILENAME)


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------


def test_counters_diff_and_roundtrip():
    counters = CacheCounters(hits=5, misses=3, stores=2)
    earlier = counters.copy()
    counters.hits += 2
    counters.invalidated += 1
    delta = counters.diff(earlier)
    assert delta.hits == 2 and delta.invalidated == 1 and delta.misses == 0
    assert CacheCounters.from_dict(counters.as_dict()) == counters
    assert counters.hit_rate == pytest.approx(7 / 11)  # lookups incl. invalidated
    assert "hits=7" in counters.summary()


# ----------------------------------------------------------------------
# Engine integration: the warm start
# ----------------------------------------------------------------------


def _engine(tmp_path):
    config = EngineConfig(cache=CacheConfig(directory=str(tmp_path)))
    return SimSweepEngine(config)


def test_cold_then_warm_equivalent(tmp_path):
    cold = _engine(tmp_path).check_miter(_wide_miter())
    assert cold.status is CecStatus.EQUIVALENT
    assert cold.report.exhaustive_pairs > 0
    assert cold.report.cache.stores > 0
    assert cold.report.cache.hits == 0

    warm = _engine(tmp_path).check_miter(_wide_miter())
    assert warm.status is CecStatus.EQUIVALENT
    assert warm.report.cache.hits > 0
    # The acceptance criterion: every previously proved pair resolves
    # from the cache; no exhaustive-simulation pair checks remain.
    assert warm.report.exhaustive_pairs == 0


def test_cold_then_warm_nonequivalent(tmp_path):
    buggy = negate_outputs(gen.kogge_stone_adder(8), [3])
    miter = build_miter(gen.adder(8), buggy)
    cold = _engine(tmp_path).check_miter(miter)
    assert cold.status is CecStatus.NONEQUIVALENT
    warm = _engine(tmp_path).check_miter(miter)
    assert warm.status is CecStatus.NONEQUIVALENT
    assert warm.cex is not None


def test_warm_start_verdicts_match_uncached(tmp_path):
    """A warm engine must agree with an uncached engine case by case."""
    pairs = [
        (gen.adder(6), gen.kogge_stone_adder(6)),
        (gen.multiplier(4), gen.multiplier(4)),
        (gen.adder(6), negate_outputs(gen.kogge_stone_adder(6), [0])),
    ]
    for aig_a, aig_b in pairs:
        miter = build_miter(aig_a, aig_b)
        baseline = SimSweepEngine(EngineConfig()).check_miter(miter)
        _engine(tmp_path).check_miter(miter)  # populate
        warm = _engine(tmp_path).check_miter(miter)
        assert warm.status is baseline.status


def test_combined_checker_shares_cache_with_sat(tmp_path):
    config = EngineConfig(cache=CacheConfig(directory=str(tmp_path)))
    checker = CombinedChecker(config=config)
    assert checker.engine.cache is checker.sat_checker.cache
    result = checker.check_miter(_wide_miter())
    assert result.status is CecStatus.EQUIVALENT
    assert result.report.cache is not None

    warm = CombinedChecker(config=config)
    warm_result = warm.check_miter(_wide_miter())
    assert warm_result.status is CecStatus.EQUIVALENT
    assert warm_result.report.cache.hits > 0


def test_sat_checker_warm_start(tmp_path):
    miter = _wide_miter()
    cold_cache = SweepCache(CacheConfig(directory=str(tmp_path)))
    cold = SatSweepChecker(cache=cold_cache)
    assert cold.check_miter(miter).status is CecStatus.EQUIVALENT

    warm_cache = SweepCache(CacheConfig(directory=str(tmp_path)))
    warm = SatSweepChecker(cache=warm_cache)
    result = warm.check_miter(miter)
    assert result.status is CecStatus.EQUIVALENT
    assert result.report.cache.hits > 0


def test_engine_without_cache_reports_none():
    result = SimSweepEngine(EngineConfig()).check_miter(_wide_miter())
    assert result.report.cache is None


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(tt_support_limit=-1).validate()
    with pytest.raises(ValueError):
        CacheConfig(npn_limit=9).validate()
    CacheConfig().validate()


# ---------------------------------------------------------------------------
# Sharded proof stores
# ---------------------------------------------------------------------------


def test_sharded_store_routing_is_stable(tmp_path):
    from repro.cache import ShardedProofStore

    store = ShardedProofStore.load(str(tmp_path), 4)
    keys = [f"key-{i}" for i in range(64)]
    placement = {key: store.shard_index(key) for key in keys}
    reloaded = ShardedProofStore.load(str(tmp_path), 4)
    assert placement == {key: reloaded.shard_index(key) for key in keys}
    assert set(placement.values()) == set(range(4))  # all shards used


def test_sharded_store_round_trip(tmp_path):
    from repro.cache import ShardedProofStore
    from repro.cache.sharding import shard_name

    store = ShardedProofStore.load(str(tmp_path), 3)
    for i in range(24):
        assert store.put(f"key-{i}", Verdict(status=EQUIVALENT, num_pis=i))
    assert len(store.pending) == 24
    assert store.append_pending(str(tmp_path)) == 24
    assert not store.pending
    # Each shard persisted under its own subdirectory.
    populated = [
        name for name in sorted(os.listdir(str(tmp_path)))
        if name.startswith("shard")
    ]
    assert populated == [shard_name(i) for i in range(3)]
    reloaded = ShardedProofStore.load(str(tmp_path), 3)
    assert len(reloaded) == 24
    assert reloaded.get("key-7").num_pis == 7


def test_sharded_store_clear_pending_keeps_entries(tmp_path):
    from repro.cache import ShardedProofStore

    store = ShardedProofStore.load(str(tmp_path), 2)
    store.put("a", Verdict(status=EQUIVALENT))
    store.clear_pending()
    assert not store.pending
    assert store.get("a") is not None


def test_sharded_store_shard_count_bounds(tmp_path):
    from repro.cache import ShardedProofStore

    with pytest.raises(ValueError):
        ShardedProofStore.load(str(tmp_path), 0)
    with pytest.raises(ValueError):
        ShardedProofStore.load(str(tmp_path), 65)


def test_sweep_cache_with_shards_persists(tmp_path):
    cache = SweepCache(CacheConfig(directory=str(tmp_path), shards=2))
    miter = _wide_miter()
    engine = SimSweepEngine(EngineConfig(), cache=cache)
    assert engine.check_miter(miter).status is CecStatus.EQUIVALENT
    cache.flush()

    warm = SweepCache(CacheConfig(directory=str(tmp_path), shards=2))
    assert len(warm.store) == len(cache.store) > 0
    engine2 = SimSweepEngine(EngineConfig(), cache=warm)
    assert engine2.check_miter(miter).status is CecStatus.EQUIVALENT
    assert warm.counters.hits > 0


def test_cache_config_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        CacheConfig(shards=0).validate()
    with pytest.raises(ValueError):
        CacheConfig(shards=65).validate()


def test_proof_store_clear_pending_keeps_entries():
    store = ProofStore()
    store.put("k", Verdict(status=EQUIVALENT))
    store.clear_pending()
    assert not store.pending
    assert store.get("k") is not None
