"""Tests for cleanup, replacement rebuilding, double and cone extraction."""

import itertools

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.literals import lit
from repro.aig.transform import (
    cleanup,
    cone_aig,
    double,
    rebuild_with_replacements,
    relabel_compact,
)

from conftest import brute_force_equivalent, random_aig


def test_cleanup_removes_dangling():
    b = AigBuilder(2)
    used = b.add_and(2, 4)
    b.add_and(used, 2 ^ 1)  # dangling
    b.add_po(used)
    aig = b.build()
    cleaned = cleanup(aig)
    assert cleaned.num_ands == 1
    assert brute_force_equivalent(aig, cleaned)[0]


def test_cleanup_preserves_function():
    aig = random_aig(num_pis=6, num_nodes=50, num_pos=2, seed=11)
    cleaned = cleanup(aig)
    assert brute_force_equivalent(aig, cleaned)[0]
    assert cleaned.num_ands <= aig.num_ands


def test_relabel_compact_map_is_consistent():
    aig = random_aig(num_pis=5, num_nodes=40, seed=12)
    cleaned, mapping = relabel_compact(aig)
    pattern = [1, 0, 1, 0, 1]
    old_values = aig.evaluate_all(pattern)
    new_values = cleaned.evaluate_all(pattern)
    for old_node, new_literal in mapping.items():
        assert old_values[old_node] == (
            new_values[new_literal >> 1] ^ (new_literal & 1)
        )


def test_rebuild_with_replacements_merges():
    # xy and (xy)y are equal functions that strash cannot merge.
    b = AigBuilder(2)
    a = b.add_and(2, 4)
    redundant = b.add_and(a, 4)
    b.add_po(b.add_xor(a, redundant))
    b.add_po(a)  # keep the representative alive through cleanup
    aig = b.build()
    merged, mapping = rebuild_with_replacements(aig, {redundant >> 1: a})
    # XOR of equal signals is constant false.
    assert merged.pos[0] == 0
    assert merged.num_ands == 1  # only the xy node survives
    assert mapping[a >> 1] == mapping[redundant >> 1]


def test_rebuild_with_complemented_replacement():
    b = AigBuilder(2)
    f = b.add_and(2, 4)
    # h = !x!y + !xy + x!y == !(xy), structurally distinct from !f.
    h = b.add_or_multi(
        [b.add_and(3, 5), b.add_and(3, 4), b.add_and(2, 5)]
    )
    b.add_po(b.add_and(f, h))
    aig = b.build()
    assert (h >> 1) != (f >> 1)
    # The replacement maps the *node* of h; compensate for h's phase.
    merged, _ = rebuild_with_replacements(
        aig, {h >> 1: f ^ 1 ^ (h & 1)}
    )
    assert merged.pos == [0]


def test_rebuild_rejects_forward_targets():
    b = AigBuilder(2)
    a = b.add_and(2, 4)
    c = b.add_and(a, 2)
    b.add_po(c)
    aig = b.build()
    with pytest.raises(ValueError):
        rebuild_with_replacements(aig, {a >> 1: c})


def test_double_doubles_interface_and_function():
    aig = random_aig(num_pis=4, num_nodes=20, num_pos=2, seed=13)
    doubled = double(aig)
    assert doubled.num_pis == 2 * aig.num_pis
    assert doubled.num_pos == 2 * aig.num_pos
    # ``double`` duplicates the network verbatim (dangling logic included).
    assert doubled.num_ands == 2 * aig.num_ands
    for bits in itertools.product([0, 1], repeat=4):
        pattern = list(bits)
        single = aig.evaluate(pattern)
        copy1 = doubled.evaluate(pattern + [0] * 4)[: aig.num_pos]
        copy2 = doubled.evaluate([0] * 4 + pattern)[aig.num_pos :]
        assert copy1 == single
        assert copy2 == single


def test_double_multiple_times():
    aig = random_aig(num_pis=3, num_nodes=10, num_pos=1, seed=14)
    doubled = double(aig, 3)
    assert doubled.num_pis == 8 * aig.num_pis
    assert doubled.num_pos == 8 * aig.num_pos


def test_cone_aig_keeps_interface():
    aig = random_aig(num_pis=5, num_nodes=40, num_pos=3, seed=15)
    cone = cone_aig(aig, [1])
    assert cone.num_pis == aig.num_pis
    assert cone.num_pos == 1
    for bits in itertools.product([0, 1], repeat=5):
        pattern = list(bits)
        assert cone.evaluate(pattern) == [aig.evaluate(pattern)[1]]
