"""Tests for cones, TFO, supports and level batching."""

import numpy as np

from repro.aig.builder import AigBuilder
from repro.aig.traversal import (
    collect_cone,
    collect_tfo,
    level_batches,
    po_support_sizes,
    support,
    support_sizes,
    supports,
    supports_capped,
)

from conftest import random_aig


def build_diamond():
    """x,y -> a=xy, b=x+y, f=a·b (reconvergent diamond)."""
    b = AigBuilder(2)
    a = b.add_and(2, 4)
    o = b.add_or(2, 4)
    f = b.add_and(a, o)
    b.add_po(f)
    return b.build(), a >> 1, o >> 1, f >> 1


def test_collect_cone_full():
    aig, a, o, f = build_diamond()
    assert collect_cone(aig, [f]) == sorted([a, o, f])


def test_collect_cone_stops_at_cut():
    aig, a, o, f = build_diamond()
    assert collect_cone(aig, [f], stop=[a, o]) == [f]
    assert collect_cone(aig, [f], stop=[f]) == []


def test_collect_tfo():
    aig, a, o, f = build_diamond()
    assert collect_tfo(aig, [a]) == {a, f}
    tfo_x = collect_tfo(aig, [1])
    assert tfo_x == {1, a, o, f}


def test_supports_agree():
    aig = random_aig(num_pis=6, num_nodes=60, seed=2)
    full = supports(aig)
    sizes = support_sizes(aig)
    for node in range(aig.num_nodes):
        assert support(aig, node) == full[node]
        assert sizes[node] == len(full[node])


def test_support_sizes_with_cap():
    aig = random_aig(num_pis=8, num_nodes=60, seed=3)
    exact = support_sizes(aig)
    capped = support_sizes(aig, cap=3)
    for node in range(aig.num_nodes):
        if exact[node] <= 3:
            assert capped[node] == exact[node]
        else:
            assert capped[node] == 4


def test_supports_capped_sets():
    aig = random_aig(num_pis=8, num_nodes=60, seed=4)
    full = supports(aig)
    capped = supports_capped(aig, 4)
    for node in range(aig.num_nodes):
        if len(full[node]) <= 4:
            assert capped[node] == frozenset(full[node])
        else:
            assert capped[node] is None


def test_po_support_sizes():
    aig = random_aig(num_pis=6, num_nodes=40, seed=5)
    sizes = po_support_sizes(aig)
    full = supports(aig)
    assert sizes == [len(full[p >> 1]) for p in aig.pos]


def test_level_batches_partition_and_order():
    aig = random_aig(num_pis=6, num_nodes=80, seed=6)
    nodes = np.arange(aig.first_and, aig.num_nodes)
    batches = level_batches(aig, nodes)
    levels = aig.levels()
    seen = []
    last_level = -1
    for batch in batches:
        batch_levels = set(int(levels[n]) for n in batch)
        assert len(batch_levels) == 1
        level = batch_levels.pop()
        assert level > last_level
        last_level = level
        seen.extend(int(n) for n in batch)
    assert sorted(seen) == list(range(aig.first_and, aig.num_nodes))


def test_level_batches_empty():
    aig = random_aig(seed=7)
    assert level_batches(aig, []) == []
