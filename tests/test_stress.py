"""Heavier end-to-end checks (seconds each, not milliseconds).

These exercise the engine at sizes where the multi-round simulation,
window merging and repeated local phases all actually engage — small
enough for CI, big enough that a performance or soundness regression in
the hot paths is visible.
"""

import pytest

from repro.bench.generators import (
    kogge_stone_adder,
    adder,
    multiplier,
    wallace_multiplier,
)
from repro.portfolio.checker import CombinedChecker
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine


def test_cross_architecture_multipliers_10bit():
    """array vs Wallace at 20 PIs: a one-shot exhaustive P phase over
    a ~3k-node merged window (2^20 patterns per node)."""
    a = multiplier(10)
    b = wallace_multiplier(10)
    engine = SimSweepEngine(EngineConfig())
    result = engine.check(a, b)
    assert result.status is CecStatus.EQUIVALENT
    # The one-shot P phase must have done the proving (a couple of low
    # output bits already strash to constant zero in the miter).
    assert result.report.phases[0].kind == "P"
    record = result.report.phases[0]
    assert record.proved == record.candidates >= 18


def test_wide_adders_32bit():
    """64-PI adders exceed every exhaustive threshold: the engine must
    sweep internal pairs instead, then let SAT finish if needed."""
    a = adder(32)
    b = kogge_stone_adder(32)
    checker = CombinedChecker()
    result = checker.check(a, b)
    assert result.status is CecStatus.EQUIVALENT


def test_multi_round_simulation_engages():
    """Tiny memory budget on an 18-PI one-shot P: dozens of rounds."""
    a = multiplier(9)
    b = wallace_multiplier(9)
    config = EngineConfig(memory_budget_words=1 << 14)  # 128 KiB
    engine = SimSweepEngine(config)
    result = engine.check(a, b)
    assert result.status is CecStatus.EQUIVALENT
