"""Tests for exact resubstitution."""

import pytest

from repro.aig.builder import AigBuilder
from repro.bench.generators import adder, multiplier
from repro.synth.resub import resubstitute

from conftest import brute_force_equivalent, random_aig


def test_zero_resub_merges_duplicates():
    b = AigBuilder(3)
    x, y, z = 2, 4, 6
    f1 = b.add_or(b.add_and(x, y), b.add_and(x, z))
    f2 = b.add_and(x, b.add_or(y, z))  # same function, other structure
    b.add_po(f1)
    b.add_po(f2)
    aig = b.build()
    reduced = resubstitute(aig)
    assert brute_force_equivalent(aig, reduced)[0]
    assert reduced.pos[0] == reduced.pos[1]
    assert reduced.num_ands < aig.num_ands


def test_one_resub_finds_xor_divisors():
    """n computed as a fresh 4-node cone when an XOR of divisors exists."""
    b = AigBuilder(2)
    x, y = 2, 4
    pre_xor = b.add_xor(x, y)
    b.add_po(pre_xor)
    # Rebuild XOR from scratch (no structural sharing with pre_xor's
    # internal nodes beyond what strash already catches).
    redundant = b.add_or(b.add_and(x, y ^ 1), b.add_and(x ^ 1, y))
    b.add_po(redundant)
    aig = b.build()
    reduced = resubstitute(aig)
    assert brute_force_equivalent(aig, reduced)[0]
    assert reduced.pos[0] == reduced.pos[1]


def test_resub_preserves_function_on_random():
    for seed in range(5):
        aig = random_aig(num_pis=6, num_nodes=70, num_pos=4, seed=seed)
        reduced = resubstitute(aig)
        assert brute_force_equivalent(aig, reduced)[0], seed
        assert reduced.num_ands <= aig.num_ands


def test_resub_on_arithmetic():
    original = adder(5)
    reduced = resubstitute(original)
    assert brute_force_equivalent(original, reduced)[0]
    assert reduced.num_ands <= original.num_ands
    mult = multiplier(4)
    reduced_mult = resubstitute(mult)
    assert brute_force_equivalent(mult, reduced_mult)[0]


def test_resub_without_one_resub():
    aig = random_aig(num_pis=5, num_nodes=50, seed=7)
    reduced = resubstitute(aig, allow_one_resub=False)
    assert brute_force_equivalent(aig, reduced)[0]


def test_resub_rejects_wide_networks():
    aig = random_aig(num_pis=20, num_nodes=10, seed=8)
    with pytest.raises(ValueError, match="at most 16"):
        resubstitute(aig)
