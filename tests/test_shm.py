"""Tests for the shared-memory data plane (repro.shm)."""

import glob
import os
import pickle
import warnings

import numpy as np
import pytest

from repro.aig.miter import build_miter
from repro.bench.generators import multiplier, voter
from repro.obs import Tracer, use_tracer
from repro.portfolio.parallel import (
    ParallelPortfolioChecker,
    _post_message,
    resolve_use_shm,
)
from repro.shm import (
    Segment,
    SegmentRegistry,
    adopt_aig,
    aig_shm_arrays,
    build_layout,
    detach_aig,
    shm_available,
)
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.sweep.state import SweepState
from repro.synth.resyn import compress2

from conftest import random_aig

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

SHM_DIR = "/dev/shm"


def _run_segments():
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(glob.glob(os.path.join(SHM_DIR, "rs*")))


@pytest.fixture(autouse=True)
def _no_leftover_segments():
    """Every test must leave /dev/shm as clean as it found it."""
    before = _run_segments()
    yield
    assert _run_segments() == before


# ---------------------------------------------------------------------------
# Segment lifecycle
# ---------------------------------------------------------------------------


def test_segment_round_trip_bit_identical():
    arrays = {
        "a": np.arange(1000, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, 333),
        "c": np.frombuffer(os.urandom(4096), dtype=np.uint8),
    }
    specs, total = build_layout(arrays)
    segment = Segment.create("rstestseg0", total)
    try:
        segment.write_arrays(arrays, specs)
        segment.publish()

        peer = Segment.attach("rstestseg0")
        views = peer.view_arrays(specs)
        for name, source in arrays.items():
            assert views[name].dtype == source.dtype
            assert np.array_equal(views[name], source)
            assert not views[name].flags.writeable
        del views
        peer.close()
    finally:
        segment.unlink()
        segment.close()


def test_segment_payload_is_64_byte_aligned():
    arrays = {"x": np.ones(3, dtype=np.uint8), "y": np.ones(5, dtype=np.int64)}
    specs, total = build_layout(arrays)
    for spec in specs:
        assert spec.offset % 64 == 0
    assert total >= specs[-1].offset + specs[-1].nbytes


def test_segment_refcount_is_advisory_bookkeeping():
    specs, total = build_layout({"x": np.zeros(4)})
    segment = Segment.create("rstestref0", total)
    try:
        segment.publish()
        assert segment.refcount == 1
        assert segment.incref() == 2
        assert segment.decref() == 1
        assert segment.decref() == 0
        assert segment.decref() == 0  # floors at zero
    finally:
        segment.unlink()
        segment.close()


def test_attach_rejects_unpublished_and_foreign_blocks():
    specs, total = build_layout({"x": np.zeros(4)})
    segment = Segment.create("rstestraw0", total)
    try:
        with pytest.raises(ValueError):
            Segment.attach("rstestraw0")  # created, never published
    finally:
        segment.unlink()
        segment.close()


# ---------------------------------------------------------------------------
# Registry: ownership protocol and reaping
# ---------------------------------------------------------------------------


def test_registry_publish_adopt_release_reap():
    tracer = Tracer("test")
    with use_tracer(tracer):
        parent = SegmentRegistry()
        worker = SegmentRegistry(token=parent.token, suffix="w0")
        payload = {"sig": np.arange(512, dtype=np.uint64)}
        descriptor = worker.publish(payload, meta={"kind": "test"})
        assert descriptor.segment.startswith(parent.prefix)

        adoption = parent.adopt(descriptor)
        assert np.array_equal(adoption.arrays["sig"], payload["sig"])
        assert adoption.meta["kind"] == "test"
        parent.release(adoption)

        worker.close()  # workers never unlink
        assert _run_segments()  # the block is still there for the reaper
        leaked = parent.reap()
    assert leaked == 0
    counters = tracer.metrics.counters
    assert counters["shm.segments_created"] == 1
    assert counters["shm.segments_adopted"] == 1
    assert counters["shm.segments_released"] == 1
    assert "shm.segments_leaked" not in counters


def test_registry_blob_round_trip():
    registry = SegmentRegistry()
    blob = pickle.dumps({"report": list(range(100))})
    descriptor = registry.publish(blob=blob)
    adoption = registry.adopt(descriptor)
    assert pickle.loads(adoption.blob.tobytes()) == {
        "report": list(range(100))
    }
    registry.release(adoption)
    assert registry.reap() == 0


def test_registry_reap_counts_unannounced_segments_as_leaked():
    tracer = Tracer("test")
    with use_tracer(tracer):
        parent = SegmentRegistry()
        # A worker publishes and then dies before its descriptor reaches
        # the parent: nobody announced the block.
        worker = SegmentRegistry(token=parent.token, suffix="w0")
        worker.publish({"junk": np.zeros(64)})
        worker.close()
        leaked = parent.reap()
    assert leaked == 1
    assert tracer.metrics.counters["shm.segments_leaked"] == 1


# ---------------------------------------------------------------------------
# Payload codecs: AIG and SweepState
# ---------------------------------------------------------------------------


def test_aig_descriptor_round_trip():
    aig = random_aig(num_pis=6, num_nodes=60, num_pos=3, seed=7)
    registry = SegmentRegistry()
    arrays, meta = aig_shm_arrays(aig)
    descriptor = registry.publish(arrays, meta=meta)
    adopted = adopt_aig(registry.adopt(descriptor))
    assert adopted.num_pis == aig.num_pis
    assert adopted.num_ands == aig.num_ands
    pattern = [1, 0, 1, 1, 0, 1]
    assert adopted.evaluate(pattern) == aig.evaluate(pattern)
    detached = detach_aig(adopted)
    registry.reap()
    # The detached copy must survive the reap.
    assert detached.evaluate(pattern) == aig.evaluate(pattern)


def _undecided_state(miter):
    """A real carried SweepState, produced by a crippled sim run."""
    config = EngineConfig(
        k_P=6, k_p=4, k_g=4, k_l=4, C=4, num_random_words=4,
        max_local_phases=1, max_global_iterations=1,
    )
    result = SimSweepEngine(config).check_miter(miter)
    assert result.status is CecStatus.UNDECIDED
    assert result.sim_state is not None
    return result


def test_sweep_state_shm_round_trip():
    miter = build_miter(multiplier(4), compress2(multiplier(4)))
    result = _undecided_state(miter)
    state = result.sim_state
    arrays, meta = state.to_shm_arrays()
    registry = SegmentRegistry()
    descriptor = registry.publish(arrays, meta=meta)
    adoption = registry.adopt(descriptor)
    clone = SweepState.attach(adoption.arrays, descriptor.meta)
    assert clone.matches(clone.network())
    assert clone.carried_words == state.carried_words
    clone.detach()
    registry.reap()
    # Detached state owns every array: usable after the reap.
    assert clone.carried_words == state.carried_words
    assert clone.network().num_ands == result.reduced_miter.num_ands


# ---------------------------------------------------------------------------
# Portfolio integration
# ---------------------------------------------------------------------------


def test_parallel_run_leaves_no_segments():
    original = voter(13)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(time_limit=120.0)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT


def test_parallel_repeated_runs_do_not_leak(tmp_path):
    aig = random_aig(num_pis=6, num_nodes=50, num_pos=3, seed=42)
    miter = build_miter(aig, aig)
    checker = ParallelPortfolioChecker(
        engines=[("sim", {})], time_limit=60.0, finisher=None
    )
    for _ in range(50):
        result = checker.check_miter(miter)
        assert result.status is CecStatus.EQUIVALENT
        assert _run_segments() == []


def test_sigkilled_leaker_is_reaped():
    """A worker that ignores SIGTERM and hoards segments gets SIGKILLed;
    the parent's prefix sweep recovers its blocks."""
    original = voter(13)
    optimized = compress2(original)
    tracer = Tracer("test")
    with use_tracer(tracer):
        checker = ParallelPortfolioChecker(
            engines=[
                ("leak", {"seconds": 60.0, "segments": 2,
                          "ignore_sigterm": True}),
                ("combined", {}),
            ],
            time_limit=120.0,
            terminate_grace=0.2,
        )
        result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert tracer.metrics.counters.get("shm.segments_leaked", 0) >= 1


def test_finisher_adopts_carried_state():
    """The SAT finisher must adopt the residue's SweepState by mapping —
    sat.state_adopted counts, zero re-simulation."""
    original = multiplier(5)
    optimized = compress2(original)
    tracer = Tracer("test")
    with use_tracer(tracer):
        checker = ParallelPortfolioChecker(
            engines=[("sim", {
                "k_P": 6, "k_p": 4, "k_g": 4, "k_l": 4, "C": 4,
                "num_random_words": 4, "max_local_phases": 1,
                "max_global_iterations": 1,
            }), ("sleep", {})],
            time_limit=2.0,
            finisher=("sat", {}),
        )
        result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    counters = tracer.metrics.counters
    assert counters.get("sat.state_adopted", 0) >= 1
    assert counters.get("sat.adopted_carried_words", 0) > 0
    assert counters.get("shm.segments_leaked", 0) == 0
    # The whole point: bulk data crossed as segments, not pickles.
    assert counters["shm.bytes_shared"] > counters["ipc.bytes_pickled"]


def test_shm_env_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_SHM", "0")
    assert resolve_use_shm(None) is False
    checker = ParallelPortfolioChecker(engines=[("sim", {})])
    assert checker.use_shm is False
    monkeypatch.setenv("REPRO_SHM", "1")
    assert resolve_use_shm(None) is True
    assert resolve_use_shm(False) is False


def test_parallel_runs_without_shm():
    original = voter(13)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(time_limit=120.0, use_shm=False)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT


# ---------------------------------------------------------------------------
# IPC spill path
# ---------------------------------------------------------------------------


class _TornDownQueue:
    def put(self, message):
        raise ValueError("queue is closed")


def test_post_message_spills_when_queue_is_gone(tmp_path):
    spill = str(tmp_path / "worker0.msg")
    message = {"index": 0, "status": "undecided", "seconds": 1.0}
    _post_message(_TornDownQueue(), message, spill)
    with open(spill, "rb") as handle:
        assert pickle.load(handle) == message
    assert not os.path.exists(spill + ".tmp")


def test_post_message_without_spill_path_drops_quietly():
    _post_message(_TornDownQueue(), {"index": 0}, None)


def test_collect_spilled_messages(tmp_path):
    from repro.portfolio.parallel import _WorkerState
    from repro.sweep.report import EngineRunRecord

    checker = ParallelPortfolioChecker(engines=[("sim", {})])
    record = EngineRunRecord(name="sim", status="running")
    worker = _WorkerState(
        index=0, name="sim", process=None, record=record, budget=None
    )
    message = {"index": 0, "status": "undecided", "seconds": 0.5}
    with open(tmp_path / "worker0.msg", "wb") as handle:
        pickle.dump(message, handle)
    (tmp_path / "junk.txt").write_text("not a message")
    checker._collect_spilled_messages(str(tmp_path), [worker])
    assert record.status == "undecided"
    assert record.seconds == 0.5


# ---------------------------------------------------------------------------
# Cache file-lock fixes
# ---------------------------------------------------------------------------


def test_filelock_closes_fd_when_flock_raises(tmp_path, monkeypatch):
    from repro.cache import store as store_module

    class _RaisingFcntl:
        LOCK_EX = 2
        LOCK_UN = 8

        @staticmethod
        def flock(fd, op):
            raise OSError("contrived flock failure")

    monkeypatch.setattr(store_module, "fcntl", _RaisingFcntl)
    open_fds = len(os.listdir("/proc/self/fd"))
    for _ in range(5):
        with pytest.raises(OSError):
            store_module._FileLock(str(tmp_path)).__enter__()
    assert len(os.listdir("/proc/self/fd")) == open_fds


def test_filelock_fallback_without_fcntl(tmp_path, monkeypatch):
    from repro.cache import store as store_module

    monkeypatch.setattr(store_module, "fcntl", None)
    monkeypatch.setattr(store_module._FileLock, "_warned_no_fcntl", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with store_module._FileLock(str(tmp_path)):
            excl = os.path.join(str(tmp_path), ".lock.excl")
            assert os.path.exists(excl)
        assert not os.path.exists(excl)
        # Reacquirable after release, and the warning fires exactly once.
        with store_module._FileLock(str(tmp_path)):
            pass
    assert (
        sum(issubclass(w.category, RuntimeWarning) for w in caught) == 1
    )


def test_filelock_fallback_breaks_stale_claims(tmp_path, monkeypatch):
    from repro.cache import store as store_module

    monkeypatch.setattr(store_module, "fcntl", None)
    monkeypatch.setattr(store_module._FileLock, "_warned_no_fcntl", True)
    excl = os.path.join(str(tmp_path), ".lock.excl")
    with open(excl, "w") as handle:
        handle.write("99999")
    stale = os.stat(excl).st_mtime - 120.0
    os.utime(excl, (stale, stale))
    with store_module._FileLock(str(tmp_path)):
        pass  # the dead holder's claim was broken, not spun on forever
    assert not os.path.exists(excl)


# ---------------------------------------------------------------------------
# Pid-safe orphan reaping (two daemons sharing a machine)
# ---------------------------------------------------------------------------


def test_reap_orphans_spares_segments_of_live_owners():
    """A second daemon's sweep must not collect a live run's segments."""
    from repro.shm import peek_header, reap_orphans

    registry = SegmentRegistry()  # owner_pid defaults to this process
    descriptor = registry.publish(
        arrays={"x": np.arange(16, dtype=np.uint64)}
    )
    path = os.path.join(SHM_DIR, descriptor.segment)
    header = peek_header(path)
    assert header is not None and header.valid
    assert header.owner_pid == os.getpid()
    # Another daemon's startup sweep: we are alive, so nothing to reap.
    assert reap_orphans(max_age=0.0) == 0
    assert os.path.exists(path)
    registry.reap()


def test_reap_orphans_collects_segments_of_dead_owners(tmp_path):
    """A crashed daemon's segments are collected by the next sweep."""
    import multiprocessing as mp

    from repro.shm import reap_orphans

    context = mp.get_context("fork")
    name_file = str(tmp_path / "segment-name")

    def _leak(path):
        leaker = SegmentRegistry(owner_pid=os.getpid())
        descriptor = leaker.publish(
            arrays={"x": np.arange(8, dtype=np.uint64)}
        )
        with open(path, "w", encoding="ascii") as handle:
            handle.write(descriptor.segment)
            handle.flush()
            os.fsync(handle.fileno())
        os._exit(0)  # die without cleanup, like a SIGKILLed daemon

    process = context.Process(target=_leak, args=(name_file,))
    process.start()
    process.join(timeout=10)
    with open(name_file, encoding="ascii") as handle:
        name = handle.read().strip()
    path = os.path.join(SHM_DIR, name)
    assert os.path.exists(path)
    assert reap_orphans(max_age=0.0) >= 1
    assert not os.path.exists(path)


def test_reap_orphans_uses_age_for_headerless_files():
    """Files without a valid header fall back to the mtime age bound."""
    from repro.shm import reap_orphans
    from repro.shm.registry import NAME_PREFIX

    path = os.path.join(SHM_DIR, NAME_PREFIX + "headerless-test")
    with open(path, "wb") as handle:
        handle.write(b"\x00" * 32)
    try:
        # Young and headerless: left alone.
        reap_orphans(max_age=3600.0)
        assert os.path.exists(path)
        stale = os.stat(path).st_mtime - 7200.0
        os.utime(path, (stale, stale))
        reap_orphans(max_age=3600.0)
        assert not os.path.exists(path)
    finally:
        if os.path.exists(path):
            os.unlink(path)


def test_worker_segments_carry_the_run_owner_pid():
    """Worker-created segments are stamped with the *run's* pid, not the
    worker's — a worker death must not expose the run to foreign sweeps."""
    from repro.shm import peek_header

    run_pid = os.getpid()
    worker_view = SegmentRegistry(
        token="cafecafe", suffix="w0", owner_pid=run_pid
    )
    descriptor = worker_view.publish(
        arrays={"x": np.arange(4, dtype=np.uint64)}
    )
    header = peek_header(os.path.join(SHM_DIR, descriptor.segment))
    assert header is not None and header.owner_pid == run_pid
    worker_view.reap()


def test_registry_unpublish_releases_one_segment():
    """``unpublish`` drops a single owned segment without a full reap."""
    registry = SegmentRegistry()
    keep = registry.publish(arrays={"x": np.arange(4, dtype=np.uint64)})
    drop = registry.publish(arrays={"y": np.arange(4, dtype=np.uint64)})
    registry.unpublish(drop)
    assert not os.path.exists(os.path.join(SHM_DIR, drop.segment))
    assert os.path.exists(os.path.join(SHM_DIR, keep.segment))
    registry.reap()
