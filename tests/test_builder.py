"""Tests for the structurally hashed AIG builder."""

import itertools

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, CONST1


def test_pi_literals_are_sequential():
    b = AigBuilder()
    assert b.add_pi() == 2
    assert b.add_pi() == 4
    assert b.num_pis == 2


def test_pis_must_precede_ands():
    b = AigBuilder(2)
    b.add_and(2, 4)
    with pytest.raises(RuntimeError):
        b.add_pi()


def test_and_simplifications():
    b = AigBuilder(2)
    x, y = 2, 4
    assert b.add_and(x, CONST0) == CONST0
    assert b.add_and(x, CONST1) == x
    assert b.add_and(x, x) == x
    assert b.add_and(x, x ^ 1) == CONST0
    assert b.num_ands == 0


def test_structural_hashing_dedupes():
    b = AigBuilder(2)
    f1 = b.add_and(2, 4)
    f2 = b.add_and(4, 2)  # commuted
    assert f1 == f2
    assert b.num_ands == 1


def test_find_and_matches_add_and():
    b = AigBuilder(2)
    assert b.find_and(2, 4) is None
    f = b.add_and(2, 4)
    assert b.find_and(2, 4) == f
    assert b.find_and(4, 2) == f
    assert b.find_and(2, CONST1) == 2
    assert b.find_and(2, 3) == CONST0


@pytest.mark.parametrize(
    "gate,table",
    [
        ("add_and", [0, 0, 0, 1]),
        ("add_or", [0, 1, 1, 1]),
        ("add_xor", [0, 1, 1, 0]),
        ("add_xnor", [1, 0, 0, 1]),
    ],
)
def test_two_input_gates_truth_tables(gate, table):
    b = AigBuilder(2)
    literal = getattr(b, gate)(2, 4)
    b.add_po(literal)
    aig = b.build()
    for i, (x, y) in enumerate(itertools.product([0, 1], repeat=2)):
        # x is PI 1 (low bit of the enumeration is the second product term)
        assert aig.evaluate([x, y]) == [table[(x << 1) | y]]


def test_mux_semantics():
    b = AigBuilder(3)
    sel, t, e = 2, 4, 6
    b.add_po(b.add_mux(sel, t, e))
    aig = b.build()
    for s, tv, ev in itertools.product([0, 1], repeat=3):
        assert aig.evaluate([s, tv, ev]) == [tv if s else ev]


def test_maj3_semantics():
    b = AigBuilder(3)
    b.add_po(b.add_maj3(2, 4, 6))
    aig = b.build()
    for bits in itertools.product([0, 1], repeat=3):
        assert aig.evaluate(list(bits)) == [1 if sum(bits) >= 2 else 0]


def test_full_adder_semantics():
    b = AigBuilder(3)
    s, c = b.add_full_adder(2, 4, 6)
    b.add_po(s)
    b.add_po(c)
    aig = b.build()
    for bits in itertools.product([0, 1], repeat=3):
        total = sum(bits)
        assert aig.evaluate(list(bits)) == [total & 1, total >> 1]


@pytest.mark.parametrize("n", [0, 1, 2, 5, 8])
def test_multi_input_gates(n):
    b = AigBuilder(max(n, 1))
    literals = [2 * (i + 1) for i in range(n)]
    b.add_po(b.add_and_multi(literals))
    b.add_po(b.add_or_multi(literals))
    b.add_po(b.add_xor_multi(literals))
    aig = b.build()
    for bits in itertools.product([0, 1], repeat=max(n, 1)):
        used = bits[:n]
        want_and = 1 if all(used) or n == 0 else 0
        want_or = 1 if any(used) else 0
        want_xor = sum(used) & 1
        assert aig.evaluate(list(bits)) == [want_and, want_or, want_xor]


def test_add_po_validates_range():
    b = AigBuilder(1)
    with pytest.raises(ValueError):
        b.add_po(100)


def test_import_cone_copies_logic():
    b1 = AigBuilder(2)
    f = b1.add_xor(2, 4)
    b1.add_po(f)
    src = b1.build()

    b2 = AigBuilder(3)
    mapping = b2.import_cone(src, {1: 4, 2: 6})  # src PIs -> PIs 2, 3
    b2.add_po(mapping[f >> 1] ^ (f & 1))
    dst = b2.build()
    for bits in itertools.product([0, 1], repeat=3):
        assert dst.evaluate(list(bits)) == [bits[1] ^ bits[2]]
