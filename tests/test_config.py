"""Tests for the engine configuration."""

import pytest

from repro.sweep.config import EngineConfig


def test_defaults_validate():
    EngineConfig().validate()
    EngineConfig.fast().validate()
    EngineConfig.paper().validate()


def test_k_s_follows_phase_threshold():
    config = EngineConfig(k_P=20, k_p=14, k_g=12)
    assert config.k_s_for(config.k_P) == 20
    assert config.k_s_for(config.k_p) == 14
    assert config.k_s_for(config.k_g) == 12


@pytest.mark.parametrize(
    "kwargs",
    [
        {"k_P": 4, "k_p": 8},
        {"k_l": 1},
        {"C": 0},
        {"passes": ()},
        {"passes": (1, 9)},
        {"num_random_words": 0},
        {"memory_budget_words": 0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        EngineConfig(**kwargs).validate()


def test_paper_values_match_section_iv():
    config = EngineConfig.paper()
    assert config.k_P == 32
    assert config.k_p == 16
    assert config.k_g == 16
    assert config.k_l == 8
    assert config.C == 8
    assert config.passes == (1, 2, 3)
