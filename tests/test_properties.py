"""Cross-cutting property tests (hypothesis).

These target the invariants DESIGN.md §5 calls load-bearing: cut
validity, window/merging verdict stability, class soundness, and the
exhaustive simulator's agreement with reference evaluation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.traversal import support
from repro.cuts.common import common_cuts
from repro.cuts.enumeration import CutEnumerator
from repro.cuts.selection import CutSelector
from repro.simulation.exhaustive import ExhaustiveSimulator, PairStatus
from repro.simulation.merging import merge_windows
from repro.simulation.window import Pair, build_window
from repro.sweep.classes import SimulationState

from conftest import random_aig


def _is_cut(aig, node, cut):
    cut_set = set(cut)
    if node in cut_set:
        return True
    stack, seen = [node], set()
    while stack:
        current = stack.pop()
        if current in seen or current in cut_set:
            continue
        seen.add(current)
        if aig.is_pi(current):
            return False
        if aig.is_and(current):
            f0, f1 = aig.fanins(current)
            stack.extend((f0 >> 1, f1 >> 1))
    return True


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6), st.sampled_from([1, 2, 3]))
def test_common_cuts_are_valid_cuts_of_both(seed, pass_id):
    """Eq. 1 property: every generated common cut cuts both pair nodes."""
    rnd = random.Random(seed)
    aig = random_aig(
        num_pis=rnd.randint(3, 7),
        num_nodes=rnd.randint(10, 60),
        num_pos=2,
        seed=seed,
    )
    selector = CutSelector(pass_id, aig.fanout_counts(), aig.levels())
    enum = CutEnumerator(aig, k_l=4, num_priority=4, selector=selector)
    for _level, _nodes in enum.run({}):
        pass
    and_nodes = list(aig.ands())
    if len(and_nodes) < 2:
        return
    a, b = rnd.sample(and_nodes, 2)
    cuts = common_cuts(enum.priority_cuts(a), enum.priority_cuts(b), k_l=6)
    for cut in cuts:
        assert _is_cut(aig, a, cut)
        assert _is_cut(aig, b, cut)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6), st.integers(2, 12))
def test_merging_never_changes_verdicts(seed, k_s):
    """Window merging is an optimisation, not a semantic change."""
    rnd = random.Random(seed)
    aig = random_aig(
        num_pis=rnd.randint(3, 8),
        num_nodes=rnd.randint(10, 70),
        num_pos=rnd.randint(2, 6),
        seed=seed,
    )
    windows = []
    for i, po in enumerate(aig.pos):
        supp = support(aig, po >> 1)
        if not supp:
            continue
        roots = [po >> 1] if (po >> 1) not in supp else []
        windows.append(build_window(aig, supp, roots, [Pair(po, 0, tag=i)]))
    if not windows:
        return
    sim = ExhaustiveSimulator()
    plain = {o.pair.tag: o.status for o in sim.run(aig, windows)}
    merged = merge_windows(aig, windows, k_s=k_s)
    again = {o.pair.tag: o.status for o in sim.run(aig, merged)}
    assert plain == again


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_classes_never_separate_equal_nodes(seed):
    """Simulation classes over-approximate: equal nodes share a class."""
    import itertools

    rnd = random.Random(seed)
    num_pis = rnd.randint(2, 5)
    aig = random_aig(
        num_pis=num_pis, num_nodes=rnd.randint(5, 40), num_pos=2, seed=seed
    )
    state = SimulationState(num_pis, num_random_words=2, seed=seed)
    tables = state.tables(aig)
    classes = state.classes(aig, tables)
    # Compute exact global functions of all nodes.
    signatures = {}
    for node in range(aig.num_nodes):
        signatures[node] = 0
    for index, bits in enumerate(itertools.product([0, 1], repeat=num_pis)):
        values = aig.evaluate_all(list(bits))
        for node in range(aig.num_nodes):
            signatures[node] |= int(values[node]) << index
    mask = (1 << (1 << num_pis)) - 1
    nodes = list(range(aig.num_nodes))
    for i in nodes:
        for j in nodes[i + 1 :]:
            equal = signatures[i] == signatures[j]
            equal_inv = signatures[i] == (signatures[j] ^ mask)
            if equal or equal_inv:
                ri = classes.representative_of(i)
                rj = classes.representative_of(j)
                assert ri is not None and ri == rj, (i, j, seed)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=2, max_value=6),
)
def test_lut_mapping_round_trip_property(seed, k):
    """Property: map → LUT-evaluate and map → re-synthesise both agree
    with the original network on random patterns."""
    from repro.map import lut_network_to_aig, map_luts

    rnd = random.Random(seed)
    aig = random_aig(
        num_pis=rnd.randint(2, 7),
        num_nodes=rnd.randint(5, 60),
        num_pos=rnd.randint(1, 4),
        seed=seed,
    )
    network = map_luts(aig, k=k)
    remade = lut_network_to_aig(network)
    for _ in range(20):
        pattern = [rnd.randint(0, 1) for _ in range(aig.num_pis)]
        want = aig.evaluate(pattern)
        assert network.evaluate(pattern) == want
        assert remade.evaluate(pattern) == want


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_exhaustive_equal_iff_functions_equal(seed):
    """EQUAL outcomes are sound AND complete for global windows."""
    import itertools

    rnd = random.Random(seed)
    num_pis = rnd.randint(2, 6)
    aig = random_aig(
        num_pis=num_pis, num_nodes=rnd.randint(5, 40), num_pos=2, seed=seed
    )
    lit_a, lit_b = aig.pos[0], aig.pos[1]
    supp = sorted(
        set(support(aig, lit_a >> 1)) | set(support(aig, lit_b >> 1))
    )
    if not supp:
        return
    roots = [v for v in (lit_a >> 1, lit_b >> 1) if v not in supp and v != 0]
    window = build_window(aig, supp, roots, [Pair(lit_a, lit_b)])
    out = ExhaustiveSimulator(memory_budget_words=64).run(aig, [window])
    truly_equal = True
    for bits in itertools.product([0, 1], repeat=num_pis):
        values = aig.evaluate_all(list(bits))
        va = int(values[lit_a >> 1]) ^ (lit_a & 1)
        vb = int(values[lit_b >> 1]) ^ (lit_b & 1)
        if va != vb:
            truly_equal = False
            break
    assert (out[0].status is PairStatus.EQUAL) == truly_equal
