"""Packaging-level checks: public API surface, examples, docs presence."""

import ast
import pathlib

import pytest

import repro

REPO = pathlib.Path(__file__).resolve().parent.parent


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ names missing attribute {name}"


def test_version():
    assert repro.__version__


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in (REPO / "examples").glob("*.py")),
)
def test_examples_compile_and_have_docstrings(script):
    path = REPO / "examples" / script
    source = path.read_text()
    tree = ast.parse(source)  # syntax check
    assert ast.get_docstring(tree), f"{script} lacks a module docstring"
    names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in names, f"{script} lacks a main() entry point"


def test_documentation_files_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        assert (REPO / name).is_file(), name
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "algorithms.md").is_file()
    assert (REPO / "docs" / "usage.md").is_file()


def test_every_module_has_docstring():
    missing = []
    for path in (REPO / "src" / "repro").rglob("*.py"):
        tree = ast.parse(path.read_text())
        if not ast.get_docstring(tree):
            missing.append(str(path.relative_to(REPO)))
    assert not missing, f"modules without docstrings: {missing}"


def test_public_functions_documented():
    """Every public callable exported at top level has a docstring."""
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not getattr(obj, "__doc__", None):
            undocumented.append(name)
    assert not undocumented, undocumented
