"""Edge cases: degenerate networks, constants, tiny budgets."""

import numpy as np
import pytest

from repro.aig.builder import AigBuilder
from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.aig.transform import cleanup, double
from repro.sat.sweeping import SatSweepChecker
from repro.simulation.partial import simulate_words
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine


def test_constant_only_circuits():
    b1 = AigBuilder(0)
    b1.add_po(0)
    b1.add_po(1)
    a1 = b1.build()
    b2 = AigBuilder(0)
    b2.add_po(0)
    b2.add_po(1)
    a2 = b2.build()
    result = SimSweepEngine(EngineConfig.fast()).check(a1, a2)
    assert result.status is CecStatus.EQUIVALENT


def test_constant_mismatch():
    b1 = AigBuilder(0)
    b1.add_po(0)
    a1 = b1.build()
    b2 = AigBuilder(0)
    b2.add_po(1)
    a2 = b2.build()
    result = SimSweepEngine(EngineConfig.fast()).check(a1, a2)
    assert result.status is CecStatus.NONEQUIVALENT


def test_single_pi_identity_vs_inverter():
    b1 = AigBuilder(1)
    b1.add_po(2)
    ident = b1.build()
    b2 = AigBuilder(1)
    b2.add_po(3)
    inverter = b2.build()
    result = SimSweepEngine(EngineConfig.fast()).check(ident, inverter)
    assert result.status is CecStatus.NONEQUIVALENT
    assert result.cex in ([0], [1])


def test_pi_passthrough_equivalence():
    b1 = AigBuilder(2)
    b1.add_po(2)
    b1.add_po(4)
    a1 = b1.build()
    b2 = AigBuilder(2)
    # x through double inversion (free in an AIG, same literal).
    b2.add_po(b2.lit_not(b2.lit_not(2)))
    b2.add_po(4)
    a2 = b2.build()
    result = SimSweepEngine(EngineConfig.fast()).check(a1, a2)
    assert result.status is CecStatus.EQUIVALENT


def test_empty_interface_network():
    aig = Aig(0, [], [], [])
    assert aig.num_nodes == 1
    assert aig.depth() == 0
    assert cleanup(aig).num_nodes == 1
    doubled = double(aig)
    assert doubled.num_pis == 0


def test_simulate_words_no_pis():
    b = AigBuilder(0)
    b.add_po(1)
    aig = b.build()
    tables = simulate_words(aig, np.zeros((0, 2), dtype=np.uint64))
    assert tables.shape == (1, 2)
    assert np.all(tables[0] == 0)


def test_engine_tiny_memory_budget():
    from repro.bench.generators import multiplier
    from repro.synth.resyn import compress2

    original = multiplier(4)
    optimized = compress2(original)
    config = EngineConfig.fast()
    config.memory_budget_words = 4  # pathological; must still be sound
    result = SimSweepEngine(config).check(original, optimized)
    assert result.status is not CecStatus.NONEQUIVALENT


def test_sat_checker_on_empty_miter():
    b = AigBuilder(3)
    aig = b.build()  # no POs at all
    miter = build_miter(aig, aig.copy())
    assert SatSweepChecker().check_miter(miter).status is CecStatus.EQUIVALENT


def test_wide_pi_count_small_logic():
    """Many PIs, little logic: class machinery must not choke."""
    b = AigBuilder(200)
    b.add_po(b.add_and(2, 400))
    a1 = b.build()
    b2 = AigBuilder(200)
    b2.add_po(b2.lit_not(b2.add_or(3, 401)))
    a2 = b2.build()
    result = SimSweepEngine(EngineConfig.fast()).check(a1, a2)
    assert result.status is CecStatus.EQUIVALENT


def test_duplicate_po_literals():
    b1 = AigBuilder(2)
    f = b1.add_and(2, 4)
    b1.add_po(f)
    b1.add_po(f)  # same literal twice
    a1 = b1.build()
    b2 = AigBuilder(2)
    g = b2.lit_not(b2.add_or(3, 5))
    b2.add_po(g)
    b2.add_po(g)
    a2 = b2.build()
    result = SimSweepEngine(EngineConfig.fast()).check(a1, a2)
    assert result.status is CecStatus.EQUIVALENT
