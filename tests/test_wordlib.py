"""Tests for the word-level construction helpers."""

import random

import pytest

from repro.aig.builder import AigBuilder
from repro.bench.wordlib import (
    arith_shift_right_const,
    barrel_shift_left,
    constant_word,
    equals_const,
    greater_than_const,
    multiply,
    mux_word,
    popcount,
    ripple_add,
    ripple_sub,
    shift_left_const,
    shift_right_const,
    zero_extend,
)

from conftest import to_word, word_val


def _finish(builder, word):
    builder.add_pos(word)
    return builder.build()


def test_constant_word():
    assert constant_word(5, 4) == [1, 0, 1, 0]
    assert constant_word(0, 3) == [0, 0, 0]


def test_zero_extend():
    assert zero_extend([1, 1], 4) == [1, 1, 0, 0]
    with pytest.raises(ValueError):
        zero_extend([1, 1, 1], 2)


def test_ripple_add_sub():
    rnd = random.Random(3)
    b = AigBuilder(8)
    xs = [2 * (i + 1) for i in range(4)]
    ys = [2 * (i + 5) for i in range(4)]
    total, carry = ripple_add(b, xs, ys)
    diff, borrow = ripple_sub(b, xs, ys)
    b.add_pos(total + [carry] + diff + [borrow])
    aig = b.build()
    for _ in range(40):
        x, y = rnd.randrange(16), rnd.randrange(16)
        out = aig.evaluate(to_word(x, 4) + to_word(y, 4))
        assert word_val(out[:5]) == x + y
        assert word_val(out[5:9]) == (x - y) % 16
        assert out[9] == (1 if x < y else 0)


def test_ripple_add_width_mismatch():
    b = AigBuilder(3)
    with pytest.raises(ValueError):
        ripple_add(b, [2], [4, 6])


def test_mux_word():
    b = AigBuilder(5)
    sel = 2
    t = [4, 6]
    e = [8, 10]
    aig = _finish(b, mux_word(b, sel, t, e))
    for s in (0, 1):
        for tv in range(4):
            for ev in range(4):
                pattern = [s] + to_word(tv, 2) + to_word(ev, 2)
                assert word_val(aig.evaluate(pattern)) == (tv if s else ev)


def test_shifts_const():
    word = [2, 4, 6]  # placeholder literals; shifting is pure reindexing
    assert shift_left_const(word, 1, 4) == [0, 2, 4, 6]
    assert shift_left_const(word, 2, 3) == [0, 0, 2]
    assert shift_right_const(word, 1, 3) == [4, 6, 0]
    assert arith_shift_right_const([2, 4, 6], 1) == [4, 6, 6]
    assert arith_shift_right_const([2, 4, 6], 0) == [2, 4, 6]
    assert arith_shift_right_const([2, 4, 6], 5) == [6, 6, 6]


def test_barrel_shift_left():
    b = AigBuilder(6)
    word = [2 * (i + 1) for i in range(4)]
    amount = [10, 12]
    aig = _finish(b, barrel_shift_left(b, word, amount))
    for value in range(16):
        for shift in range(4):
            pattern = to_word(value, 4) + to_word(shift, 2)
            got = word_val(aig.evaluate(pattern))
            assert got == (value << shift) & 0xF


def test_multiply_widths():
    b = AigBuilder(5)
    xs = [2, 4, 6]
    ys = [8, 10]
    aig = _finish(b, multiply(b, xs, ys))
    assert aig.num_pos == 5
    for x in range(8):
        for y in range(4):
            assert word_val(aig.evaluate(to_word(x, 3) + to_word(y, 2))) == x * y


def test_popcount():
    b = AigBuilder(7)
    bits = [2 * (i + 1) for i in range(7)]
    aig = _finish(b, popcount(b, bits))
    rnd = random.Random(4)
    for _ in range(50):
        pattern = [rnd.randint(0, 1) for _ in range(7)]
        assert word_val(aig.evaluate(pattern)) == sum(pattern)


def test_comparators():
    b = AigBuilder(4)
    word = [2, 4, 6, 8]
    b.add_po(greater_than_const(b, word, 9))
    b.add_po(equals_const(b, word, 9))
    aig = b.build()
    for value in range(16):
        gt, eq = aig.evaluate(to_word(value, 4))
        assert gt == (1 if value > 9 else 0)
        assert eq == (1 if value == 9 else 0)
