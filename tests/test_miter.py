"""Tests for miter construction."""

import itertools

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.miter import (
    build_miter,
    miter_is_trivially_unsat,
    nontrivial_po_indices,
    split_miter_po_cones,
)
from repro.aig.network import negate_outputs

from conftest import random_aig


def test_miter_semantics():
    a = random_aig(num_pis=4, num_nodes=20, num_pos=2, seed=31)
    b = negate_outputs(a, [1])
    miter = build_miter(a, b)
    assert miter.num_pis == 4
    assert miter.num_pos == 2
    for bits in itertools.product([0, 1], repeat=4):
        pattern = list(bits)
        oa, ob = a.evaluate(pattern), b.evaluate(pattern)
        mo = miter.evaluate(pattern)
        assert mo == [x ^ y for x, y in zip(oa, ob)]


def test_identical_circuits_strash_to_zero():
    a = random_aig(num_pis=5, num_nodes=30, seed=32)
    miter = build_miter(a, a.copy())
    assert miter_is_trivially_unsat(miter)
    assert nontrivial_po_indices(miter) == []


def test_interface_mismatch_rejected():
    a = random_aig(num_pis=4, seed=33)
    b = random_aig(num_pis=5, seed=33)
    with pytest.raises(ValueError, match="PI count"):
        build_miter(a, b)
    c = random_aig(num_pis=4, num_pos=2, seed=34)
    d = random_aig(num_pis=4, num_pos=3, seed=34)
    with pytest.raises(ValueError, match="PO count"):
        build_miter(c, d)


def test_split_miter_po_cones():
    a = random_aig(num_pis=4, num_nodes=30, num_pos=4, seed=35)
    b = negate_outputs(a, [2])
    miter = build_miter(a, b)
    cones = split_miter_po_cones(miter, group_size=2)
    assert len(cones) == 2
    assert all(c.num_pis == miter.num_pis for c in cones)
    for bits in itertools.product([0, 1], repeat=4):
        pattern = list(bits)
        combined = [v for cone in cones for v in cone.evaluate(pattern)]
        assert combined == miter.evaluate(pattern)


def test_split_rejects_bad_group_size():
    a = random_aig(seed=36)
    miter = build_miter(a, a.copy())
    with pytest.raises(ValueError):
        split_miter_po_cones(miter, 0)
