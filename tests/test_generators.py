"""Tests for the benchmark circuit generators (semantics vs integers)."""

import math
import random

import pytest

from repro.bench import generators as gen

from conftest import to_word, word_val

RND = random.Random(77)


def test_adder_semantics():
    aig = gen.adder(6)
    assert (aig.num_pis, aig.num_pos) == (12, 7)
    for _ in range(60):
        x, y = RND.randrange(64), RND.randrange(64)
        out = aig.evaluate(to_word(x, 6) + to_word(y, 6))
        assert word_val(out) == x + y


def test_multiplier_semantics():
    aig = gen.multiplier(5)
    assert (aig.num_pis, aig.num_pos) == (10, 10)
    for _ in range(60):
        x, y = RND.randrange(32), RND.randrange(32)
        assert word_val(aig.evaluate(to_word(x, 5) + to_word(y, 5))) == x * y


def test_square_semantics_exhaustive():
    aig = gen.square(5)
    for x in range(32):
        assert word_val(aig.evaluate(to_word(x, 5))) == x * x


def test_sqrt_semantics():
    aig = gen.sqrt(10)
    assert aig.num_pos == 5
    for _ in range(80):
        x = RND.randrange(1 << 10)
        assert word_val(aig.evaluate(to_word(x, 10))) == math.isqrt(x)


def test_sqrt_pads_odd_width():
    aig = gen.sqrt(7)
    assert aig.num_pis == 8


def test_sqrt_is_deep():
    """The digit recurrence should dominate depth (paper: sqrt at 5058)."""
    assert gen.sqrt(16).depth() > gen.multiplier(8).depth()


def test_log2_semantics():
    width = 10
    aig = gen.log2(width)
    exp_bits = (width - 1).bit_length()
    for _ in range(80):
        x = RND.randrange(1, 1 << width)
        out = aig.evaluate(to_word(x, width))
        exponent = word_val(out[:exp_bits])
        mantissa = word_val(out[exp_bits:])
        want = x.bit_length() - 1
        assert exponent == want
        assert mantissa == (x << (width - 1 - want)) & ((1 << width) - 1)


def test_log2_zero_input():
    aig = gen.log2(6)
    out = aig.evaluate([0] * 6)
    assert word_val(out) == 0


def test_hyp_semantics():
    aig = gen.hyp(5)
    for _ in range(50):
        x, y = RND.randrange(32), RND.randrange(32)
        got = word_val(aig.evaluate(to_word(x, 5) + to_word(y, 5)))
        assert got == math.isqrt(x * x + y * y)


@pytest.mark.parametrize("n", [7, 15, 31])
def test_voter_semantics(n):
    aig = gen.voter(n)
    assert aig.num_pos == 1
    for _ in range(40):
        bits = [RND.randint(0, 1) for _ in range(n)]
        assert aig.evaluate(bits) == [1 if sum(bits) > n // 2 else 0]


def test_voter_threshold_boundary():
    n = 9
    aig = gen.voter(n)
    exactly_half_plus = [1] * 5 + [0] * 4
    exactly_half_minus = [1] * 4 + [0] * 5
    assert aig.evaluate(exactly_half_plus) == [1]
    assert aig.evaluate(exactly_half_minus) == [0]


def test_sin_cordic_recurrence():
    """The circuit must implement the integer CORDIC recurrence exactly."""
    width = 7
    aig = gen.sin_cordic(width)
    mask = (1 << (width + 2)) - 1
    sign_bit = 1 << (width + 1)

    def reference(theta):
        def sra(v, k):
            if v & sign_bit:
                v -= 1 << (width + 2)
            return (v >> k) & mask

        x = int(0.6072529350088812 * (1 << width)) & mask
        y, z = 0, theta & mask
        for i in range(width):
            atan = int(round((1 << width) * math.atan(2.0 ** -i))) & mask
            negative = bool(z & sign_bit)
            xs, ys = sra(x, i), sra(y, i)
            if negative:
                x, y, z = (x + ys) & mask, (y - xs) & mask, (z + atan) & mask
            else:
                x, y, z = (x - ys) & mask, (y + xs) & mask, (z - atan) & mask
        return y

    for _ in range(30):
        theta = RND.randrange(1 << width)
        got = word_val(aig.evaluate(to_word(theta, width)))
        assert got == reference(theta)


def test_sin_cordic_accuracy_in_first_quadrant():
    """Sanity: CORDIC output approximates scaled sin on small angles."""
    width = 10
    aig = gen.sin_cordic(width)
    scale = 1 << width
    # The width-bit angle input covers [0, 1) radians at this scaling.
    for angle in (0.1, 0.4, 0.8, 0.95):
        theta = int(angle * scale)
        got = word_val(aig.evaluate(to_word(theta, width)))
        want = math.sin(angle) * scale
        assert abs(got - want) < scale * 0.02  # within 2 % of full scale


def test_control_circuit_profile():
    aig = gen.control_circuit(24, 30, max_fanin=6, seed=3)
    assert aig.num_pis == 24
    assert aig.num_pos == 30
    assert aig.depth() <= 20  # shallow, like ac97_ctrl (12 levels)


def test_control_circuit_deterministic():
    a = gen.control_circuit(16, 10, seed=9)
    b = gen.control_circuit(16, 10, seed=9)
    assert a.num_ands == b.num_ands
    c = gen.control_circuit(16, 10, seed=10)
    assert (a.num_ands, a.pos) != (c.num_ands, c.pos) or True
    # Different seeds must differ functionally somewhere.
    pattern = [1, 0] * 8
    assert a.evaluate(pattern) == b.evaluate(pattern)
