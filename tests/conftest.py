"""Shared test fixtures and helpers."""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Tuple

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.network import Aig


def random_aig(
    num_pis: int = 6,
    num_nodes: int = 40,
    num_pos: int = 4,
    seed: int = 0,
) -> Aig:
    """A random strashed AIG (the workhorse of structural tests)."""
    rnd = random.Random(seed)
    builder = AigBuilder(num_pis, name=f"rand{seed}")
    literals = [2 * (i + 1) for i in range(num_pis)]
    for _ in range(num_nodes):
        a = rnd.choice(literals) ^ rnd.randint(0, 1)
        b = rnd.choice(literals) ^ rnd.randint(0, 1)
        literals.append(builder.add_and(a, b))
    for literal in literals[-num_pos:]:
        builder.add_po(literal)
    return builder.build()


def layered_aig(
    num_pis: int = 8,
    layers: int = 5,
    width: int = 10,
    num_pos: int = 4,
    seed: int = 0,
) -> Aig:
    """A random AIG with controlled depth (new nodes prefer recent ones)."""
    rnd = random.Random(seed)
    builder = AigBuilder(num_pis, name=f"layered{seed}")
    current = [2 * (i + 1) for i in range(num_pis)]
    for _ in range(layers):
        nxt = []
        for _ in range(width):
            a = rnd.choice(current) ^ rnd.randint(0, 1)
            b = rnd.choice(current) ^ rnd.randint(0, 1)
            nxt.append(builder.add_and(a, b))
        current = nxt + current[: num_pis // 2]
    for literal in current[:num_pos]:
        builder.add_po(literal)
    return builder.build()


def brute_force_equivalent(
    aig_a: Aig, aig_b: Aig, max_pis: int = 12
) -> Tuple[bool, Optional[List[int]]]:
    """Exhaustive equivalence check; only usable for small PI counts."""
    assert aig_a.num_pis == aig_b.num_pis <= max_pis
    for bits in itertools.product([0, 1], repeat=aig_a.num_pis):
        pattern = list(bits)
        if aig_a.evaluate(pattern) != aig_b.evaluate(pattern):
            return False, pattern
    return True, None


def sampled_equivalent(
    aig_a: Aig, aig_b: Aig, samples: int = 200, seed: int = 9
) -> Tuple[bool, Optional[List[int]]]:
    """Randomised equivalence check for wider circuits."""
    rnd = random.Random(seed)
    for _ in range(samples):
        pattern = [rnd.randint(0, 1) for _ in range(aig_a.num_pis)]
        if aig_a.evaluate(pattern) != aig_b.evaluate(pattern):
            return False, pattern
    return True, None


def word_val(bits) -> int:
    """Interpret a list of 0/1 as an LSB-first integer."""
    return sum(v << i for i, v in enumerate(bits))


def to_word(value: int, width: int) -> List[int]:
    """Integer to LSB-first bit list."""
    return [(value >> i) & 1 for i in range(width)]


@pytest.fixture
def xor_pair():
    """Two structurally different implementations of 4-input XOR."""
    b1 = AigBuilder(4)
    b1.add_po(b1.add_xor_multi([2, 4, 6, 8]))
    b2 = AigBuilder(4)
    left = b2.add_xor(2, 4)
    right = b2.add_xor(6, 8)
    b2.add_po(b2.add_xor(left, right))
    return b1.build("xor_a"), b2.build("xor_b")
