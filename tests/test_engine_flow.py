"""Tests for the simulation-based sweeping engine (Fig. 5 flow)."""

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.miter import build_miter
from repro.aig.network import negate_outputs
from repro.bench import generators as gen
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.synth.resyn import compress2

from conftest import random_aig, sampled_equivalent


FAST = EngineConfig.fast()


def test_equivalent_restructured_pair(xor_pair):
    result = SimSweepEngine(FAST).check(*xor_pair)
    assert result.status is CecStatus.EQUIVALENT


def test_nonequivalent_with_valid_cex(xor_pair):
    a, b = xor_pair
    b_bad = negate_outputs(b, [0])
    result = SimSweepEngine(FAST).check(a, b_bad)
    assert result.status is CecStatus.NONEQUIVALENT
    assert a.evaluate(result.cex) != b_bad.evaluate(result.cex)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: gen.multiplier(4),
        lambda: gen.sqrt(8),
        lambda: gen.log2(6),
        lambda: gen.voter(15),
        lambda: gen.sin_cordic(6, 4),
        lambda: gen.control_circuit(12, 8, seed=5),
    ],
    ids=["multiplier", "sqrt", "log2", "voter", "sin", "control"],
)
def test_engine_proves_resynthesised_benchmarks(factory):
    original = factory()
    optimized = compress2(original)
    assert sampled_equivalent(original, optimized)[0]
    result = SimSweepEngine(FAST).check(original, optimized)
    assert result.status in (CecStatus.EQUIVALENT, CecStatus.UNDECIDED)
    if result.status is CecStatus.UNDECIDED:
        # The engine must at least have reduced the miter.
        assert result.report.reduction_percent > 0


def test_engine_detects_subtle_bug():
    """A single-minterm corruption must be caught, not merged away."""
    original = gen.multiplier(4)
    b = AigBuilder(8)
    mapping = b.import_cone(original, {pi: 2 * pi for pi in original.pis()})
    outs = [mapping[p >> 1] ^ (p & 1) for p in original.pos]
    # Corrupt output 3 on exactly the pattern x=13, y=11.
    from repro.bench.wordlib import equals_const

    trigger = b.add_and(
        equals_const(b, [2 * i for i in range(1, 5)], 13),
        equals_const(b, [2 * i for i in range(5, 9)], 11),
    )
    outs[3] = b.add_xor(outs[3], trigger)
    b.add_pos(outs)
    buggy = b.build()
    result = SimSweepEngine(FAST).check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    assert original.evaluate(result.cex) != buggy.evaluate(result.cex)


def test_po_phase_proves_small_supports():
    """With k_P large enough the P phase alone proves the miter."""
    original = gen.log2(6)
    optimized = compress2(original)
    config = EngineConfig.fast()
    result = SimSweepEngine(config).check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    kinds = [p.kind for p in result.report.phases]
    assert kinds[0] == "P"
    assert result.report.phases[0].proved > 0


def test_stop_after_p_and_pg():
    original = gen.voter(15)
    optimized = compress2(original)
    miter = build_miter(original, optimized)
    # voter PO support (15) exceeds the fast profile's k_P (12): P can't
    # prove it, so intermediate stops yield UNDECIDED residues.
    engine = SimSweepEngine(FAST)
    after_p = engine.check_miter(miter, stop_after="P")
    after_pg = engine.check_miter(miter, stop_after="PG")
    full = engine.check_miter(miter)
    assert after_p.status is CecStatus.UNDECIDED
    assert after_pg.status is CecStatus.UNDECIDED
    assert after_p.reduced_miter.num_ands >= after_pg.reduced_miter.num_ands
    if full.status is CecStatus.UNDECIDED:
        assert full.reduced_miter.num_ands <= after_pg.reduced_miter.num_ands
    assert [p.kind for p in after_p.report.phases] == ["P"]
    assert [p.kind for p in after_pg.report.phases] == ["P", "G"]


def test_stop_after_validation():
    engine = SimSweepEngine(FAST)
    miter = build_miter(*(random_aig(seed=1), random_aig(seed=1)))
    with pytest.raises(ValueError):
        engine.check_miter(miter, stop_after="X")


def test_report_accounts_phases_and_reduction():
    original = gen.multiplier(4)
    optimized = compress2(original)
    result = SimSweepEngine(FAST).check(original, optimized)
    report = result.report
    assert report.initial_ands > 0
    assert 0.0 <= report.reduction_percent <= 100.0
    assert report.total_seconds > 0
    fractions = report.phase_fractions()
    if fractions:
        assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_undecided_returns_residue_and_state():
    """A hard miter with a tiny budget yields a usable residue."""
    original = gen.voter(31)
    optimized = compress2(original)
    config = EngineConfig(
        k_P=4, k_p=4, k_g=4, k_l=4, C=2,
        num_random_words=4, max_local_phases=1,
        memory_budget_words=1 << 14,
    )
    result = SimSweepEngine(config).check(original, optimized)
    if result.status is CecStatus.UNDECIDED:
        assert result.reduced_miter is not None
        assert result.sim_state is not None
        assert sampled_equivalent(original, optimized)[0]


def test_config_validation():
    with pytest.raises(ValueError):
        SimSweepEngine(EngineConfig(k_P=4, k_p=8))
    with pytest.raises(ValueError):
        SimSweepEngine(EngineConfig(passes=()))
    with pytest.raises(ValueError):
        SimSweepEngine(EngineConfig(passes=(1, 5)))


def test_paper_config_values():
    config = EngineConfig.paper()
    assert (config.k_P, config.k_p, config.k_g) == (32, 16, 16)
    assert (config.k_l, config.C) == (8, 8)
    assert config.k_s_for(config.k_g) == 16
