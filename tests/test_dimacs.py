"""Tests for DIMACS import/export."""

import pytest

from repro.aig.miter import build_miter
from repro.aig.network import negate_outputs
from repro.sat.dimacs import (
    from_dimacs_literal,
    miter_to_dimacs,
    read_dimacs,
    to_dimacs_literal,
    write_dimacs,
)
from repro.sat.solver import SatSolver, SolveStatus
from repro.synth.resyn import compress2

from conftest import random_aig


def test_literal_conversion_round_trip():
    for literal in range(20):
        assert from_dimacs_literal(to_dimacs_literal(literal)) == literal
    assert to_dimacs_literal(0) == 1    # var 0 positive
    assert to_dimacs_literal(1) == -1   # var 0 negative
    assert to_dimacs_literal(4) == 3
    with pytest.raises(ValueError):
        from_dimacs_literal(0)


def test_write_read_round_trip(tmp_path):
    clauses = [[0, 3], [1, 2, 5], [4]]
    path = tmp_path / "f.cnf"
    write_dimacs(3, clauses, path, comments=["hello"])
    num_vars, loaded = read_dimacs(path)
    assert num_vars == 3
    assert loaded == clauses
    text = path.read_text()
    assert text.startswith("c hello\np cnf 3 3\n")


def test_read_rejects_missing_header(tmp_path):
    path = tmp_path / "bad.cnf"
    path.write_text("1 -2 0\n")
    with pytest.raises(ValueError, match="problem line"):
        read_dimacs(path)


def _solve_file(path):
    num_vars, clauses = read_dimacs(path)
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    ok = all(solver.add_clause(c) for c in clauses)
    if not ok:
        return SolveStatus.UNSAT, solver
    return solver.solve(), solver


def test_miter_export_equivalent_is_unsat(tmp_path):
    original = random_aig(num_pis=5, num_nodes=40, seed=121)
    optimized = compress2(original)
    miter = build_miter(original, optimized)
    path = tmp_path / "eq.cnf"
    miter_to_dimacs(miter, path)
    status, _ = _solve_file(path)
    assert status is SolveStatus.UNSAT


def test_miter_export_nonequivalent_model_is_cex(tmp_path):
    original = random_aig(num_pis=5, num_nodes=40, num_pos=3, seed=122)
    buggy = negate_outputs(original, [1])
    miter = build_miter(original, buggy)
    path = tmp_path / "neq.cnf"
    miter_to_dimacs(miter, path)
    status, solver = _solve_file(path)
    assert status is SolveStatus.SAT
    pattern = [solver.model_value(i) for i in range(miter.num_pis)]
    assert original.evaluate(pattern) != buggy.evaluate(pattern)


def test_miter_export_trivially_equivalent(tmp_path):
    original = random_aig(num_pis=4, num_nodes=20, seed=123)
    miter = build_miter(original, original.copy())
    path = tmp_path / "triv.cnf"
    miter_to_dimacs(miter, path)
    status, _ = _solve_file(path)
    assert status is SolveStatus.UNSAT
