"""Tests for truth-table word primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.bitops import (
    FULL_WORD,
    WORD_BITS,
    first_set_bit,
    num_tt_words,
    pattern_of_index,
    popcount_words,
    projection_segment,
    random_words,
)


@pytest.mark.parametrize(
    "k,words", [(0, 1), (3, 1), (6, 1), (7, 2), (10, 16), (16, 1024)]
)
def test_num_tt_words(k, words):
    assert num_tt_words(k) == words


def test_num_tt_words_rejects_negative():
    with pytest.raises(ValueError):
        num_tt_words(-1)


@pytest.mark.parametrize("position", range(10))
def test_projection_matches_pattern_decoding(position):
    """Bit b of word w of projection i == value of input i in pattern (w,b)."""
    num_inputs = max(position + 1, 7)
    segment = projection_segment(position, 0, 16)
    for word_index in range(16):
        word = int(segment[word_index])
        for bit in range(WORD_BITS):
            pattern = pattern_of_index(word_index, bit, num_inputs)
            assert ((word >> bit) & 1) == pattern[position]


def test_projection_segment_offsets_consistent():
    """Slicing a long segment equals generating the slice directly."""
    full = projection_segment(8, 0, 32)
    for start in (0, 5, 16):
        part = projection_segment(8, start, 8)
        assert np.array_equal(part, full[start : start + 8])


def test_pattern_of_index_unique_within_table():
    """All 2^k positions decode to distinct assignments."""
    k = 8
    seen = set()
    for word in range(num_tt_words(k)):
        for bit in range(WORD_BITS):
            seen.add(tuple(pattern_of_index(word, bit, k)))
    assert len(seen) == 1 << k


def test_pattern_of_index_validates_bit():
    with pytest.raises(ValueError):
        pattern_of_index(0, 64, 3)


def test_first_set_bit():
    words = np.zeros(4, dtype=np.uint64)
    words[2] = np.uint64(1) << np.uint64(37)
    assert first_set_bit(words) == (2, 37)
    words[1] = np.uint64(0b1000)
    assert first_set_bit(words) == (1, 3)
    with pytest.raises(ValueError):
        first_set_bit(np.zeros(3, dtype=np.uint64))


def test_popcount_words():
    words = np.array([0b1011, FULL_WORD], dtype=np.uint64)
    assert popcount_words(words) == 3 + 64


def test_random_words_shape_and_determinism():
    rng1 = np.random.default_rng(5)
    rng2 = np.random.default_rng(5)
    a = random_words(3, 4, rng1)
    b = random_words(3, 4, rng2)
    assert a.shape == (3, 4)
    assert a.dtype == np.uint64
    assert np.array_equal(a, b)


@given(
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=63),
)
def test_pattern_projection_duality(position, word, bit):
    """pattern_of_index inverts projection_segment at any offset."""
    num_inputs = 13
    segment = projection_segment(position, word, 1)
    pattern = pattern_of_index(word, bit, num_inputs)
    assert ((int(segment[0]) >> bit) & 1) == pattern[position]
