"""Tests for SDC measurement and reconvergence analysis."""

import numpy as np
import pytest

from repro.aig.builder import AigBuilder
from repro.analysis import (
    cut_support,
    exact_cut_patterns,
    observed_cut_patterns,
    reconvergent_node_count,
    sdc_ratio,
)
from repro.simulation.bitops import random_words


def paper_sdc_example():
    """The §II-A example: n1 = x+y, n2 = yz, n3 = n1·n2.

    (n1=0, n2=1) is an SDC: n2 = 1 forces y = 1 which forces n1 = 1.
    """
    b = AigBuilder(3)
    x, y, z = 2, 4, 6
    n1 = b.add_or(x, y)
    n2 = b.add_and(y, z)
    n3 = b.add_and(n1, n2)
    b.add_po(n3)
    return b.build(), n1 >> 1, n2 >> 1, n3 >> 1


def test_paper_example_sdc():
    aig, n1, n2, n3 = paper_sdc_example()
    observed, total = exact_cut_patterns(aig, (n1, n2))
    assert total == 4
    # Patterns are *node values*.  ``add_or`` builds x+y as the
    # complement of AND(!x, !y), so node n1's value is !(x+y): the
    # paper's SDC (x+y = 0, yz = 1) is node pattern (n1=1, n2=1) → 3.
    assert 3 not in observed
    assert observed == {0, 1, 2}
    assert sdc_ratio(aig, (n1, n2)) == pytest.approx(0.25)


def test_pi_cut_has_no_sdcs():
    aig, n1, n2, n3 = paper_sdc_example()
    assert sdc_ratio(aig, (1, 2, 3)) == 0.0


def test_cut_support():
    aig, n1, n2, n3 = paper_sdc_example()
    assert cut_support(aig, (n1,)) == (1, 2)
    assert cut_support(aig, (n1, n2)) == (1, 2, 3)


def test_observed_subset_of_exact():
    aig, n1, n2, n3 = paper_sdc_example()
    rng = np.random.default_rng(3)
    words = random_words(3, 2, rng)
    observed = observed_cut_patterns(aig, (n1, n2), words)
    exact, _ = exact_cut_patterns(aig, (n1, n2))
    assert observed <= exact


def test_exact_rejects_wide_support():
    b = AigBuilder(25)
    lits = [2 * (i + 1) for i in range(25)]
    conj = b.add_and_multi(lits)
    b.add_po(conj)
    aig = b.build()
    with pytest.raises(ValueError, match="support"):
        exact_cut_patterns(aig, (conj >> 1,), max_support=20)


def test_reconvergence_detection():
    # Diamond: both fanins of the top node reach cut leaf x.
    b = AigBuilder(2)
    x, y = 2, 4
    a = b.add_and(x, y)
    o = b.add_or(x, y)
    top = b.add_and(a, o)
    b.add_po(top)
    aig = b.build()
    assert reconvergent_node_count(aig, top >> 1, (1, 2)) == 1  # only top
    # With the cut at {a, o} there is no cone left to reconverge.
    assert reconvergent_node_count(aig, top >> 1, (a >> 1, o >> 1)) == 0


def test_reconvergence_free_cone():
    b = AigBuilder(4)
    left = b.add_and(2, 4)
    right = b.add_and(6, 8)
    top = b.add_and(left, right)
    b.add_po(top)
    aig = b.build()
    assert reconvergent_node_count(aig, top >> 1, (1, 2, 3, 4)) == 0


def test_sdc_correlates_with_cut_size_on_diamond():
    """Smaller cuts absorbing the reconvergence carry fewer SDCs."""
    b = AigBuilder(2)
    x, y = 2, 4
    a = b.add_and(x, y)
    o = b.add_or(x, y)
    top = b.add_and(a, o)
    b.add_po(top)
    aig = b.build()
    # {a, o}: a=1,o=0 is impossible → SDCs present.
    assert sdc_ratio(aig, (a >> 1, o >> 1)) > 0.0
    # {x, y}: free of SDCs.
    assert sdc_ratio(aig, (1, 2)) == 0.0
