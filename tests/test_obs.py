"""Tests for the observability layer (``repro.obs``).

Covers span recording and nesting, cross-process re-basing, the
disabled-mode no-op guarantees, the metrics registry round-trip, the
structured logger, and an end-to-end traced parallel portfolio run
validated by ``tools/check_trace.py``.
"""

import importlib.util
import json
import os
import time

import pytest

from repro.aig.miter import build_miter
from repro.bench import generators as gen
from repro.obs import (
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    Tracer,
    get_logger,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
)
from repro.synth.resyn import compress2


def _load_check_trace():
    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "tools", "check_trace.py"
    )
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def _restore_ambient_tracer():
    yield
    set_tracer(None)


# ----------------------------------------------------------------------
# Tracer basics
# ----------------------------------------------------------------------


def test_span_recording_and_attrs():
    tracer = Tracer(process_name="test")
    with tracer.span("outer", category="phase", round=1) as span:
        span.set("extra", 7)
        with tracer.span("inner", category="sim"):
            pass
    spans = tracer.spans()
    assert [s[0] for s in spans] == ["inner", "outer"]  # exit order
    outer = spans[1]
    assert outer[1] == "phase"
    assert outer[4] == {"round": 1, "extra": 7}
    assert outer[3] >= 0  # duration_ns


def test_span_nesting_by_time_containment():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = tracer.spans()
    assert outer[2] <= inner[2]
    assert inner[2] + inner[3] <= outer[2] + outer[3]


def test_span_durations_feed_metrics_histograms():
    tracer = Tracer()
    with tracer.span("work"):
        pass
    hist = tracer.metrics.histograms["span.work.seconds"]
    assert hist.count == 1


def test_instant_events_exported():
    tracer = Tracer()
    tracer.instant("marker", category="engine", detail=3)
    doc = tracer.to_chrome_trace()
    markers = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(markers) == 1
    assert markers[0]["name"] == "marker"
    assert markers[0]["args"] == {"detail": 3}


def test_chrome_trace_structure():
    tracer = Tracer(process_name="myproc")
    with tracer.span("s", category="engine", k=1):
        pass
    doc = tracer.to_chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "myproc"
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs[0]["name"] == "s"
    assert xs[0]["cat"] == "engine"
    assert xs[0]["ts"] >= 0 and xs[0]["dur"] >= 0
    assert xs[0]["pid"] == tracer.pid
    assert xs[0]["args"] == {"k": 1}


def test_tracer_write_is_valid_json(tmp_path):
    tracer = Tracer()
    with tracer.span("s"):
        pass
    path = tracer.write(str(tmp_path / "trace.json"))
    payload = json.loads(open(path).read())
    assert payload["traceEvents"]
    assert not os.path.exists(path + ".tmp")


# ----------------------------------------------------------------------
# Cross-process re-basing
# ----------------------------------------------------------------------


def test_merge_child_rebases_by_epoch_offset():
    parent = Tracer(process_name="parent")
    child = Tracer(process_name="child")
    # Synthesise a child whose wall clock anchor is 5 ms after the
    # parent's, with one span starting 1 ms into the child's timeline.
    child.epoch_origin_ns = parent.epoch_origin_ns + 5_000_000
    child._spans = [("w", "engine", 1_000_000, 2_000_000, None)]
    child.pid = parent.pid + 1
    merged = parent.merge_child(child.export_payload())
    assert merged == 1
    doc = parent.to_chrome_trace()
    event = [e for e in doc["traceEvents"] if e["name"] == "w"][0]
    assert event["ts"] == pytest.approx(6_000.0)  # 6 ms in microseconds
    assert event["dur"] == pytest.approx(2_000.0)
    assert event["pid"] == child.pid


def test_merge_child_clamps_negative_timestamps():
    parent = Tracer()
    payload = {
        "pid": 99999,
        "process_name": "worker:x",
        "epoch_origin_ns": parent.epoch_origin_ns - 10_000_000,
        "spans": [("early", "engine", 1_000_000, 500, None)],
        "instants": [],
        "metrics": {},
    }
    parent.merge_child(payload)
    doc = parent.to_chrome_trace()
    event = [e for e in doc["traceEvents"] if e["name"] == "early"][0]
    assert event["ts"] == 0.0


def test_merge_child_merges_metrics_and_process_names():
    parent = Tracer()
    child = Tracer(process_name="worker:sat")
    child.pid = parent.pid + 1
    child.metrics.counter_add("sat.pair_calls", 3)
    child.metrics.observe("sat.pair_seconds", 0.25)
    parent.metrics.counter_add("sat.pair_calls", 2)
    parent.merge_child(child.export_payload())
    assert parent.metrics.counters["sat.pair_calls"] == 5
    assert parent.metrics.histograms["sat.pair_seconds"].count == 1
    doc = parent.to_chrome_trace()
    names = {
        e["pid"]: e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M"
    }
    assert names[child.pid] == "worker:sat"


def test_summary_covers_merged_spans():
    parent = Tracer()
    with parent.span("own", category="engine"):
        pass
    child = Tracer(process_name="worker:c")
    child.pid = parent.pid + 1
    with child.span("theirs", category="sat"):
        pass
    parent.merge_child(child.export_payload())
    summary = parent.summary()
    assert summary["spans"] == 2
    assert summary["processes"] == 2
    assert set(summary["seconds_by_name"]) == {"own", "theirs"}
    assert set(summary["seconds_by_category"]) == {"engine", "sat"}


# ----------------------------------------------------------------------
# Disabled mode
# ----------------------------------------------------------------------


def test_ambient_tracer_defaults_to_null():
    assert get_tracer() is NULL_TRACER
    assert not get_tracer().enabled


def test_use_tracer_restores_previous():
    tracer = Tracer()
    with use_tracer(tracer):
        assert get_tracer() is tracer
        with use_tracer(None):
            assert get_tracer() is NULL_TRACER
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_null_tracer_records_nothing_and_shares_one_span():
    null = NULL_TRACER
    a = null.span("x", category="y", attr=1)
    b = null.span("z")
    assert a is b  # one cached no-op span, no per-call allocation
    with a as span:
        span.set("k", "v")
    null.instant("i")
    null.metrics.counter_add("c")
    null.metrics.observe("h", 1.0)
    assert null.metrics.as_dict() == {"counters": {}, "histograms": {}}


def test_null_tracer_microloop_overhead():
    """10⁵ disabled span entries must be cheap (no-op guarantee)."""
    null = NULL_TRACER
    start = time.perf_counter()
    for _ in range(100_000):
        with null.span("hot", category="sim"):
            pass
    elapsed = time.perf_counter() - start
    # Generous bound: ~1 µs/iteration budget even on loaded CI machines.
    assert elapsed < 1.0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


def test_counter_accumulates():
    reg = MetricsRegistry()
    reg.counter_add("a")
    reg.counter_add("a", 4)
    assert reg.counters["a"] == 5


def test_histogram_summary_statistics():
    hist = Histogram()
    for v in (0.5, 1.5, 4.0, 0.0):
        hist.observe(v)
    assert hist.count == 4
    assert hist.total == pytest.approx(6.0)
    assert hist.vmin == 0.0
    assert hist.vmax == 4.0
    assert hist.mean() == pytest.approx(1.5)
    assert sum(hist.buckets.values()) == 4


def test_histogram_quantile_bounds_and_order():
    hist = Histogram()
    assert hist.quantile(0.5) == 0.0  # empty histogram
    for v in (0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8):
        hist.observe(v)
    assert hist.quantile(0.0) == pytest.approx(0.1)
    assert hist.quantile(1.0) == pytest.approx(12.8, rel=0.5)
    p50 = hist.quantile(0.5)
    p90 = hist.quantile(0.9)
    assert hist.vmin <= p50 <= p90 <= hist.vmax
    # Each estimate must land within a factor of two of the exact value
    # (the bucket width bounds the error).
    assert 0.4 / 2 <= p50 <= 0.8 * 2
    assert 6.4 / 2 <= p90 <= 12.8 * 2
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_quantile_single_value_is_exact():
    hist = Histogram()
    for _ in range(10):
        hist.observe(3.0)
    # min/max clamping collapses the bucket estimate onto the true value.
    assert hist.quantile(0.5) == pytest.approx(3.0)
    assert hist.mean() == pytest.approx(3.0)


def test_histogram_quantile_zero_sentinel_bucket():
    hist = Histogram()
    for _ in range(8):
        hist.observe(0.0)
    hist.observe(4.0)
    assert hist.quantile(0.5) == 0.0
    assert hist.quantile(1.0) == 4.0


def test_histogram_quantile_and_mean_after_merge():
    a = Histogram()
    b = Histogram()
    values_a = [0.25, 0.5, 1.0, 2.0]
    values_b = [4.0, 8.0, 16.0, 32.0]
    for v in values_a:
        a.observe(v)
    for v in values_b:
        b.observe(v)
    a.merge_dict(b.as_dict())
    everything = sorted(values_a + values_b)
    assert a.count == len(everything)
    assert a.mean() == pytest.approx(sum(everything) / len(everything))
    # The merged quantiles must match a histogram built from the union
    # stream exactly — bucket counts and min/max merge losslessly.
    union = Histogram()
    for v in everything:
        union.observe(v)
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert a.quantile(q) == pytest.approx(union.quantile(q))
    assert a.vmin == 0.25 and a.vmax == 32.0


def test_registry_round_trip_and_merge():
    a = MetricsRegistry()
    a.counter_add("c", 2)
    a.observe("h", 0.5)
    a.observe("h", 8.0)
    b = MetricsRegistry()
    b.counter_add("c", 3)
    b.observe("h", 1.0)
    b.merge_dict(a.as_dict())
    assert b.counters["c"] == 5
    merged = b.histograms["h"]
    assert merged.count == 3
    assert merged.total == pytest.approx(9.5)
    assert merged.vmin == 0.5
    assert merged.vmax == 8.0
    # Serialisation is JSON-safe (string bucket keys).
    json.dumps(b.as_dict())


def test_registry_summary_lines():
    reg = MetricsRegistry()
    reg.counter_add("z.counter", 7)
    reg.observe("a.hist", 2.0)
    lines = reg.summary_lines()
    assert any("counter z.counter: 7" in line for line in lines)
    assert any("histogram a.hist" in line for line in lines)


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------


def test_configure_logging_writes_key_value_to_stderr(capsys):
    configure_logging("info")
    get_logger("test").info("hello world")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert 'msg="hello world"' in captured.err
    assert "level=info" in captured.err
    assert "logger=repro.test" in captured.err


def test_configure_logging_level_filters(capsys):
    configure_logging("error")
    get_logger("test").info("quiet")
    get_logger("test").error("loud")
    captured = capsys.readouterr()
    assert "quiet" not in captured.err
    assert "loud" in captured.err


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure_logging("chatty")


def test_configure_logging_is_idempotent(capsys):
    configure_logging("info")
    configure_logging("info")
    get_logger("test").info("once")
    captured = capsys.readouterr()
    assert captured.err.count("once") == 1


def test_formatter_appends_kv_pairs():
    import logging

    record = logging.LogRecord(
        "repro.x", logging.INFO, __file__, 1, "m", (), None
    )
    record.kv = {"engine": "sat"}
    line = KeyValueFormatter().format(record)
    assert "engine=sat" in line
    assert line.endswith('msg="m"')


def test_configure_logging_json_mode_emits_one_object_per_line(capsys):
    configure_logging("info", json_format=True)
    get_logger("test").info(
        "warm hit", extra={"kv": {"engine": "sim", "hits": 3}}
    )
    get_logger("test").warning("slow")
    captured = capsys.readouterr()
    lines = [l for l in captured.err.splitlines() if l]
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["level"] == "info"
    assert first["logger"] == "repro.test"
    assert first["msg"] == "warm hit"
    assert first["engine"] == "sim"
    assert first["hits"] == 3
    assert isinstance(first["ts"], float)
    assert json.loads(lines[1])["level"] == "warning"
    # Reconfiguring back to key=value replaces the handler in place.
    configure_logging("info")
    get_logger("test").info("plain")
    assert 'msg="plain"' in capsys.readouterr().err


def test_json_formatter_protects_reserved_keys_and_exceptions():
    import logging

    record = logging.LogRecord(
        "repro.x", logging.ERROR, __file__, 1, "boom", (), None
    )
    record.kv = {"msg": "spoofed", "worker": 2, "obj": object()}
    try:
        raise RuntimeError("die")
    except RuntimeError:
        import sys as _sys

        record.exc_info = _sys.exc_info()
    payload = json.loads(JsonFormatter().format(record))
    assert payload["msg"] == "boom"  # kv cannot shadow the record's msg
    assert payload["worker"] == 2
    assert payload["exc"] == "RuntimeError"
    assert isinstance(payload["obj"], str)  # default=str keeps it JSON


# ----------------------------------------------------------------------
# End-to-end: traced parallel portfolio
# ----------------------------------------------------------------------


def test_parallel_portfolio_trace_merges_worker_timelines(tmp_path):
    from repro.portfolio.parallel import ParallelPortfolioChecker

    original = gen.multiplier(4)
    miter = build_miter(original, compress2(original))
    tracer = Tracer(process_name="cec")
    with use_tracer(tracer):
        checker = ParallelPortfolioChecker(
            engines=[("combined", {}), ("sleep", {"seconds": 60.0})]
        )
        result = checker.check_miter(miter)
    assert result.status.value == "equivalent"

    doc = tracer.to_chrome_trace()
    events = doc["traceEvents"]
    procs = {
        e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"
    }
    worker_pids = {
        e["pid"]
        for e in events
        if e["ph"] == "X" and procs.get(e["pid"], "").startswith("worker")
    }
    # Both workers contributed spans — including the cancelled sleeper,
    # whose SIGTERM handler shipped its partial trace.
    assert len(worker_pids) >= 2
    names = {e["name"] for e in events}
    assert "portfolio.run" in names
    assert "portfolio.terminate" in names
    assert "phase.P" in names
    assert any(n.startswith("engine:") for n in names)
    # Worker metrics merged into the parent registry.
    assert result.report.metrics["counters"]

    # The written file validates against the CI schema checker.
    path = tracer.write(str(tmp_path / "portfolio_trace.json"))
    check_trace = _load_check_trace()
    errors = check_trace.validate_trace(
        json.load(open(path)),
        require_phases=("phase.P",),
        require_workers=2,
    )
    assert errors == []


def test_check_trace_rejects_malformed_payloads():
    check_trace = _load_check_trace()
    assert check_trace.validate_trace([]) != []
    assert check_trace.validate_trace({"traceEvents": []}) != []
    bad_event = {"traceEvents": [{"name": "x", "ph": "Q", "pid": 1, "tid": 0}]}
    assert check_trace.validate_trace(bad_event) != []
    missing_dur = {
        "traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0,
             "cat": "c"}
        ]
    }
    assert check_trace.validate_trace(missing_dur) != []
    ok = {
        "traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0,
             "dur": 2.0, "cat": "c"}
        ]
    }
    assert check_trace.validate_trace(ok) == []
    assert check_trace.validate_trace(ok, require_phases=("y",)) != []
    assert check_trace.validate_trace(ok, require_workers=1) != []


def test_check_trace_require_rebuild(tmp_path):
    check_trace = _load_check_trace()
    no_rebuild = {
        "traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0,
             "dur": 2.0, "cat": "c"}
        ]
    }
    assert check_trace.validate_trace(no_rebuild) == []
    assert check_trace.validate_trace(no_rebuild, require_rebuild=True) != []
    # A rebuild span without its bookkeeping args must be rejected too.
    bare = {
        "traceEvents": [
            {"name": "rebuild", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0,
             "dur": 2.0, "cat": "state"}
        ]
    }
    assert check_trace.validate_trace(bare, require_rebuild=True) != []

    # A real traced engine run on a reducible miter validates.  Small
    # PO budgets keep the P phase from one-shotting the miter, so the
    # global phase provably merges pairs and carries signatures.
    from repro.sweep.config import EngineConfig
    from repro.sweep.engine import SimSweepEngine

    a = gen.multiplier(4)
    b = compress2(a)
    tracer = Tracer()
    with use_tracer(tracer):
        result = SimSweepEngine(EngineConfig(k_P=4, k_p=4)).check(a, b)
    assert result.is_equivalent
    path = tracer.write(str(tmp_path / "rebuild_trace.json"))
    errors = check_trace.validate_trace(
        json.load(open(path)), require_rebuild=True
    )
    assert errors == []
    counters = tracer.metrics.counters
    assert counters.get("state.carried_words", 0) > counters.get(
        "state.recomputed_words", 0
    )


def test_check_trace_require_sched(tmp_path):
    check_trace = _load_check_trace()

    def counter(name, value):
        return {"name": name, "ph": "C", "pid": 1, "tid": 0, "ts": 1.0,
                "args": {"value": value}}

    span = {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 1.0,
            "dur": 2.0, "cat": "c"}
    # No sched counters at all: rejected.
    assert check_trace.validate_trace(
        {"traceEvents": [span]}, require_sched=True
    ) != []
    # All lanes present but SAT queries were not batched: rejected.
    unbatched = {
        "traceEvents": [span]
        + [counter(f"sched.dispatch.{lane}", 1)
           for lane in ("sim", "cut", "bdd", "sat")]
        + [counter("sched.mispredict", 0),
           counter("sat.batch.pairs", 3), counter("sat.batch.solves", 3)]
    }
    assert check_trace.validate_trace(unbatched, require_sched=True) != []
    batched = {
        "traceEvents": [span]
        + [counter(f"sched.dispatch.{lane}", 1)
           for lane in ("sim", "cut", "bdd", "sat")]
        + [counter("sched.mispredict", 2),
           counter("sat.batch.pairs", 9), counter("sat.batch.solves", 2)]
    }
    assert check_trace.validate_trace(batched, require_sched=True) == []

    # A real traced adaptive run validates end to end.
    from repro.sched import AdaptiveSweeper
    from repro.sweep.config import EngineConfig

    a = gen.multiplier(4)
    b = compress2(a)
    tracer = Tracer()
    with use_tracer(tracer):
        result = AdaptiveSweeper(EngineConfig.fast()).check(a, b)
    assert result.is_equivalent
    path = tracer.write(str(tmp_path / "sched_trace.json"))
    errors = check_trace.validate_trace(
        json.load(open(path)), require_sched=True
    )
    assert errors == []
