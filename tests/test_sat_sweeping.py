"""Tests for the FRAIG-style SAT sweeping checker."""

import pytest

from repro.aig.miter import build_miter
from repro.aig.network import negate_outputs
from repro.bench import generators as gen
from repro.sat.sweeping import SatSweepChecker
from repro.sweep.classes import SimulationState
from repro.sweep.engine import CecStatus
from repro.synth.resyn import compress2

from conftest import random_aig, sampled_equivalent


def test_proves_resynthesised_circuit():
    original = gen.sqrt(8)
    optimized = compress2(original)
    checker = SatSweepChecker(num_random_words=8)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert checker.stats.sat_calls > 0


def test_disproves_with_valid_cex():
    original = gen.log2(6)
    buggy = negate_outputs(compress2(original), [2])
    result = SatSweepChecker(num_random_words=4).check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    assert original.evaluate(result.cex) != buggy.evaluate(result.cex)


def test_subtle_bug_found_by_po_proving():
    """A deep disagreement random simulation misses must fall to SAT."""
    from repro.aig.builder import AigBuilder
    from repro.bench.wordlib import equals_const

    b = AigBuilder(12)
    pis = [2 * (i + 1) for i in range(12)]
    b.add_po(b.add_and_multi(pis))
    a1 = b.build()
    b2 = AigBuilder(12)
    pis2 = [2 * (i + 1) for i in range(12)]
    # AND of all, except it reports 0 on the all-ones pattern.
    conj = b2.add_and_multi(pis2)
    b2.add_po(b2.add_and(conj, b2.lit_not(equals_const(b2, pis2, 4095))))
    a2 = b2.build()
    result = SatSweepChecker(num_random_words=2).check(a1, a2)
    assert result.status is CecStatus.NONEQUIVALENT
    assert result.cex == [1] * 12


def test_time_limit_gives_undecided_with_residue():
    original = gen.multiplier(5)
    optimized = compress2(original)
    checker = SatSweepChecker(time_limit=0.0)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED
    assert result.reduced_miter is not None
    assert sampled_equivalent(original, optimized)[0]


def test_ec_transfer_skips_disproved_pairs():
    """A transferred pattern pool pre-splits classes (§V extension)."""
    original = gen.voter(15)
    optimized = compress2(original)
    miter = build_miter(original, optimized)

    baseline = SatSweepChecker(num_random_words=4, seed=3)
    baseline_result = baseline.check_miter(miter)
    assert baseline_result.status is CecStatus.EQUIVALENT

    # Warm a state with many patterns: classes are already refined, so
    # fewer pairs get disproved by SAT (fewer SAT CEX calls).
    state = SimulationState(miter.num_pis, num_random_words=64, seed=3)
    warm = SatSweepChecker(num_random_words=4, seed=3)
    warm_result = warm.check_miter(miter, state=state)
    assert warm_result.status is CecStatus.EQUIVALENT
    assert warm.stats.disproved_pairs <= baseline.stats.disproved_pairs


def test_structural_short_circuit():
    aig = random_aig(seed=101)
    checker = SatSweepChecker()
    result = checker.check(aig, aig.copy())
    assert result.status is CecStatus.EQUIVALENT
    assert checker.stats.sat_calls == 0


def test_report_population():
    original = gen.sqrt(8)
    optimized = compress2(original)
    result = SatSweepChecker(num_random_words=4).check(original, optimized)
    assert result.report.initial_ands > 0
    assert result.report.total_seconds > 0
    assert result.report.phases[0].kind == "SAT"
