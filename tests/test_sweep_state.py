"""Randomized cross-checks for the incremental SweepState core.

The central invariant of :mod:`repro.sweep.state` is *bit-exactness*:
after any sequence of merges/PO rewrites, the incrementally maintained
network must be structurally identical to the historical
rebuild-from-scratch path, and the carried signature matrix must equal a
fresh full re-simulation of the reduced network.  These tests enforce
both on hundreds of seeded random networks, using the retained
sequential-builder ``*_reference`` implementations as independent
oracles.
"""

from __future__ import annotations

import itertools
import pickle
import random

import numpy as np
import pytest

from conftest import layered_aig, random_aig
from repro.aig.literals import CONST0, lit, lit_var
from repro.aig.network import Aig
from repro.aig.rebuild import reachable_and_mask, rebuild_network
from repro.aig.transform import (
    cleanup,
    rebuild_with_replacements,
    rebuild_with_replacements_reference,
    relabel_compact,
    relabel_compact_reference,
)
from repro.obs import Tracer, use_tracer
from repro.simulation.partial import pack_patterns, simulate_words
from repro.sweep.classes import EquivalenceClasses
from repro.sweep.state import SweepState


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _assert_same_network(a: Aig, b: Aig) -> None:
    assert a.num_pis == b.num_pis
    assert a.num_ands == b.num_ands
    assert list(a.pos) == list(b.pos)
    af0, af1 = a.fanin_literals()
    bf0, bf1 = b.fanin_literals()
    assert np.array_equal(af0, bf0)
    assert np.array_equal(af1, bf1)


def _exhaustive_tables(aig: Aig) -> np.ndarray:
    patterns = list(itertools.product([0, 1], repeat=aig.num_pis))
    return simulate_words(aig, pack_patterns(patterns, aig.num_pis))


def _true_merges(aig: Aig, rnd: random.Random, fraction: float = 1.0):
    """Proved-equivalence merge batch from exhaustive simulation.

    Only AND nodes are merged (as the engine does); ``fraction``
    subsamples the batch so multi-batch sequences leave work for later
    rounds.
    """
    classes = EquivalenceClasses.from_tables(_exhaustive_tables(aig))
    merges = {}
    for repr_node, node, phase in classes.all_pairs():
        if aig.is_and(node) and rnd.random() < fraction:
            merges[node] = (repr_node, phase)
    return merges


def _merges_to_replacements(merges):
    return {n: lit(t, p) for n, (t, p) in merges.items()}


# ----------------------------------------------------------------------
# Vectorised rebuild vs sequential-builder oracle (>= 200 random AIGs)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("block", range(8))
def test_rebuild_matches_reference_randomized(block):
    """220 seeded random AIGs: networks AND node maps are bit-identical."""
    for seed in range(block * 28, block * 28 + 28):
        rnd = random.Random(seed * 7919)
        num_pis = 3 + seed % 5
        num_nodes = 10 + (seed * 13) % 70
        aig = random_aig(
            num_pis=num_pis,
            num_nodes=num_nodes,
            num_pos=1 + seed % 4,
            seed=seed,
        )

        got_aig, got_map = relabel_compact(aig)
        ref_aig, ref_map = relabel_compact_reference(aig)
        _assert_same_network(got_aig, ref_aig)
        assert got_map == ref_map

        merges = _true_merges(aig, rnd, fraction=0.8)
        replacements = _merges_to_replacements(merges)
        got_aig, got_map = rebuild_with_replacements(aig, replacements)
        ref_aig, ref_map = rebuild_with_replacements_reference(
            aig, replacements
        )
        _assert_same_network(got_aig, ref_aig)
        assert got_map == ref_map


def test_rebuild_resolves_chains_like_reference():
    """Chained replacements (a→b, b→c) resolve transitively."""
    checked = 0
    for seed in range(200):
        aig = random_aig(num_pis=4, num_nodes=40, num_pos=2, seed=seed)
        classes = EquivalenceClasses.from_tables(_exhaustive_tables(aig))
        chain = None
        for eq_class in classes:
            ands = [
                n for n in eq_class.members[1:] if aig.is_and(n)
            ]
            if len(ands) >= 2:
                phases = {
                    n: p
                    for n, p in zip(eq_class.members, eq_class.phases)
                }
                chain = (eq_class.members[0], phases, ands)
                break
        if chain is None:
            continue
        repr_node, phases, ands = chain
        # Link each AND member to the *previous* member, not the
        # representative: the rebuild must compress the chain.
        replacements = {}
        prev = repr_node
        for node in ands:
            phase = phases[node] ^ phases[prev]
            replacements[node] = lit(prev, phase)
            prev = node
        got_aig, got_map = rebuild_with_replacements(aig, replacements)
        ref_aig, ref_map = rebuild_with_replacements_reference(
            aig, replacements
        )
        _assert_same_network(got_aig, ref_aig)
        assert got_map == ref_map
        checked += 1
    assert checked >= 50


def test_replacement_cycle_raises():
    aig = random_aig(num_pis=4, num_nodes=20, seed=3)
    a = aig.first_and
    b = aig.first_and + 1
    # The error must name the offending cycle (a -> b -> a).
    with pytest.raises(ValueError, match=f"{a} -> {b} -> {a}"):
        rebuild_with_replacements(aig, {a: lit(b), b: lit(a)})


def test_replacement_forward_chain_raises():
    aig = random_aig(num_pis=4, num_nodes=20, seed=4)
    node = aig.first_and + 2
    target = aig.first_and + 5
    with pytest.raises(ValueError, match="smaller id"):
        rebuild_with_replacements(aig, {node: lit(target)})


def test_replacement_chain_through_larger_id_resolves():
    """A forward intermediate target is fine if the chain ends lower."""
    aig = random_aig(num_pis=4, num_nodes=30, seed=5)
    low = aig.first_and
    mid = aig.first_and + 4
    high = aig.first_and + 9
    replacements = {mid: lit(high), high: lit(low, 1)}
    got_aig, _ = rebuild_with_replacements(aig, replacements)
    direct_aig, _ = rebuild_with_replacements(
        aig, {mid: lit(low, 1), high: lit(low, 1)}
    )
    _assert_same_network(got_aig, direct_aig)


# ----------------------------------------------------------------------
# Vectorised reachability
# ----------------------------------------------------------------------


def test_reachable_mask_matches_python_traversal():
    for seed in range(60):
        aig = (
            random_aig(num_pis=5, num_nodes=50, num_pos=3, seed=seed)
            if seed % 2
            else layered_aig(num_pis=6, layers=4, width=8, seed=seed)
        )
        f0, f1 = aig.fanin_literals()
        mask = reachable_and_mask(
            aig.num_nodes, aig.first_and, f0 >> 1, f1 >> 1,
            np.asarray(aig.pos, dtype=np.int64) >> 1,
        )
        seen = set()
        stack = [p >> 1 for p in aig.pos]
        while stack:
            node = stack.pop()
            if node in seen or node < aig.first_and:
                continue
            seen.add(node)
            i = node - aig.first_and
            stack.append(int(f0[i]) >> 1)
            stack.append(int(f1[i]) >> 1)
        expected = np.zeros(aig.num_nodes, dtype=bool)
        for node in seen:
            expected[node] = True
        assert np.array_equal(mask, expected)


# ----------------------------------------------------------------------
# SweepState: incremental == from-scratch (the tentpole invariant)
# ----------------------------------------------------------------------


def test_sweep_state_incremental_matches_scratch_randomized():
    """200 seeded cases: multi-batch merges + pool growth.

    After every batch the state network must equal the reference
    rebuild of the previous network, and the carried signature matrix
    must equal a fresh full simulation of the current network.
    """
    for seed in range(200):
        rnd = random.Random(seed * 104729)
        aig = random_aig(
            num_pis=3 + seed % 4,
            num_nodes=15 + (seed * 11) % 60,
            num_pos=1 + seed % 3,
            seed=seed + 1000,
        )
        state = SweepState(cleanup(aig), num_random_words=2, seed=seed)
        state.tables()  # materialise so every batch exercises the carry
        for batch in range(3):
            current = state.network()
            merges = _true_merges(current, rnd, fraction=0.7)
            if not merges:
                break
            ref_aig, _ = rebuild_with_replacements_reference(
                current, _merges_to_replacements(merges)
            )
            state.apply_merges(merges)
            _assert_same_network(state.network(), ref_aig)
            carried = state.tables()
            fresh = simulate_words(state.network(), state.pi_words)
            assert np.array_equal(carried, fresh)
            if batch == 0:
                # Growing the pool must only append simulated columns.
                pattern = [rnd.randint(0, 1) for _ in range(aig.num_pis)]
                state.add_cex_patterns([pattern])
                widened = state.tables()
                fresh = simulate_words(state.network(), state.pi_words)
                assert np.array_equal(widened, fresh)


def test_sweep_state_set_pos_matches_cleanup():
    for seed in range(40):
        aig = random_aig(num_pis=5, num_nodes=40, num_pos=4, seed=seed)
        state = SweepState(cleanup(aig), num_random_words=1, seed=seed)
        state.tables()
        current = state.network()
        new_pos = list(current.pos)
        new_pos[seed % len(new_pos)] = CONST0
        reference, _ = relabel_compact_reference(
            Aig(
                current.num_pis,
                current.fanin_literals()[0],
                current.fanin_literals()[1],
                new_pos,
                name=current.name,
            )
        )
        state.set_pos(new_pos)
        _assert_same_network(state.network(), reference)
        assert np.array_equal(
            state.tables(), simulate_words(state.network(), state.pi_words)
        )


def test_sweep_state_classes_remap_matches_from_tables():
    checked = 0
    for seed in range(80):
        rnd = random.Random(seed)
        aig = random_aig(num_pis=4, num_nodes=40, num_pos=2, seed=seed)
        miter = cleanup(aig)
        state = SweepState(miter, num_random_words=2, seed=seed)
        before = state.classes()
        if len(before) == 0:
            continue
        merges = _true_merges(miter, rnd, fraction=0.6)
        if not merges:
            continue
        state.apply_merges(merges)
        remapped = state.classes()
        scratch = EquivalenceClasses.from_tables(
            simulate_words(state.network(), state.pi_words)
        )
        got = [(c.members, c.phases) for c in remapped]
        want = [(c.members, c.phases) for c in scratch]
        assert got == want
        checked += 1
    assert checked >= 20


def test_sweep_state_origin_literals_track_functions():
    """Any original node maps to a current literal of equal function."""
    for seed in range(30):
        rnd = random.Random(seed)
        aig = cleanup(
            random_aig(num_pis=4, num_nodes=30, num_pos=2, seed=seed)
        )
        state = SweepState(aig, num_random_words=1, seed=seed)
        original = _exhaustive_tables(aig)
        for _ in range(2):
            merges = _true_merges(state.network(), rnd, fraction=0.8)
            if not merges:
                break
            state.apply_merges(merges)
        assert state.origin_valid
        now = _exhaustive_tables(state.network())
        for node in range(aig.num_nodes):
            mapped = int(state.origin_literals[node])
            if mapped < 0:
                continue
            want = original[node]
            got = now[mapped >> 1]
            if mapped & 1:
                got = ~got
                # Only the low 2^num_pis bits of the word are defined.
                width = 1 << aig.num_pis
                if width < 64:
                    keep = np.uint64((1 << width) - 1)
                    got = got & keep
                    want = want & keep
            assert np.array_equal(got, want)


def test_sweep_state_rejects_foreign_network():
    aig = cleanup(random_aig(num_pis=4, num_nodes=20, seed=1))
    other = cleanup(random_aig(num_pis=4, num_nodes=25, seed=2))
    state = SweepState(aig)
    with pytest.raises(ValueError):
        state.tables(other)
    with pytest.raises(ValueError):
        state.classes(other)
    # The historical call shape with the state's own network still works.
    assert state.tables(aig) is state.tables()


def test_sweep_state_pickles_and_rebuilds_lazily():
    rnd = random.Random(7)
    aig = cleanup(random_aig(num_pis=4, num_nodes=40, num_pos=2, seed=7))
    state = SweepState(aig, num_random_words=2, seed=7)
    merges = _true_merges(aig, rnd)
    if merges:
        state.apply_merges(merges)
    before = state.tables().copy()
    clone = pickle.loads(pickle.dumps(state))
    _assert_same_network(clone.network(), state.network())
    assert np.array_equal(clone.pi_words, state.pi_words)
    assert np.array_equal(clone.origin_literals, state.origin_literals)
    assert np.array_equal(clone.tables(), before)


def test_sweep_state_emits_rebuild_spans_and_counters():
    rnd = random.Random(11)
    aig = cleanup(random_aig(num_pis=4, num_nodes=50, num_pos=2, seed=11))
    with use_tracer(Tracer()) as tracer:
        state = SweepState(aig, num_random_words=2, seed=11)
        state.tables()
        merges = _true_merges(aig, rnd)
        assert merges, "seed must produce at least one provable merge"
        state.apply_merges(merges)
        names = [span[0] for span in tracer.spans()]
        assert "rebuild" in names
        counters = tracer.metrics.counters
        assert counters.get("state.rebuilds", 0) >= 1
        assert counters.get("state.carried_words", 0) > 0
        assert counters.get("state.recomputed_words", 0) == 0
        rebuild_span = next(
            s for s in tracer.spans() if s[0] == "rebuild"
        )
        attrs = rebuild_span[4]
        assert attrs["merges"] == len(merges)
        assert attrs["ands_after"] <= attrs["ands_before"]
        assert attrs["carried_words"] > 0


def test_rebuild_network_prune_before_matches_cleanup_reference():
    for seed in range(40):
        aig = random_aig(num_pis=5, num_nodes=45, num_pos=3, seed=seed)
        got = rebuild_network(aig, None, prune="before").aig
        ref, _ = relabel_compact_reference(aig)
        _assert_same_network(got, ref)
