"""Tests for the §V extensions: distance-1 CEXs, interleaved rewriting,
adaptive pass disabling."""

import numpy as np

from repro.bench import generators as gen
from repro.sweep.classes import SimulationState
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.synth.resyn import compress2


def test_distance1_expands_pool():
    state = SimulationState(8, num_random_words=1, seed=1)
    base_patterns = state.num_patterns
    state.add_cex_patterns([[1, 0, 1, 0, 1, 0, 1, 0]], distance1=True)
    # 1 CEX + 8 neighbours = 9 patterns → one extra word.
    assert state.num_patterns == base_patterns + 64
    assert state.num_cex == 1  # neighbours are not counted as CEXs


def test_distance1_patterns_are_neighbours():
    state = SimulationState(4, num_random_words=1, seed=1)
    cex = [1, 1, 0, 0]
    state.add_cex_patterns([cex], distance1=True)
    # Decode the appended word back into patterns.
    word = state.pi_words[:, -1]
    patterns = set()
    for bit in range(5):
        patterns.add(
            tuple(int((int(word[i]) >> bit) & 1) for i in range(4))
        )
    assert tuple(cex) in patterns
    for i in range(4):
        neighbour = list(cex)
        neighbour[i] ^= 1
        assert tuple(neighbour) in patterns


def test_distance1_limit():
    state = SimulationState(100, num_random_words=1, seed=1)
    state.add_cex_patterns([[0] * 100], distance1=True, distance1_limit=10)
    # 1 CEX + 10 neighbours = 11 patterns → one 64-pattern word.
    assert state.pi_words.shape[1] == 2


def test_engine_with_distance1_cex():
    original = gen.multiplier(4)
    optimized = compress2(original)
    config = EngineConfig.fast()
    config.distance1_cex = True
    result = SimSweepEngine(config).check(original, optimized)
    assert result.status in (CecStatus.EQUIVALENT, CecStatus.UNDECIDED)
    assert result.status is not CecStatus.NONEQUIVALENT


def test_engine_with_interleaved_rewriting():
    original = gen.voter(15)
    optimized = compress2(original)
    config = EngineConfig.fast()
    config.interleave_rewriting = True
    result = SimSweepEngine(config).check(original, optimized)
    assert result.status is not CecStatus.NONEQUIVALENT
    # Sanity: same verdict as the plain flow.
    plain = SimSweepEngine(EngineConfig.fast()).check(original, optimized)
    conclusive = {CecStatus.EQUIVALENT}
    if result.status in conclusive or plain.status in conclusive:
        assert CecStatus.NONEQUIVALENT not in (result.status, plain.status)


def test_adaptive_passes_disable_unproductive():
    original = gen.sqrt(8)
    optimized = compress2(original)
    config = EngineConfig.fast()
    config.adaptive_passes = True
    result = SimSweepEngine(config).check(original, optimized)
    assert result.status is not CecStatus.NONEQUIVALENT
