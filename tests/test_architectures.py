"""Tests for the architectural generators and cross-architecture CEC."""

import random

import pytest

from repro.bench.generators import (
    adder,
    carry_select_adder,
    kogge_stone_adder,
    multiplier,
    wallace_multiplier,
)
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine

from conftest import to_word, word_val

RND = random.Random(55)


@pytest.mark.parametrize("width,block", [(4, 1), (6, 2), (8, 4), (5, 8)])
def test_carry_select_semantics(width, block):
    aig = carry_select_adder(width, block)
    assert aig.num_pos == width + 1
    for _ in range(60):
        x, y = RND.randrange(1 << width), RND.randrange(1 << width)
        out = aig.evaluate(to_word(x, width) + to_word(y, width))
        assert word_val(out) == x + y


def test_carry_select_rejects_bad_block():
    with pytest.raises(ValueError):
        carry_select_adder(4, 0)


@pytest.mark.parametrize("width", [1, 2, 5, 8])
def test_kogge_stone_semantics(width):
    aig = kogge_stone_adder(width)
    for _ in range(60):
        x, y = RND.randrange(1 << width), RND.randrange(1 << width)
        out = aig.evaluate(to_word(x, width) + to_word(y, width))
        assert word_val(out) == x + y


def test_kogge_stone_is_log_depth():
    assert kogge_stone_adder(16).depth() < adder(16).depth() / 2


@pytest.mark.parametrize("width", [2, 4, 6])
def test_wallace_semantics(width):
    aig = wallace_multiplier(width)
    assert aig.num_pos == 2 * width
    for _ in range(80):
        x, y = RND.randrange(1 << width), RND.randrange(1 << width)
        out = aig.evaluate(to_word(x, width) + to_word(y, width))
        assert word_val(out) == x * y


def test_wallace_is_shallower_than_array():
    assert wallace_multiplier(8).depth() < multiplier(8).depth()


@pytest.mark.parametrize(
    "pair",
    [
        lambda: (adder(6), carry_select_adder(6)),
        lambda: (adder(6), kogge_stone_adder(6)),
        lambda: (carry_select_adder(6), kogge_stone_adder(6)),
        lambda: (multiplier(5), wallace_multiplier(5)),
    ],
    ids=["ripple-csel", "ripple-ks", "csel-ks", "array-wallace"],
)
def test_engine_proves_cross_architecture(pair):
    a, b = pair()
    result = SimSweepEngine(EngineConfig()).check(a, b)
    assert result.status is CecStatus.EQUIVALENT


def test_engine_catches_cross_architecture_bug():
    from repro.aig.network import negate_outputs

    a = adder(6)
    b = negate_outputs(kogge_stone_adder(6), [3])
    result = SimSweepEngine(EngineConfig()).check(a, b)
    assert result.status is CecStatus.NONEQUIVALENT
    assert a.evaluate(result.cex) != b.evaluate(result.cex)
