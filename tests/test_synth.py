"""Tests for balancing, cut rewriting and the resyn scripts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.builder import AigBuilder
from repro.bench import generators as gen
from repro.synth.balance import balance
from repro.synth.resyn import compress2, resyn2
from repro.synth.rewrite import cut_rewrite

from conftest import (
    brute_force_equivalent,
    layered_aig,
    random_aig,
    sampled_equivalent,
)


def test_balance_flattens_and_chain():
    b = AigBuilder(8)
    chain = 2
    for i in range(1, 8):
        chain = b.add_and(chain, 2 * (i + 1))
    b.add_po(chain)
    aig = b.build()
    assert aig.depth() == 7
    balanced = balance(aig)
    assert balanced.depth() == 3  # log2(8) levels
    assert brute_force_equivalent(aig, balanced)[0]


def test_balance_respects_shared_nodes():
    """Multi-fanout nodes must not be duplicated away silently."""
    b = AigBuilder(4)
    shared = b.add_and(2, 4)
    f = b.add_and(shared, 6)
    g = b.add_and(shared, 8)
    b.add_po(f)
    b.add_po(g)
    aig = b.build()
    balanced = balance(aig)
    assert brute_force_equivalent(aig, balanced)[0]
    assert balanced.num_ands <= aig.num_ands


def test_balance_never_increases_depth():
    for seed in range(6):
        aig = layered_aig(seed=seed)
        balanced = balance(aig)
        assert balanced.depth() <= aig.depth()
        assert brute_force_equivalent(aig, balanced)[0]


@pytest.mark.parametrize("k", [2, 4, 8])
def test_cut_rewrite_preserves_function(k):
    for seed in range(4):
        aig = random_aig(num_pis=7, num_nodes=80, seed=seed)
        rewritten = cut_rewrite(aig, k=k)
        assert brute_force_equivalent(aig, rewritten)[0], (seed, k)


def test_cut_rewrite_zero_gain_changes_structure():
    aig = layered_aig(num_pis=6, layers=4, width=8, seed=5)
    rewritten = cut_rewrite(aig, k=4, zero_gain=True)
    assert brute_force_equivalent(aig, rewritten)[0]


def test_cut_rewrite_reduces_redundant_logic():
    """A doubly-computed function collapses under rewriting."""
    b = AigBuilder(3)
    f1 = b.add_or(b.add_and(2, 4), b.add_and(2, 6))
    # Same function, distributed form: x & (y | z).
    f2 = b.add_and(2, b.add_or(4, 6))
    b.add_po(b.add_xor(f1, f2))
    aig = b.build()
    rewritten = cut_rewrite(aig, k=4)
    assert brute_force_equivalent(aig, rewritten)[0]
    assert rewritten.num_ands <= aig.num_ands


def test_cut_rewrite_validates_k():
    with pytest.raises(ValueError):
        cut_rewrite(random_aig(seed=1), k=1)


@pytest.mark.parametrize("script", [resyn2, compress2])
def test_scripts_on_arithmetic(script):
    original = gen.multiplier(4)
    optimized = script(original)
    assert brute_force_equivalent(original, optimized)[0]


def test_resyn2_restructures_wide_circuits():
    original = gen.sqrt(10)
    optimized = resyn2(original)
    assert sampled_equivalent(original, optimized)[0]
    # resyn2 must actually change the structure (otherwise the CEC
    # experiments degenerate to strashing).
    from repro.aig.miter import build_miter, miter_is_trivially_unsat

    miter = build_miter(original, optimized)
    assert not miter_is_trivially_unsat(miter)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_rewrite_equivalence_property(seed):
    aig = random_aig(num_pis=6, num_nodes=50, seed=seed)
    assert brute_force_equivalent(aig, cut_rewrite(aig, k=4))[0]
    assert brute_force_equivalent(aig, balance(aig))[0]
