"""Tests for the published-data module and shape grading."""

from repro.bench.harness import Table2Row
from repro.bench.paperdata import (
    PAPER_GEOMEAN_VS_ABC,
    PAPER_TABLE2,
    format_shape_agreement,
    paper_family,
    reduction_category,
    shape_agreement,
)


def _row(name, reduced, abc_sec, total):
    return Table2Row(
        name=name, pis=1, pos=1, miter_nodes=1, miter_levels=1,
        abc_seconds=abc_sec, abc_status="equivalent",
        cfm_seconds=1.0, cfm_status="equivalent",
        gpu_seconds=total / 2, reduced_percent=reduced,
        residue_sat_seconds=total / 2, total_seconds=total,
        ours_status="equivalent",
    )


def test_paper_table_complete():
    assert len(PAPER_TABLE2) == 9
    full = [f for f, r in PAPER_TABLE2.items() if r.reduced_percent >= 99.9]
    # "capable of independently proving 4 out of the 9 large circuits"
    assert sorted(full) == ["log2", "multiplier", "sin", "square"]
    assert PAPER_GEOMEAN_VS_ABC == 4.89


def test_reduction_category():
    assert reduction_category(100.0) == "full"
    assert reduction_category(99.95) == "full"
    assert reduction_category(43.5) == "partial"
    assert reduction_category(0.7) == "minor"


def test_paper_family_matching():
    assert paper_family("multiplier_1xd") == "multiplier"
    assert paper_family("multiplier") == "multiplier"
    assert paper_family("ac97_ctrl_2xd") == "ac97_ctrl"
    assert paper_family("unknown_case") is None


def test_shape_agreement_grading():
    rows = [
        _row("multiplier_1xd", 100.0, abc_sec=10.0, total=1.0),
        _row("sqrt_1xd", 5.0, abc_sec=10.0, total=10.5),
        _row("mystery", 50.0, abc_sec=1.0, total=1.0),
    ]
    graded = shape_agreement(rows)
    assert set(graded) == {"multiplier_1xd", "sqrt_1xd"}
    assert graded["multiplier_1xd"]["paper_reduction"] == "full"
    assert graded["multiplier_1xd"]["measured_reduction"] == "full"
    assert graded["multiplier_1xd"]["measured_beats_sat"] == "yes"
    assert graded["sqrt_1xd"]["paper_reduction"] == "minor"
    text = format_shape_agreement(rows)
    assert "multiplier_1xd" in text
