"""Tests for window merging (§III-B3)."""

from repro.aig.traversal import support
from repro.simulation.exhaustive import ExhaustiveSimulator
from repro.simulation.merging import merge_windows, total_simulation_slots
from repro.simulation.window import Pair, build_window

from conftest import random_aig


def _po_windows(aig):
    windows = []
    for i, po in enumerate(aig.pos):
        supp = support(aig, po >> 1)
        roots = [po >> 1] if (po >> 1) not in supp else []
        windows.append(build_window(aig, supp, roots, [Pair(po, 0, tag=i)]))
    return windows


def test_merging_preserves_pairs():
    aig = random_aig(num_pis=6, num_nodes=60, num_pos=8, seed=71)
    windows = _po_windows(aig)
    merged = merge_windows(aig, windows, k_s=6)
    original_tags = sorted(p.tag for w in windows for p in w.pairs)
    merged_tags = sorted(p.tag for w in merged for p in w.pairs)
    assert merged_tags == original_tags


def test_merging_respects_threshold():
    aig = random_aig(num_pis=8, num_nodes=60, num_pos=8, seed=72)
    windows = _po_windows(aig)
    merged = merge_windows(aig, windows, k_s=5)
    for window in merged:
        # Windows already above the threshold pass through; merged ones
        # must respect it.
        if window not in windows:
            assert window.num_inputs <= 5


def test_merging_reduces_total_slots():
    """Overlapping PO cones share simulation work after merging."""
    aig = random_aig(num_pis=6, num_nodes=80, num_pos=10, seed=73)
    windows = _po_windows(aig)
    merged = merge_windows(aig, windows, k_s=6)
    assert total_simulation_slots(merged) <= total_simulation_slots(windows)
    assert len(merged) <= len(windows)


def test_merged_windows_give_same_verdicts():
    aig = random_aig(num_pis=7, num_nodes=70, num_pos=8, seed=74)
    windows = _po_windows(aig)
    merged = merge_windows(aig, windows, k_s=7)
    sim = ExhaustiveSimulator()
    plain = {o.pair.tag: o.status for o in sim.run(aig, windows)}
    combined = {o.pair.tag: o.status for o in sim.run(aig, merged)}
    assert plain == combined


def test_merging_empty():
    aig = random_aig(seed=75)
    assert merge_windows(aig, [], 8) == []


def test_single_window_passthrough():
    aig = random_aig(num_pis=4, num_nodes=20, num_pos=1, seed=76)
    windows = _po_windows(aig)
    merged = merge_windows(aig, windows, k_s=4)
    assert len(merged) == 1
    assert merged[0].inputs == windows[0].inputs
