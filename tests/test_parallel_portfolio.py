"""Tests for the multiprocessing portfolio checker."""

import multiprocessing as mp
import pickle

import pytest

from repro.aig.network import negate_outputs
from repro.bench.generators import multiplier, voter
from repro.portfolio.parallel import (
    ParallelPortfolioChecker,
    PortfolioError,
    build_checker,
    resolve_start_method,
)
from repro.sweep.engine import CecStatus
from repro.sweep.report import PortfolioReport
from repro.synth.resyn import compress2

from conftest import random_aig


def test_aig_pickling_round_trip():
    aig = random_aig(num_pis=5, num_nodes=40, num_pos=3, seed=151)
    clone = pickle.loads(pickle.dumps(aig))
    assert clone.num_ands == aig.num_ands
    pattern = [1, 0, 1, 0, 1]
    assert clone.evaluate(pattern) == aig.evaluate(pattern)


@pytest.mark.parametrize(
    "kind", ["sim", "combined", "sat", "bdd", "bddsweep", "sleep", "crash"]
)
def test_build_checker_specs(kind):
    checker = build_checker((kind, {}))
    assert hasattr(checker, "check_miter")


def test_build_checker_ignores_budget_element():
    checker = build_checker(("sat", {"conflict_limit": 10}, 5.0))
    assert checker.conflict_limit == 10


def test_build_checker_rejects_unknown():
    with pytest.raises(ValueError):
        build_checker(("quantum", {}))


def test_parallel_equivalent():
    original = voter(15)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(time_limit=120.0)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert checker.winner is not None


def test_parallel_nonequivalent_with_cex():
    original = multiplier(4)
    buggy = negate_outputs(compress2(original), [2])
    checker = ParallelPortfolioChecker(time_limit=120.0)
    result = checker.check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    assert original.evaluate(result.cex) != buggy.evaluate(result.cex)


def test_parallel_time_limit_returns_undecided():
    original = multiplier(5)
    optimized = compress2(original)
    # Engines that cannot finish: SAT with a hopeless conflict budget
    # under a zero overall time limit.
    checker = ParallelPortfolioChecker(
        engines=[("sat", {"time_limit": 0.0})], time_limit=0.5
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED


def test_parallel_crashing_engine_does_not_poison_run():
    """A mis-configured engine errors out; the others still answer."""
    original = voter(15)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[
            ("bdd", {"node_limit": -1}),  # invalid: crashes in the child
            ("combined", {}),
        ],
        time_limit=120.0,
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT


def test_requires_engines():
    with pytest.raises(ValueError):
        ParallelPortfolioChecker(engines=[])


def test_crash_recorded_on_report():
    """A worker that raises becomes a structured EngineFailure."""
    original = voter(15)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[("crash", {"message": "boom"}), ("combined", {})],
        time_limit=120.0,
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    report = result.report
    assert isinstance(report, PortfolioReport)
    assert report.winner == "combined"
    crashed = report.record("crash")
    assert crashed.status == "failed"
    assert crashed.failure is not None
    assert "boom" in crashed.failure.message
    assert "RuntimeError" in crashed.failure.traceback


def test_all_engines_fail_raises_descriptive_error():
    original = voter(9)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[
            ("crash", {"message": "first"}),
            ("crash", {"message": "second"}),
        ],
        time_limit=60.0,
    )
    with pytest.raises(PortfolioError) as excinfo:
        checker.check(original, optimized)
    error = excinfo.value
    assert len(error.failures) == 2
    assert "first" in str(error) and "second" in str(error)
    assert all(rec.status == "failed" for rec in error.report.engines)


def test_per_engine_budget_stops_hung_worker():
    """A hung engine is terminated on its own budget; the run goes on."""
    original = voter(15)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[("sleep", {}, 0.5), ("sat", {"time_limit": 0.0})],
        time_limit=60.0,
        finisher=None,
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED
    report = result.report
    assert report.record("sleep").status == "timeout"
    assert report.record("sleep").seconds < 30.0
    assert report.record("sat").status == "undecided"


def test_global_timeout_returns_best_residue():
    """On timeout the smallest residue collected so far comes back."""
    original = multiplier(5)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[("sat", {"time_limit": 0.0}), ("sleep", {})],
        time_limit=1.0,
        finisher=None,
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED
    assert result.reduced_miter is not None
    report = result.report
    sat_record = report.record("sat")
    assert sat_record.status == "undecided"
    assert sat_record.residue_ands == result.reduced_miter.num_ands
    assert report.record("sleep").status == "timeout"


def test_timeout_finisher_proves_residue():
    """The finisher re-checks the best residue after a global timeout."""
    original = voter(13)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[("sat", {"time_limit": 0.0}), ("sleep", {})],
        time_limit=1.0,
        finisher=("sat", {"time_limit": 60.0}),
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert checker.winner == "finisher:sat"
    assert result.report.finisher.status == "equivalent"


def test_start_method_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_MP_START_METHOD", raising=False)
    assert resolve_start_method("spawn") == "spawn"
    assert resolve_start_method() in mp.get_all_start_methods()
    monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
    assert resolve_start_method() == "spawn"
    with pytest.raises(ValueError):
        resolve_start_method("not-a-method")


def test_explicit_spawn_run():
    """The orchestrator works under the spawn start method."""
    original = voter(11)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[("combined", {})],
        time_limit=120.0,
        start_method="spawn",
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert result.report.start_method == "spawn"
