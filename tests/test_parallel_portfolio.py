"""Tests for the multiprocessing portfolio checker."""

import pickle

import pytest

from repro.aig.network import negate_outputs
from repro.bench.generators import multiplier, voter
from repro.portfolio.parallel import (
    ParallelPortfolioChecker,
    build_checker,
)
from repro.sweep.engine import CecStatus
from repro.synth.resyn import compress2

from conftest import random_aig


def test_aig_pickling_round_trip():
    aig = random_aig(num_pis=5, num_nodes=40, num_pos=3, seed=151)
    clone = pickle.loads(pickle.dumps(aig))
    assert clone.num_ands == aig.num_ands
    pattern = [1, 0, 1, 0, 1]
    assert clone.evaluate(pattern) == aig.evaluate(pattern)


@pytest.mark.parametrize(
    "kind", ["sim", "combined", "sat", "bdd", "bddsweep"]
)
def test_build_checker_specs(kind):
    checker = build_checker((kind, {}))
    assert hasattr(checker, "check_miter")


def test_build_checker_rejects_unknown():
    with pytest.raises(ValueError):
        build_checker(("quantum", {}))


def test_parallel_equivalent():
    original = voter(15)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(time_limit=120.0)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert checker.winner is not None


def test_parallel_nonequivalent_with_cex():
    original = multiplier(4)
    buggy = negate_outputs(compress2(original), [2])
    checker = ParallelPortfolioChecker(time_limit=120.0)
    result = checker.check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    assert original.evaluate(result.cex) != buggy.evaluate(result.cex)


def test_parallel_time_limit_returns_undecided():
    original = multiplier(5)
    optimized = compress2(original)
    # Engines that cannot finish: SAT with a hopeless conflict budget
    # under a zero overall time limit.
    checker = ParallelPortfolioChecker(
        engines=[("sat", {"time_limit": 0.0})], time_limit=0.5
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED


def test_parallel_crashing_engine_does_not_poison_run():
    """A mis-configured engine errors out; the others still answer."""
    original = voter(15)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[
            ("bdd", {"node_limit": -1}),  # invalid: crashes in the child
            ("combined", {}),
        ],
        time_limit=120.0,
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT


def test_requires_engines():
    with pytest.raises(ValueError):
        ParallelPortfolioChecker(engines=[])
