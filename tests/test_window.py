"""Tests for simulation windows."""

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.traversal import support
from repro.simulation.window import (
    Pair,
    Window,
    build_window,
    window_local_levels,
)

from conftest import random_aig


def test_window_is_cone_intersection():
    aig = random_aig(num_pis=5, num_nodes=40, seed=51)
    root = aig.pos[0] >> 1
    supp = support(aig, root)
    window = build_window(aig, supp, [root])
    # Every window node lies strictly between the inputs and the root.
    assert root in set(int(n) for n in window.nodes)
    for node in window.nodes:
        assert aig.is_and(int(node))
        assert int(node) not in window.inputs


def test_window_inputs_sorted():
    aig = random_aig(num_pis=5, num_nodes=30, seed=52)
    root = aig.pos[0] >> 1
    supp = support(aig, root)
    window = build_window(aig, list(reversed(supp)), [root])
    assert window.inputs == tuple(sorted(supp))


def test_window_rejects_uncovered_paths():
    b = AigBuilder(3)
    f = b.add_and(b.add_and(2, 4), 6)
    b.add_po(f)
    aig = b.build()
    with pytest.raises(ValueError, match="do not cover"):
        build_window(aig, [1, 2], [f >> 1])  # PI 3 escapes


def test_window_with_cut_inputs():
    b = AigBuilder(4)
    left = b.add_and(2, 4)
    right = b.add_or(6, 8)
    top = b.add_xor(left, right)
    aig = b.build()
    window = build_window(aig, [left >> 1, right >> 1], [top >> 1])
    # Only the XOR expansion nodes are inside; left/right are inputs.
    assert left >> 1 not in set(int(n) for n in window.nodes)
    assert right >> 1 not in set(int(n) for n in window.nodes)
    assert top >> 1 in set(int(n) for n in window.nodes)


def test_window_root_can_be_input():
    aig = random_aig(num_pis=3, num_nodes=10, seed=53)
    window = build_window(aig, [1, 2], [1], [Pair(2, 4)])
    assert len(window.nodes) == 0
    assert window.tt_words == 1


def test_tt_words():
    aig = random_aig(num_pis=8, num_nodes=40, seed=54)
    root = aig.pos[0] >> 1
    supp = support(aig, root)
    window = build_window(aig, supp, [root])
    expected = 1 if len(supp) <= 6 else 1 << (len(supp) - 6)
    assert window.tt_words == expected


def test_window_local_levels():
    b = AigBuilder(2)
    n1 = b.add_and(2, 4)
    n2 = b.add_and(n1, 2 ^ 1)
    n3 = b.add_and(n2, n1)
    b.add_po(n3)
    aig = b.build()
    window = build_window(aig, [1, 2], [n3 >> 1])
    levels = window_local_levels(aig, window)
    by_node = dict(zip((int(n) for n in window.nodes), levels))
    assert by_node[n1 >> 1] == 1
    assert by_node[n2 >> 1] == 2
    assert by_node[n3 >> 1] == 3


def test_window_local_levels_pin_inputs_to_zero():
    """Cut inputs are level 0 even when deep in the global network."""
    b = AigBuilder(2)
    chain = b.add_and(2, 4)
    for _ in range(5):
        chain = b.add_and(chain, 2)
    top = b.add_and(chain, 4 ^ 1)
    b.add_po(top)
    aig = b.build()
    window = build_window(aig, [chain >> 1, 2], [top >> 1])
    levels = window_local_levels(aig, window)
    assert list(levels) == [1]  # only the root, directly above the cut
