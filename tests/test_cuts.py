"""Tests for cut enumeration, selection criteria and enumeration levels."""

import itertools

import numpy as np
import pytest

from repro.aig.builder import AigBuilder
from repro.aig.traversal import support
from repro.cuts.cut import cut_metrics, merge_cuts
from repro.cuts.enumeration import CutEnumerator, enumeration_levels
from repro.cuts.selection import PASS_CRITERIA, CutSelector, similarity

from conftest import random_aig


def _is_cut(aig, node, cut):
    """A cut blocks every PI path: removing it empties the support."""
    cut_set = set(cut)
    if node in cut_set:
        return True
    seen = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current in seen or current in cut_set:
            continue
        seen.add(current)
        if aig.is_pi(current):
            return False  # a PI path escaped the cut
        if aig.is_and(current):
            f0, f1 = aig.fanins(current)
            stack.append(f0 >> 1)
            stack.append(f1 >> 1)
    return True


def _selector(aig, pass_id=1, use_similarity=True):
    return CutSelector(
        pass_id, aig.fanout_counts(), aig.levels(), use_similarity
    )


def test_all_enumerated_cuts_are_valid():
    aig = random_aig(num_pis=6, num_nodes=60, seed=81)
    enum = CutEnumerator(aig, k_l=4, num_priority=6, selector=_selector(aig))
    for _level, nodes in enum.run({}):
        for node in nodes:
            for cut in enum.priority_cuts(node):
                assert len(cut) <= 4
                assert _is_cut(aig, node, cut), (node, cut)


def test_enumeration_covers_all_and_nodes():
    aig = random_aig(num_pis=5, num_nodes=40, seed=82)
    enum = CutEnumerator(aig, k_l=4, num_priority=4, selector=_selector(aig))
    visited = [n for _l, nodes in enum.run({}) for n in nodes]
    assert sorted(visited) == list(aig.ands())


def test_priority_cut_count_bounded():
    aig = random_aig(num_pis=6, num_nodes=60, seed=83)
    enum = CutEnumerator(aig, k_l=4, num_priority=3, selector=_selector(aig))
    for _level, nodes in enum.run({}):
        for node in nodes:
            assert len(enum.priority_cuts(node)) <= 3


def test_enumeration_levels_without_classes_match_topology():
    aig = random_aig(num_pis=5, num_nodes=30, seed=84)
    levels = enumeration_levels(aig, {})
    assert np.array_equal(levels, aig.levels())


def test_enumeration_levels_respect_representatives():
    """Eq. 2: a non-representative enumerates after its representative."""
    b = AigBuilder(4)
    r = b.add_and(2, 4)          # shallow representative
    deep = b.add_and(b.add_and(6, 8), 6)
    member = b.add_and(deep, 8)  # conjecture: member ~ r (fictional)
    b.add_po(member)
    b.add_po(r)
    aig = b.build()
    repr_of = {member >> 1: r >> 1, r >> 1: r >> 1}
    levels = enumeration_levels(aig, repr_of)
    assert levels[member >> 1] > levels[r >> 1]


def test_pass_criteria_table():
    """Table I exactly as printed in the paper."""
    assert PASS_CRITERIA[1] == ("fanout", "size", "small_level")
    assert PASS_CRITERIA[2] == ("small_level", "size", "fanout")
    assert PASS_CRITERIA[3] == ("large_level", "size", "fanout")


def test_selector_rejects_unknown_pass():
    aig = random_aig(seed=85)
    with pytest.raises(ValueError):
        CutSelector(4, aig.fanout_counts(), aig.levels())


def test_cut_metrics():
    aig = random_aig(num_pis=4, num_nodes=20, seed=86)
    fanouts = aig.fanout_counts()
    levels = aig.levels()
    cut = (1, 2)
    avg_fanout, size, avg_level = cut_metrics(cut, fanouts, levels)
    assert size == 2
    assert avg_fanout == (fanouts[1] + fanouts[2]) / 2
    assert avg_level == 0.0  # PIs are level 0
    assert cut_metrics((), fanouts, levels) == (0.0, 0, 0.0)


def test_pass1_prefers_high_fanout_then_small_cuts():
    fanouts = np.array([0, 10, 10, 1, 1])
    levels = np.zeros(5, dtype=np.int64)
    selector = CutSelector(1, fanouts, levels)
    high_fanout = (1, 2)
    low_fanout = (3, 4)
    small = (1,)
    picked = selector.select([low_fanout, high_fanout], 1)
    assert picked == [high_fanout]
    picked = selector.select([high_fanout, small], 1)
    assert picked == [small]  # same avg fanout, smaller size wins


def test_pass2_vs_pass3_level_preference():
    fanouts = np.ones(6)
    levels = np.array([0, 0, 0, 5, 5, 5])
    shallow = (1, 2)
    deep = (3, 4)
    pick2 = CutSelector(2, fanouts, levels).select([shallow, deep], 1)
    pick3 = CutSelector(3, fanouts, levels).select([shallow, deep], 1)
    assert pick2 == [shallow]
    assert pick3 == [deep]


def test_similarity_metric():
    assert similarity((1, 2), [(1, 2)]) == 1.0
    assert similarity((1, 2), [(3, 4)]) == 0.0
    assert similarity((1, 2), [(1, 3)]) == pytest.approx(1 / 3)
    assert similarity((1, 2), [(1, 2), (1, 3)]) == pytest.approx(1 + 1 / 3)
    assert similarity((), []) == 0.0


def test_similarity_drives_selection_for_members():
    fanouts = np.ones(8)
    levels = np.zeros(8, dtype=np.int64)
    selector = CutSelector(1, fanouts, levels)
    reference = [(1, 2, 3)]
    similar = (1, 2, 4)
    disjoint = (5, 6, 7)
    picked = selector.select([disjoint, similar], 1, reference_cuts=reference)
    assert picked == [similar]
    # With similarity disabled the pass criteria tie; smaller tuples win
    # deterministically via the stable sort on equal keys.
    off = CutSelector(1, fanouts, levels, use_similarity=False)
    picked_off = off.select([disjoint, similar], 2, reference_cuts=reference)
    assert set(picked_off) == {disjoint, similar}


def test_merge_cuts():
    assert merge_cuts((1, 3), (2, 3)) == (1, 2, 3)
    assert merge_cuts((1,), (1,)) == (1,)


def test_enumerator_validates_parameters():
    aig = random_aig(seed=87)
    with pytest.raises(ValueError):
        CutEnumerator(aig, k_l=1, num_priority=4, selector=_selector(aig))
    with pytest.raises(ValueError):
        CutEnumerator(aig, k_l=4, num_priority=0, selector=_selector(aig))
