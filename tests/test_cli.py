"""Tests for the command-line interface."""

import pytest

from repro.aig.aiger import read_aiger, write_aiger
from repro.aig.network import negate_outputs
from repro.bench import generators as gen
from repro.cli import main
from repro.synth.resyn import compress2


@pytest.fixture
def circuit_files(tmp_path):
    original = gen.multiplier(4)
    optimized = compress2(original)
    a = tmp_path / "a.aig"
    b = tmp_path / "b.aig"
    write_aiger(original, a)
    write_aiger(optimized, b)
    return a, b, tmp_path


def test_cec_equivalent(circuit_files, capsys):
    a, b, _ = circuit_files
    assert main(["cec", str(a), str(b)]) == 0
    assert "equivalent" in capsys.readouterr().out


@pytest.mark.parametrize(
    "engine", ["sim", "sat", "bdd", "portfolio", "parallel"]
)
def test_cec_engines(circuit_files, engine):
    a, b, _ = circuit_files
    code = main(["cec", str(a), str(b), "--engine", engine])
    assert code in (0, 2)  # equivalent, or undecided for budgeted engines


def test_cec_nonequivalent(circuit_files, capsys, tmp_path):
    a, b, _ = circuit_files
    buggy = negate_outputs(read_aiger(b), [1])
    c = tmp_path / "c.aig"
    write_aiger(buggy, c)
    assert main(["cec", str(a), str(c)]) == 1
    out = capsys.readouterr().out
    assert "nonequivalent" in out
    assert "cex:" in out


def test_stats(circuit_files, capsys):
    a, _, _ = circuit_files
    assert main(["stats", str(a)]) == 0
    out = capsys.readouterr().out
    assert "pis:    8" in out
    assert "ands:" in out


def test_opt_round_trip(circuit_files, capsys):
    a, _, tmp = circuit_files
    out_path = tmp / "opt.aig"
    assert main(["opt", str(a), str(out_path), "--script", "balance"]) == 0
    optimized = read_aiger(out_path)
    original = read_aiger(a)
    assert optimized.num_pis == original.num_pis
    pattern = [1, 0, 1, 1, 0, 0, 1, 0]
    assert optimized.evaluate(pattern) == original.evaluate(pattern)


def test_gen_and_miter(tmp_path, capsys):
    out = tmp_path / "v.aig"
    assert main(["gen", "voter", "7", str(out)]) == 0
    voter = read_aiger(out)
    assert voter.num_pis == 7
    miter_path = tmp_path / "m.aig"
    assert main(["miter", str(out), str(out), str(miter_path)]) == 0
    miter = read_aiger(miter_path)
    assert miter.num_pos == 1
    # Self-miter strashes to constant zero.
    assert miter.pos == [0]


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_cec_verbose_prints_phases(circuit_files, capsys):
    a, b, _ = circuit_files
    assert main(["cec", str(a), str(b), "--engine", "sim", "--verbose"]) in (
        0,
        2,
    )
    captured = capsys.readouterr()
    # Diagnostics go to stderr; the payload on stdout stays clean.
    assert "phase P" in captured.err
    assert "phase P" not in captured.out


def test_cec_parallel_verbose_prints_portfolio_report(
    circuit_files, capsys
):
    a, b, _ = circuit_files
    assert (
        main(["cec", str(a), str(b), "--engine", "parallel", "--verbose"])
        == 0
    )
    captured = capsys.readouterr()
    assert "portfolio: start_method=" in captured.err
    assert "engine " in captured.err
    assert "portfolio:" not in captured.out


def test_cec_stdout_payload_only(circuit_files, capsys):
    """``cec … > out.txt`` captures exactly the machine-readable lines."""
    a, b, _ = circuit_files
    assert main(["cec", str(a), str(b), "--verbose"]) == 0
    captured = capsys.readouterr()
    for line in captured.out.strip().splitlines():
        assert line.split(":", 1)[0] in (
            "verdict", "cex", "residue", "time", "cache", "metrics"
        ), line


def test_cec_trace_writes_chrome_trace(circuit_files, capsys, tmp_path):
    import json

    a, b, _ = circuit_files
    trace_path = tmp_path / "trace.json"
    assert (
        main(["cec", str(a), str(b), "--engine", "sim",
              "--trace", str(trace_path)])
        in (0, 2)
    )
    payload = json.loads(trace_path.read_text())
    events = payload["traceEvents"]
    assert any(e["name"] == "cec" and e["ph"] == "X" for e in events)
    assert any(e["name"].startswith("phase.") for e in events)
    # The ambient tracer is restored after the run.
    from repro.obs import NULL_TRACER, get_tracer

    assert get_tracer() is NULL_TRACER


def test_cec_metrics_prints_counters(circuit_files, capsys):
    a, b, _ = circuit_files
    assert main(["cec", str(a), str(b), "--engine", "sim", "--metrics"]) in (
        0,
        2,
    )
    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "counter" in out or "histogram" in out


def test_cec_log_level_silences_diagnostics(circuit_files, capsys):
    a, b, _ = circuit_files
    assert (
        main(["cec", str(a), str(b), "--engine", "sim", "--verbose",
              "--log-level", "error"])
        in (0, 2)
    )
    captured = capsys.readouterr()
    assert "phase P" not in captured.err


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "cec" in proc.stdout


def test_cec_cache_cold_then_warm(circuit_files, capsys, tmp_path):
    a, b, _ = circuit_files
    # The 4-bit multiplier miter is fully fingerprint-decidable, so use a
    # wider pair whose proofs actually reach the store.
    wide_a = tmp_path / "wa.aig"
    wide_b = tmp_path / "wb.aig"
    write_aiger(gen.adder(8), wide_a)
    write_aiger(gen.kogge_stone_adder(8), wide_b)
    cache_dir = tmp_path / "cache"
    assert main(["cec", str(wide_a), str(wide_b), "--cache", str(cache_dir)]) == 0
    cold = capsys.readouterr().out
    assert "cache: hits=0" in cold
    assert "stores=" in cold
    assert main(["cec", str(wide_a), str(wide_b), "--cache", str(cache_dir)]) == 0
    warm = capsys.readouterr().out
    assert "equivalent" in warm
    assert "hits=0" not in warm  # warm run must hit the store
    assert "cache: hits=" in warm


def test_cec_cache_with_parallel_engine(circuit_files, tmp_path):
    a, b, _ = circuit_files
    cache_dir = tmp_path / "cache"
    code = main(
        ["cec", str(a), str(b), "--engine", "parallel", "--cache", str(cache_dir)]
    )
    assert code in (0, 2)
