"""Tests for the benchmark suite and the experiment harness."""

import math

import pytest

from repro.bench.harness import (
    format_fig6,
    format_fig7,
    format_table2,
    geomean,
    run_fig6,
    run_fig7,
    run_table2_case,
)
from repro.bench.suite import SUITE_PROFILES, build_case, default_suite
from repro.bench import generators as gen
from repro.sweep.config import EngineConfig
from repro.synth.resyn import compress2

from conftest import sampled_equivalent


@pytest.fixture(scope="module")
def tiny_cases():
    return default_suite("tiny", only=["multiplier", "log2", "voter"])


def test_build_case_names_and_interfaces():
    case = build_case(
        "multiplier", lambda: gen.multiplier(3), doublings=2,
        optimizer=compress2,
    )
    assert case.name == "multiplier_2xd"
    assert case.original.num_pis == 4 * 6
    assert case.miter.num_pis == case.original.num_pis
    stats = case.stats()
    assert stats["miter_nodes"] > 0
    assert stats["miter_levels"] > 0


def test_cases_are_equivalent_pairs(tiny_cases):
    for case in tiny_cases:
        ok, pattern = sampled_equivalent(
            case.original, case.optimized, samples=100
        )
        assert ok, (case.name, pattern)


def test_default_suite_profiles_exist():
    assert set(SUITE_PROFILES) == {"tiny", "default"}
    assert len(SUITE_PROFILES["default"]) == 9  # the nine Table II cases


def test_default_suite_unknown_profile():
    with pytest.raises(ValueError):
        default_suite("huge")


def test_run_table2_case(tiny_cases):
    config = EngineConfig.fast()
    row = run_table2_case(
        tiny_cases[0], config=config, sat_conflict_limit=10_000
    )
    assert row.name == tiny_cases[0].name
    assert row.abc_seconds > 0
    assert row.total_seconds > 0
    assert 0 <= row.reduced_percent <= 100
    assert row.ours_status in ("equivalent", "undecided")
    assert row.speedup_vs_abc > 0
    table = format_table2([row])
    assert row.name in table
    assert "Geomean" in table


def test_run_fig6(tiny_cases):
    rows = run_fig6(tiny_cases, config=EngineConfig.fast())
    assert len(rows) == len(tiny_cases)
    for row in rows:
        total = sum(row.fractions.values())
        assert total == pytest.approx(1.0) or total == 0.0
    text = format_fig6(rows)
    assert rows[0].name in text


def test_run_fig7(tiny_cases):
    rows = run_fig7(
        tiny_cases[:1], config=EngineConfig.fast(), sat_conflict_limit=5_000
    )
    row = rows[0]
    assert set(row.normalized) == {"P", "PG", "PGL"}
    # More engine phases can only shrink the residue.
    assert row.reduced_ands["P"] >= row.reduced_ands["PG"] >= row.reduced_ands["PGL"]
    text = format_fig7(rows)
    assert row.name in text


def test_save_load_case(tmp_path):
    from repro.bench.suite import load_case, save_case

    case = build_case(
        "log2", lambda: gen.log2(6), doublings=0, optimizer=compress2
    )
    save_case(case, tmp_path)
    loaded = load_case(tmp_path, case.name)
    assert loaded.original.num_ands == case.original.num_ands
    assert loaded.optimized.num_ands == case.optimized.num_ands
    assert sampled_equivalent(loaded.original, loaded.optimized, samples=50)[0]


def test_geomean():
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([0, 8, 2]) == pytest.approx(4.0)  # non-positive ignored
    assert geomean([math.e]) == pytest.approx(math.e)
