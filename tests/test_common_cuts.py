"""Tests for common-cut generation and the bounded buffer."""

import pytest

from repro.cuts.common import CommonCutBuffer, common_cuts
from repro.simulation.window import Window

import numpy as np


def _window(tag):
    return Window(inputs=(1, 2), nodes=np.array([], dtype=np.int64), pairs=[])


def test_common_cuts_unions():
    result = common_cuts([(1, 2)], [(2, 3)], k_l=4)
    assert (1, 2, 3) in result
    result = common_cuts([(1, 2)], [(3, 4)], k_l=3)
    assert result == []  # union has size 4 > 3


def test_common_cuts_dedupe_and_order():
    result = common_cuts([(1, 2), (1, 3)], [(1, 2), (2, 3)], k_l=4)
    assert len(result) == len(set(result))
    sizes = [len(c) for c in result]
    assert sizes == sorted(sizes)  # smallest-first


def test_common_cuts_constant_representative():
    """Empty priority set (constant node) passes the member's cuts through."""
    member_cuts = [(1, 2), (3, 4, 5)]
    assert common_cuts([], member_cuts, k_l=8) == sorted(
        member_cuts, key=lambda c: (len(c), c)
    )
    assert common_cuts(member_cuts, [], k_l=2) == [(1, 2)]


def test_common_cuts_truncation():
    cuts_a = [(i,) for i in range(1, 6)]
    cuts_b = [(i,) for i in range(6, 11)]
    all_cuts = common_cuts(cuts_a, cuts_b, k_l=2)
    limited = common_cuts(cuts_a, cuts_b, k_l=2, max_cuts=3)
    assert len(all_cuts) == 25
    assert limited == all_cuts[:3]


def test_buffer_flushes_when_full():
    flushed = []
    buffer = CommonCutBuffer(4, flushed.append)
    buffer.insert([_window(i) for i in range(3)])
    assert len(flushed) == 0
    buffer.insert([_window(i) for i in range(3)])
    # First batch flushed to make room, then the new batch may also fill it.
    assert len(flushed) >= 1
    buffer.drain()
    total = sum(len(batch) for batch in flushed)
    assert total == 6


def test_buffer_oversized_batch_goes_through():
    flushed = []
    buffer = CommonCutBuffer(2, flushed.append)
    buffer.insert([_window(i) for i in range(5)])
    buffer.drain()
    assert sum(len(batch) for batch in flushed) == 5


def test_buffer_drain_empty_is_noop():
    flushed = []
    buffer = CommonCutBuffer(2, flushed.append)
    buffer.drain()
    assert flushed == []
    assert buffer.flushes == 0


def test_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        CommonCutBuffer(0, lambda batch: None)
