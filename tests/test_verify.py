"""Tests for the structural invariant checker, applied across transforms."""

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.aig.transform import cleanup, double, rebuild_with_replacements
from repro.aig.verify import InvariantViolation, check_invariants, iter_violations
from repro.bench.generators import multiplier, sqrt
from repro.synth.balance import balance
from repro.synth.fraig import fraig_sim
from repro.synth.resyn import compress2
from repro.synth.rewrite import cut_rewrite

from conftest import random_aig


def test_builder_output_satisfies_invariants():
    aig = random_aig(num_pis=6, num_nodes=60, seed=141)
    check_invariants(aig)


def test_duplicate_pair_detected():
    # Hand-build a network that bypasses strashing.
    aig = Aig(2, fanin0=[2, 2], fanin1=[4, 4], pos=[6, 8])
    violations = iter_violations(aig)
    assert any("duplicate" in v for v in violations)
    with pytest.raises(InvariantViolation):
        check_invariants(aig)
    # Tolerated when strashing is not claimed.
    check_invariants(aig, strashed=False)


def test_constant_fanin_detected():
    aig = Aig(1, fanin0=[0], fanin1=[2], pos=[4])
    assert any("constant" in v for v in iter_violations(aig))


@pytest.mark.parametrize(
    "transform",
    [
        cleanup,
        double,
        balance,
        lambda a: cut_rewrite(a, 4),
        compress2,
        fraig_sim,
    ],
    ids=["cleanup", "double", "balance", "rewrite", "compress2", "fraig_sim"],
)
def test_transforms_preserve_invariants(transform):
    aig = random_aig(num_pis=6, num_nodes=60, num_pos=3, seed=142)
    check_invariants(transform(aig))


def test_miter_and_reduction_preserve_invariants():
    original = multiplier(4)
    optimized = compress2(original)
    miter = build_miter(original, optimized)
    check_invariants(miter)
    b = AigBuilder(2)
    a = b.add_and(2, 4)
    redundant = b.add_and(a, 4)
    b.add_po(b.add_xor(a, redundant))
    aig = b.build()
    reduced, _ = rebuild_with_replacements(aig, {redundant >> 1: a})
    check_invariants(reduced)


def test_generators_satisfy_invariants():
    check_invariants(multiplier(5))
    check_invariants(sqrt(10))
