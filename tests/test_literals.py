"""Tests for the literal encoding helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.aig.literals import (
    CONST0,
    CONST1,
    lit,
    lit_cpl,
    lit_is_const,
    lit_not,
    lit_regular,
    lit_var,
)


def test_constants():
    assert CONST0 == 0
    assert CONST1 == 1
    assert lit_is_const(CONST0)
    assert lit_is_const(CONST1)
    assert not lit_is_const(lit(1))


def test_lit_round_trip():
    assert lit(5) == 10
    assert lit(5, 1) == 11
    assert lit_var(11) == 5
    assert lit_cpl(11) == 1
    assert lit_cpl(10) == 0


def test_lit_not_and_regular():
    assert lit_not(10) == 11
    assert lit_not(11) == 10
    assert lit_regular(11) == 10
    assert lit_regular(10) == 10


@given(st.integers(min_value=0, max_value=10**6), st.integers(0, 1))
def test_encoding_bijection(var, phase):
    literal = lit(var, phase)
    assert lit_var(literal) == var
    assert lit_cpl(literal) == phase
    assert lit_not(lit_not(literal)) == literal
    assert lit_regular(literal) == lit(var, 0)
