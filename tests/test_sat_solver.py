"""Tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.solver import SatSolver, SolveStatus, _luby


def _fresh(num_vars):
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    return solver


def test_luby_sequence():
    assert [_luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_simple_sat_and_model():
    s = _fresh(2)
    s.add_clause([0, 2])       # a | b
    s.add_clause([1, 3])       # !a | !b
    assert s.solve() is SolveStatus.SAT
    model = s.model()
    assert model[0] != model[1]


def test_empty_clause_is_unsat():
    s = _fresh(1)
    assert s.add_clause([]) is False
    assert s.solve() is SolveStatus.UNSAT


def test_contradictory_units():
    s = _fresh(1)
    assert s.add_clause([0]) is True
    assert s.add_clause([1]) is False
    assert s.solve() is SolveStatus.UNSAT


def test_tautology_is_dropped():
    s = _fresh(1)
    assert s.add_clause([0, 1]) is True
    assert s.solve() is SolveStatus.SAT


def test_unknown_variable_rejected():
    s = _fresh(1)
    with pytest.raises(ValueError):
        s.add_clause([4])


def test_assumptions_are_temporary():
    s = _fresh(2)
    s.add_clause([0, 2])
    assert s.solve(assumptions=[1, 3]) is SolveStatus.UNSAT
    assert s.solve() is SolveStatus.SAT
    assert s.solve(assumptions=[1]) is SolveStatus.SAT
    assert s.model()[1] == 1  # b forced true by the clause


def test_assumption_conflicting_with_level0():
    s = _fresh(1)
    s.add_clause([0])  # unit: a
    assert s.solve(assumptions=[1]) is SolveStatus.UNSAT
    assert s.solve(assumptions=[0]) is SolveStatus.SAT


def test_conflict_limit_yields_unknown():
    # Pigeonhole 6→5 needs many conflicts; a budget of 1 cannot finish.
    pigeons, holes = 6, 5
    s = SatSolver()
    grid = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for row in grid:
        s.add_clause([2 * v for v in row])
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                s.add_clause([2 * grid[i][h] + 1, 2 * grid[j][h] + 1])
    assert s.solve(conflict_limit=1) is SolveStatus.UNKNOWN
    # The solver stays usable and eventually proves UNSAT.
    assert s.solve() is SolveStatus.UNSAT


def test_incremental_clause_addition():
    s = _fresh(3)
    s.add_clause([0, 2, 4])
    assert s.solve() is SolveStatus.SAT
    s.add_clause([1])
    s.add_clause([3])
    assert s.solve() is SolveStatus.SAT
    assert s.model()[2] == 1
    s.add_clause([5])
    assert s.solve() is SolveStatus.UNSAT


@pytest.mark.parametrize("pigeons,holes", [(3, 2), (4, 3), (5, 4)])
def test_pigeonhole_unsat(pigeons, holes):
    s = SatSolver()
    grid = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for row in grid:
        s.add_clause([2 * v for v in row])
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                s.add_clause([2 * grid[i][h] + 1, 2 * grid[j][h] + 1])
    assert s.solve() is SolveStatus.UNSAT


def _brute_force(num_vars, clauses, assumptions=()):
    for bits in itertools.product([0, 1], repeat=num_vars):
        if any((bits[a >> 1] ^ (a & 1)) == 0 for a in assumptions):
            continue
        if all(any(bits[l >> 1] ^ (l & 1) for l in cl) for cl in clauses):
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_fuzz_against_brute_force(seed):
    rnd = random.Random(seed)
    num_vars = rnd.randint(2, 7)
    clauses = [
        [
            2 * rnd.randrange(num_vars) + rnd.randint(0, 1)
            for _ in range(rnd.randint(1, 3))
        ]
        for _ in range(rnd.randint(1, 20))
    ]
    assumptions = [
        2 * v + rnd.randint(0, 1)
        for v in rnd.sample(range(num_vars), rnd.randint(0, num_vars))
    ]
    solver = _fresh(num_vars)
    ok = all(solver.add_clause(cl) for cl in clauses)
    if not ok:
        assert not _brute_force(num_vars, clauses)
        return
    status = solver.solve(assumptions=assumptions)
    want = _brute_force(num_vars, clauses, assumptions)
    assert status is (SolveStatus.SAT if want else SolveStatus.UNSAT)
    if status is SolveStatus.SAT:
        model = solver.model()
        assert all(
            any(model[l >> 1] ^ (l & 1) for l in cl) for cl in clauses
        )
        assert all(model[a >> 1] ^ (a & 1) for a in assumptions)


def test_deadline_bounds_single_call():
    import time

    # Pigeonhole 7→6 is hard enough that a microscopic deadline trips.
    pigeons, holes = 7, 6
    s = SatSolver()
    grid = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for row in grid:
        s.add_clause([2 * v for v in row])
    for h in range(holes):
        for i in range(pigeons):
            for j in range(i + 1, pigeons):
                s.add_clause([2 * grid[i][h] + 1, 2 * grid[j][h] + 1])
    start = time.perf_counter()
    status = s.solve(deadline=time.perf_counter() + 0.05)
    elapsed = time.perf_counter() - start
    assert status is SolveStatus.UNKNOWN
    assert elapsed < 2.0  # deadline enforced within one conflict's slack
    # Solver remains usable afterwards.
    assert s.solve() is SolveStatus.UNSAT


def test_add_aig_and_semantics():
    s = _fresh(3)
    out, in0, in1 = 0, 1, 2
    s.add_aig_and(2 * out, 2 * in0, 2 * in1 + 1)  # out = in0 & !in1
    for a, b in itertools.product([0, 1], repeat=2):
        assumptions = [2 * in0 + (1 - a), 2 * in1 + (1 - b)]
        assert s.solve(assumptions=assumptions) is SolveStatus.SAT
        assert s.model()[out] == (a & (1 - b))
