"""A catalogue of realistic design bugs every checker must catch.

Each bug model mirrors a classic RTL/synthesis defect: stuck-at faults,
inverted control polarity, swapped operands, dropped carries, off-by-one
constants.  For each, the buggy design is checked against the reference
by the combined flow; the verdict must be NONEQUIVALENT with a CEX that
actually distinguishes the two — or EQUIVALENT when the fault happens to
be functionally benign (which the test verifies by brute force).
"""

import itertools

import pytest

from repro.aig.builder import AigBuilder
from repro.aig.network import Aig
from repro.bench.generators import adder, multiplier
from repro.portfolio.checker import CombinedChecker
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine

from conftest import brute_force_equivalent


def _rebuild(aig, mutate):
    """Copy ``aig`` through a builder, letting ``mutate`` adjust outputs."""
    b = AigBuilder(aig.num_pis, name=aig.name + "_bug")
    mapping = b.import_cone(aig, {pi: 2 * pi for pi in aig.pis()})
    outs = [mapping[po >> 1] ^ (po & 1) for po in aig.pos]
    outs = mutate(b, outs, [2 * pi for pi in aig.pis()])
    b.add_pos(outs)
    return b.build()


def stuck_at_zero(b, outs, pis):
    outs[2] = 0
    return outs


def stuck_at_one(b, outs, pis):
    outs[0] = 1
    return outs


def inverted_output(b, outs, pis):
    outs[1] ^= 1
    return outs


def swapped_outputs(b, outs, pis):
    outs[0], outs[1] = outs[1], outs[0]
    return outs


def and_instead_of_xor(b, outs, pis):
    # Replace output 3 with the AND of inputs 0 and 1 — a wrong-gate bug.
    outs[3] = b.add_and(pis[0], pis[1])
    return outs


BUGS = [stuck_at_zero, stuck_at_one, inverted_output, swapped_outputs,
        and_instead_of_xor]


@pytest.mark.parametrize("bug", BUGS, ids=lambda f: f.__name__)
def test_adder_bugs_caught(bug):
    reference = adder(4)
    buggy = _rebuild(reference, bug)
    equal, witness = brute_force_equivalent(reference, buggy)
    result = SimSweepEngine(EngineConfig.fast()).check(reference, buggy)
    if equal:
        assert result.status is not CecStatus.NONEQUIVALENT
    else:
        assert result.status is CecStatus.NONEQUIVALENT, bug.__name__
        cex = result.cex
        assert reference.evaluate(cex) != buggy.evaluate(cex)


def test_dropped_carry_bug():
    """An adder whose block boundary drops the carry — classic CSel bug."""
    width = 6
    reference = adder(width)
    b = AigBuilder(2 * width, name="dropped_carry")
    xs = [2 * (i + 1) for i in range(width)]
    ys = [2 * (i + 1 + width) for i in range(width)]
    from repro.bench.wordlib import ripple_add

    low, carry_low = ripple_add(b, xs[:3], ys[:3])
    high, carry_high = ripple_add(b, xs[3:], ys[3:])  # carry_low dropped!
    b.add_pos(low + high + [carry_high])
    buggy = b.build()
    result = SimSweepEngine(EngineConfig.fast()).check(reference, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    cex = result.cex
    assert reference.evaluate(cex) != buggy.evaluate(cex)


def test_swapped_operand_bits():
    """Multiplier with two adjacent x bits swapped: x is effectively
    permuted, so products differ on asymmetric inputs."""
    width = 4
    reference = multiplier(width)
    b = AigBuilder(2 * width, name="swapped_bits")
    leaf_map = {pi: 2 * pi for pi in reference.pis()}
    leaf_map[1], leaf_map[2] = leaf_map[2], leaf_map[1]  # swap x0/x1
    mapping = b.import_cone(reference, leaf_map)
    b.add_pos([mapping[po >> 1] ^ (po & 1) for po in reference.pos])
    buggy = b.build()
    result = CombinedChecker(EngineConfig.fast()).check(reference, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    cex = result.cex
    assert reference.evaluate(cex) != buggy.evaluate(cex)


def test_off_by_one_constant():
    """Comparator threshold off by one (voter majority boundary)."""
    from repro.bench.generators import voter
    from repro.bench.wordlib import greater_than_const, popcount

    n = 9
    reference = voter(n)
    b = AigBuilder(n, name="off_by_one")
    bits = [2 * (i + 1) for i in range(n)]
    count = popcount(b, bits)
    b.add_po(greater_than_const(b, count, n // 2 + 1))  # wrong threshold
    buggy = b.build()
    result = CombinedChecker(EngineConfig.fast()).check(reference, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    cex = result.cex
    # The CEX must sit exactly on the majority boundary.
    assert sum(cex) == n // 2 + 1


def test_benign_redundancy_is_equivalent():
    """Adding redundant logic (x·x) must NOT be flagged."""
    reference = adder(4)

    def add_redundancy(b, outs, pis):
        redundant = b.add_and(pis[0], b.add_and(pis[0], pis[1]))
        noise = b.add_and(redundant, b.lit_not(redundant))  # constant 0
        return [b.add_or(o, noise) if i == 0 else o
                for i, o in enumerate(outs)]

    benign = _rebuild(reference, add_redundancy)
    result = SimSweepEngine(EngineConfig.fast()).check(reference, benign)
    assert result.status is CecStatus.EQUIVALENT
