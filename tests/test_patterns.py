"""Tests for initial-pattern strategies."""

import numpy as np
import pytest

from repro.bench import generators as gen
from repro.sweep.classes import SimulationState, initial_patterns
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.synth.resyn import compress2


def _pattern(words: np.ndarray, index: int):
    word, bit = divmod(index, 64)
    return tuple(
        int((int(words[i, word]) >> bit) & 1) for i in range(words.shape[0])
    )


def test_counting_patterns_enumerate():
    words = initial_patterns(4, 1, seed=0, strategy="counting")
    for p in range(16):
        assert _pattern(words, p) == tuple((p >> i) & 1 for i in range(4))


def test_walking_patterns_are_hamming1():
    words = initial_patterns(5, 1, seed=0, strategy="walking")
    previous = _pattern(words, 0)
    assert previous == (0, 0, 0, 0, 0)
    for p in range(1, 64):
        current = _pattern(words, p)
        distance = sum(a != b for a, b in zip(previous, current))
        assert distance == 1
        previous = current


def test_random_deterministic_per_seed():
    a = initial_patterns(6, 2, seed=5, strategy="random")
    b = initial_patterns(6, 2, seed=5, strategy="random")
    assert np.array_equal(a, b)


def test_mixed_combines_all():
    words = initial_patterns(4, 8, seed=1, strategy="mixed")
    assert words.shape[0] == 4
    assert words.shape[1] >= 6


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        initial_patterns(4, 2, seed=0, strategy="fancy")
    with pytest.raises(ValueError):
        EngineConfig(pattern_strategy="fancy").validate()


@pytest.mark.parametrize("strategy", ["random", "counting", "walking", "mixed"])
def test_engine_sound_under_all_strategies(strategy):
    original = gen.sqrt(8)
    optimized = compress2(original)
    config = EngineConfig.fast()
    config.pattern_strategy = strategy
    result = SimSweepEngine(config).check(original, optimized)
    assert result.status is not CecStatus.NONEQUIVALENT


def test_state_accepts_strategy():
    state = SimulationState(8, num_random_words=2, seed=1, strategy="counting")
    assert state.pi_words.shape == (8, 2)
