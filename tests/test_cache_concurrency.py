"""Concurrent-writer safety of the proof store and portfolio cache."""

import multiprocessing as mp

import pytest

from repro.aig.miter import build_miter
from repro.bench.generators import adder, kogge_stone_adder
from repro.cache.store import EQUIVALENT, ProofStore, Verdict
from repro.portfolio.parallel import ParallelPortfolioChecker
from repro.sweep.engine import CecStatus


def _writer(directory, worker_id, rounds, per_round, barrier):
    """Append several delta batches, racing the other worker."""
    store = ProofStore()
    barrier.wait()  # maximise interleaving
    for r in range(rounds):
        for i in range(per_round):
            store.put(
                f"P:w{worker_id}:r{r}:{i}",
                Verdict(EQUIVALENT, engine=f"w{worker_id}"),
            )
        store.append_pending(directory)


@pytest.mark.parametrize("start_method", ["spawn"])
def test_concurrent_writers_do_not_corrupt_store(tmp_path, start_method):
    """Two processes appending to one cache dir lose nothing."""
    ctx = mp.get_context(start_method)
    barrier = ctx.Barrier(2)
    rounds, per_round = 5, 20
    workers = [
        ctx.Process(
            target=_writer,
            args=(str(tmp_path), w, rounds, per_round, barrier),
        )
        for w in range(2)
    ]
    for proc in workers:
        proc.start()
    for proc in workers:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    store = ProofStore.load(str(tmp_path))
    assert store.load_errors == 0
    assert len(store) == 2 * rounds * per_round
    # Compaction over the merged file keeps every record intact.
    store.compact(str(tmp_path))
    assert len(ProofStore.load(str(tmp_path))) == 2 * rounds * per_round


def test_parallel_portfolio_cold_then_warm(tmp_path):
    """Spawn-mode portfolio workers share one cache dir safely.

    The cold run's worker deltas must merge into the parent store, and a
    warm rerun must resolve previously proved pairs from the cache.
    """
    miter = build_miter(adder(8), kogge_stone_adder(8))
    cache_dir = str(tmp_path / "cache")

    def run():
        checker = ParallelPortfolioChecker(
            engines=[("combined", {}), ("sim", {})],
            time_limit=120.0,
            start_method="spawn",
            cache_dir=cache_dir,
        )
        return checker.check_miter(miter)

    cold = run()
    assert cold.status is CecStatus.EQUIVALENT
    assert cold.report.cache is not None
    assert cold.report.cache.stores > 0
    assert len(ProofStore.load(cache_dir)) > 0

    warm = run()
    assert warm.status is CecStatus.EQUIVALENT
    assert warm.report.cache.hits > 0
