"""Tests for algebraic factoring and expression instantiation."""

import itertools
import random

from repro.aig.builder import AigBuilder
from repro.synth.factor import (
    eval_expr,
    expr_cost,
    expr_to_aig,
    factor_cubes,
)
from repro.synth.isop import eval_cubes, isop, tt_mask


def test_constants():
    assert factor_cubes([]) == ("const", 0)
    assert factor_cubes([()]) == ("const", 1)


def test_single_cube_is_and_tree():
    expr = factor_cubes([((0, 0), (1, 1), (2, 0))])
    assert expr_cost(expr) == 2
    for bits in itertools.product([0, 1], repeat=3):
        want = bits[0] & (1 - bits[1]) & bits[2]
        assert eval_expr(expr, bits) == want


def test_factoring_preserves_function():
    rnd = random.Random(23)
    for _ in range(60):
        k = rnd.randint(2, 5)
        table = rnd.getrandbits(1 << k) & tt_mask(k)
        cubes = isop(table, k)
        expr = factor_cubes(cubes)
        for i, bits in enumerate(itertools.product([0, 1], repeat=k)):
            # Variable 0 is the least significant selector.
            idx = sum(b << j for j, b in enumerate(bits))
            assert eval_expr(expr, list(bits)) == ((table >> idx) & 1)


def test_factoring_shares_common_literal():
    # a·b + a·c factors as a·(b + c): 2 ANDs instead of 3.
    cubes = [((0, 0), (1, 0)), ((0, 0), (2, 0))]
    expr = factor_cubes(cubes)
    assert expr_cost(expr) == 2


def test_expr_to_aig_matches_eval():
    rnd = random.Random(29)
    for _ in range(30):
        k = rnd.randint(2, 4)
        table = rnd.getrandbits(1 << k) & tt_mask(k)
        expr = factor_cubes(isop(table, k))
        builder = AigBuilder(k)
        leaves = [2 * (i + 1) for i in range(k)]
        builder.add_po(expr_to_aig(expr, builder, leaves))
        aig = builder.build()
        for bits in itertools.product([0, 1], repeat=k):
            assert aig.evaluate(list(bits)) == [eval_expr(expr, list(bits))]


def test_expr_cost_counts_ands():
    assert expr_cost(("const", 1)) == 0
    assert expr_cost(("lit", 0, 0)) == 0
    expr = ("or", ("and", ("lit", 0, 0), ("lit", 1, 0)), ("lit", 2, 1))
    assert expr_cost(expr) == 2
