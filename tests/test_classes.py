"""Tests for equivalence classes and the simulation state."""

import numpy as np
import pytest

from repro.aig.builder import AigBuilder
from repro.sweep.classes import EquivalenceClasses, SimulationState

from conftest import random_aig


def test_classes_cluster_equal_signatures():
    tables = np.array(
        [
            [0, 0],           # node 0 (constant)
            [5, 9],           # node 1
            [5, 9],           # node 2: same as 1
            [~5 & (2**64 - 1), ~9 & (2**64 - 1)],  # node 3: complement of 1
            [7, 7],           # node 4: singleton
        ],
        dtype=np.uint64,
    )
    classes = EquivalenceClasses.from_tables(tables)
    assert len(classes) == 1
    eq_class = next(iter(classes))
    assert eq_class.members == (1, 2, 3)
    assert eq_class.representative == 1
    pairs = list(eq_class.candidate_pairs())
    assert (1, 2, 0) in pairs
    assert (1, 3, 1) in pairs  # complemented member


def test_constant_class_contains_node_zero():
    tables = np.zeros((3, 2), dtype=np.uint64)
    tables[2] = np.uint64(2**64 - 1)  # constant one
    classes = EquivalenceClasses.from_tables(tables)
    eq_class = next(iter(classes))
    assert eq_class.representative == 0
    assert eq_class.members == (0, 1, 2)
    assert eq_class.phases == (0, 0, 1)


def test_repr_queries():
    tables = np.array([[0], [3], [3], [5]], dtype=np.uint64)
    classes = EquivalenceClasses.from_tables(tables)
    assert classes.representative_of(2) == 1
    assert classes.representative_of(3) is None
    assert classes.is_representative(1)
    assert not classes.is_representative(2)
    assert classes.num_candidate_pairs() == 1


def test_from_tables_rejects_empty_width():
    with pytest.raises(ValueError):
        EquivalenceClasses.from_tables(np.zeros((3, 0), dtype=np.uint64))


def test_simulation_state_determinism():
    s1 = SimulationState(4, num_random_words=2, seed=7)
    s2 = SimulationState(4, num_random_words=2, seed=7)
    assert np.array_equal(s1.pi_words, s2.pi_words)
    s3 = SimulationState(4, num_random_words=2, seed=8)
    assert not np.array_equal(s1.pi_words, s3.pi_words)


def test_add_cex_patterns_grows_pool():
    state = SimulationState(3, num_random_words=1, seed=1)
    assert state.num_patterns == 64
    state.add_cex_patterns([[1, 0, 1], [0, 1, 0]])
    assert state.num_cex == 2
    assert state.num_patterns == 128
    state.add_cex_patterns([])
    assert state.num_cex == 2


def test_cex_refinement_splits_class():
    """Two nodes that agree on few patterns split after a CEX lands."""
    b = AigBuilder(8)
    # f = AND of all inputs; g = AND of first 7 (differs only when the
    # first 7 are all ones).
    f = b.add_and_multi([2 * (i + 1) for i in range(8)])
    g = b.add_and_multi([2 * (i + 1) for i in range(7)])
    b.add_po(f)
    b.add_po(g)
    aig = b.build()
    state = SimulationState(8, num_random_words=1, seed=3)
    classes = state.classes(aig)
    # Random patterns almost surely never set all 7 inputs, so f and g
    # start in the same (constant) class.
    assert classes.representative_of(f >> 1) == classes.representative_of(
        g >> 1
    )
    state.add_cex_patterns([[1, 1, 1, 1, 1, 1, 1, 0]])
    refined = state.classes(aig)
    rf = refined.representative_of(f >> 1)
    rg = refined.representative_of(g >> 1)
    # Different classes now: either different representatives, or both
    # became singletons (representative_of is None for singletons).
    assert rf != rg or (rf is None and rg is None)


def test_state_validates_miter_interface():
    state = SimulationState(4, num_random_words=1, seed=1)
    aig = random_aig(num_pis=5, seed=1)
    with pytest.raises(ValueError):
        state.tables(aig)
