"""Tests for the BDD manager and the BDD-based checker."""

import itertools

import pytest

from repro.bdd.cec import BddChecker
from repro.bdd.manager import ONE, ZERO, BddLimitExceeded, BddManager
from repro.aig.network import negate_outputs
from repro.bench import generators as gen
from repro.sweep.engine import CecStatus
from repro.synth.resyn import compress2

from conftest import random_aig


def _tt(manager, node, num_vars):
    bits = []
    for assignment in itertools.product([0, 1], repeat=num_vars):
        env = {i: assignment[i] for i in range(num_vars)}
        bits.append(manager.evaluate(node, env))
    return tuple(bits)


def test_var_and_ite_canonical():
    m = BddManager()
    x = m.var(0)
    assert m.var(0) == x  # unique table dedupes
    y = m.var(1)
    assert m.ite(x, y, y) == y
    assert m.ite(x, ONE, ZERO) == x


def test_boolean_ops_match_truth_tables():
    m = BddManager()
    x, y, z = m.var(0), m.var(1), m.var(2)
    f = m.apply_or(m.apply_and(x, y), m.apply_xor(y, z))
    for bits in itertools.product([0, 1], repeat=3):
        env = dict(enumerate(bits))
        want = (bits[0] & bits[1]) | (bits[1] ^ bits[2])
        assert m.evaluate(f, env) == want


def test_canonicity_detects_equivalence():
    m = BddManager()
    x, y = m.var(0), m.var(1)
    # De Morgan: !(x & y) == !x | !y — identical node ids.
    lhs = m.apply_not(m.apply_and(x, y))
    rhs = m.apply_or(m.apply_not(x), m.apply_not(y))
    assert lhs == rhs


def test_any_sat():
    m = BddManager()
    x, y = m.var(0), m.var(1)
    f = m.apply_and(x, m.apply_not(y))
    assignment = m.any_sat(f)
    assert assignment == {0: 1, 1: 0}
    assert m.any_sat(ZERO) is None
    assert m.any_sat(ONE) == {}


def test_size_counts_reachable_nodes():
    m = BddManager()
    x, y = m.var(0), m.var(1)
    f = m.apply_xor(x, y)
    assert m.size(f) == 5  # two terminals + x node + two y nodes


def test_node_limit_enforced():
    m = BddManager(node_limit=8)
    with pytest.raises(BddLimitExceeded):
        current = ONE
        for i in range(10):
            current = m.apply_and(current, m.var(i))


def test_checker_equivalent_and_not():
    original = gen.voter(15)
    optimized = compress2(original)
    checker = BddChecker()
    assert checker.check(original, optimized).status is CecStatus.EQUIVALENT
    buggy = negate_outputs(optimized, [0])
    result = checker.check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    assert original.evaluate(result.cex) != buggy.evaluate(result.cex)


def test_checker_gives_up_on_limit():
    original = gen.multiplier(6)
    optimized = compress2(original)
    checker = BddChecker(node_limit=64)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED
    assert result.reduced_miter is not None


def test_checker_handles_trivial_miter():
    aig = random_aig(seed=111)
    assert BddChecker().check(aig, aig.copy()).status is CecStatus.EQUIVALENT


def test_var_validates_index():
    with pytest.raises(ValueError):
        BddManager().var(-1)
