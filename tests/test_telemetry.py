"""Tests for the live telemetry plane.

Covers the Prometheus text-exposition encoder, the flight recorder and
its logging handler, the /proc resource sampler, per-tenant SLO
accounting with burn-rate windows, the HTTP scrape endpoint, the
``cec top`` renderer, and the ``tools/check_bench.py`` regression gate.
"""

import copy
import importlib.util
import json
import logging
import os
import urllib.request

import pytest

from repro.obs import (
    FlightRecorder,
    FlightRecorderHandler,
    MetricsRegistry,
    ResourceSampler,
    encode_prometheus,
    get_logger,
    read_cpu_seconds,
    read_rss_bytes,
)
from repro.obs.telemetry import proc_available, prometheus_name
from repro.serve import (
    MetricsHttpServer,
    SloObjective,
    SloRegistry,
    format_top,
    parse_slo_spec,
)


def _load_check_bench():
    path = os.path.join(
        os.path.dirname(__file__), os.pardir, "tools", "check_bench.py"
    )
    spec = importlib.util.spec_from_file_location("check_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


def test_prometheus_name_sanitizes_dotted_names():
    assert prometheus_name("serve.jobs_submitted") == (
        "repro_serve_jobs_submitted"
    )
    assert prometheus_name("a-b c/d", prefix="x") == "x_a_b_c_d"
    assert prometheus_name("plain", prefix="") == "plain"


def test_encode_counters_with_type_and_total_suffix():
    reg = MetricsRegistry()
    reg.counter_add("serve.jobs_submitted", 3)
    text = encode_prometheus(reg)
    assert "# TYPE repro_serve_jobs_submitted_total counter" in text
    assert "repro_serve_jobs_submitted_total 3" in text
    assert text.endswith("\n")


def test_encode_histogram_cumulative_le_buckets():
    reg = MetricsRegistry()
    for value in (0.4, 0.9, 1.5, 3.0):
        reg.observe("job.latency_seconds", value)
    text = encode_prometheus(reg)
    lines = text.splitlines()
    assert "# TYPE repro_job_latency_seconds histogram" in lines
    metric = "repro_job_latency_seconds"
    # 0.4 and 0.9 share the 2^0 bucket; 1.5 lands in 2^1; 3.0 in 2^2.
    assert f'{metric}_bucket{{le="1"}} 2' in lines
    assert f'{metric}_bucket{{le="2"}} 3' in lines
    assert f'{metric}_bucket{{le="4"}} 4' in lines
    assert f'{metric}_bucket{{le="+Inf"}} 4' in lines
    assert f"{metric}_count 4" in lines
    sum_line = next(l for l in lines if l.startswith(f"{metric}_sum "))
    assert float(sum_line.split()[1]) == pytest.approx(5.8)
    # Cumulative counts never decrease along the bucket sequence.
    cumulative = [
        int(l.rsplit(" ", 1)[1])
        for l in lines
        if l.startswith(f"{metric}_bucket")
    ]
    assert cumulative == sorted(cumulative)


def test_encode_accepts_serialized_registry_snapshot():
    reg = MetricsRegistry()
    reg.counter_add("c", 2)
    reg.observe("h", 1.0)
    assert encode_prometheus(reg.as_dict()) == encode_prometheus(reg)
    with pytest.raises(TypeError):
        encode_prometheus(42)


def test_encode_gauges_with_sorted_escaped_labels():
    text = encode_prometheus(
        MetricsRegistry(),
        gauges=[
            ("slo.burn_rate", {"tenant": "b", "a": 'x"y\n'}, 1.5),
            ("slo.burn_rate", {"tenant": "a"}, float("inf")),
            ("uptime", {}, 12.0),
        ],
    )
    lines = text.splitlines()
    assert "# TYPE repro_slo_burn_rate gauge" in lines
    # One TYPE header per family even with many samples.
    assert lines.count("# TYPE repro_slo_burn_rate gauge") == 1
    assert 'repro_slo_burn_rate{a="x\\"y\\n",tenant="b"} 1.5' in lines
    assert 'repro_slo_burn_rate{tenant="a"} +Inf' in lines
    assert "repro_uptime 12" in lines


def test_encode_empty_registry_is_valid_and_stable():
    assert encode_prometheus(MetricsRegistry()) == "\n"


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


def test_flight_recorder_bounded_ring_and_seq():
    ring = FlightRecorder(capacity=4)
    for i in range(10):
        ring.record("job", "done", index=i)
    events = ring.events()
    assert len(ring) == 4
    assert [e["index"] for e in events] == [6, 7, 8, 9]
    assert [e["seq"] for e in events] == [7, 8, 9, 10]
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_flight_recorder_take_new_ships_each_event_once():
    ring = FlightRecorder(capacity=8)
    ring.record("job", "start")
    ring.record("job", "done")
    first = ring.take_new()
    assert [e["name"] for e in first] == ["start", "done"]
    assert ring.take_new() == []
    ring.record("job", "error")
    assert [e["name"] for e in ring.take_new()] == ["error"]


def test_flight_recorder_extend_preserves_worker_seq_and_ts():
    worker = FlightRecorder(capacity=8)
    worker.record("job", "start", miter="m1")
    shipped = worker.take_new()
    parent = FlightRecorder(capacity=8)
    parent.record("job", "submitted")
    assert parent.extend(shipped) == 1
    parent.record("kill", "deadline")
    events = parent.events()
    assert [e["name"] for e in events] == ["submitted", "start", "deadline"]
    folded = events[1]
    assert folded["worker_seq"] == shipped[0]["seq"]
    assert folded["ts"] == shipped[0]["ts"]  # worker's clock, not fold time
    assert folded["seq"] == 2  # parent ring keeps its own total order
    # record() drops None fields; extend skips non-dict junk.
    assert "cex" not in parent.record("job", "done", cex=None)
    assert parent.extend(["junk", None]) == 0


def test_flight_recorder_to_json_drops_unserializable_fields():
    ring = FlightRecorder(capacity=4)
    ring.record("job", "weird", payload=object(), ok=1)
    safe = ring.to_json()
    json.dumps(safe)
    assert safe[0]["ok"] == 1
    assert "payload" not in safe[0]


def test_flight_recorder_handler_captures_log_records():
    ring = FlightRecorder(capacity=8)
    handler = FlightRecorderHandler(ring)
    logger = get_logger("telemetry-test")
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    try:
        logger.warning(
            "worker stuck", extra={"kv": {"engine": "sat", "level": "bogus"}}
        )
    finally:
        logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
    (event,) = ring.events()
    assert event["kind"] == "log"
    assert event["name"] == "repro.telemetry-test"
    assert event["level"] == "warning"  # record's own level wins over kv
    assert event["msg"] == "worker stuck"
    assert event["engine"] == "sat"


# ----------------------------------------------------------------------
# Resource sampling
# ----------------------------------------------------------------------


@pytest.mark.skipif(not proc_available(), reason="needs /proc")
def test_proc_readers_report_this_process():
    rss = read_rss_bytes()
    assert rss is not None and rss > 1024 * 1024
    cpu = read_cpu_seconds()
    assert cpu is not None and cpu >= 0.0
    assert read_rss_bytes(2**30) is None  # no such pid


@pytest.mark.skipif(not proc_available(), reason="needs /proc")
def test_resource_sampler_feeds_histograms_and_last_rss():
    reg = MetricsRegistry()
    sampler = ResourceSampler(
        lambda: [os.getpid(), None, 2**30], reg, prefix="t", interval=0.05
    )
    assert sampler.sample_once() == 1
    assert sampler.sample_once() == 1  # second tick yields a CPU delta
    assert reg.histograms["t.rss_bytes"].count == 2
    assert reg.counter_value("t.samples") == 2
    assert sampler.last_rss[os.getpid()] > 0
    with pytest.raises(ValueError):
        ResourceSampler(lambda: [], reg, interval=0.0)


# ----------------------------------------------------------------------
# SLO accounting
# ----------------------------------------------------------------------


def test_parse_slo_spec_units_and_validation():
    p99 = parse_slo_spec("p99=5s")
    assert p99.quantile == pytest.approx(0.99)
    assert p99.target_seconds == pytest.approx(5.0)
    assert p99.name == "p99"
    assert p99.spec() == "p99=5s"
    assert parse_slo_spec("p95=500ms").target_seconds == pytest.approx(0.5)
    assert parse_slo_spec("p50 = 2m").target_seconds == pytest.approx(120.0)
    assert parse_slo_spec("p90=3").target_seconds == pytest.approx(3.0)
    assert parse_slo_spec("p99.9=1s").quantile == pytest.approx(0.999)
    for bad in ("p0=1s", "99=5s", "p99=", "p99=5h", "p100=1s"):
        with pytest.raises(ValueError):
            parse_slo_spec(bad)
    with pytest.raises(ValueError):
        SloObjective(1.5, 1.0)
    with pytest.raises(ValueError):
        SloObjective(0.99, 0.0)


def test_slo_registry_budgets_and_burn_rates():
    clock = {"now": 1000.0}
    slo = SloRegistry(
        [parse_slo_spec("p90=1s")],
        windows=(60.0, 600.0),
        clock=lambda: clock["now"],
    )
    assert slo.enabled
    # 8 good + 2 bad out of 10: bad fraction 0.2, budget fraction 0.1.
    for _ in range(8):
        slo.record_job("acme", 0.5)
    slo.record_job("acme", 3.0)
    slo.record_deadline_miss("acme")
    slo.record_respawn()
    snap = slo.snapshot()
    assert snap["objectives"] == ["p90=1s"]
    assert snap["respawns"] == 1
    state = snap["tenants"]["acme"]
    assert state["jobs"] == 10
    assert state["failures"] == 1
    assert state["deadline_misses"] == 1
    objective = state["objectives"]["p90"]
    assert objective["bad_events"] == 2
    # Budget: 10% of 10 jobs = 1 tolerated bad event; 2 seen → -1 left.
    assert objective["budget_remaining"] == pytest.approx(-1.0)
    assert objective["burn_rates"]["60s"] == pytest.approx(2.0)
    # Advance past the short window: its burn decays, the long one holds.
    clock["now"] += 120.0
    burn = slo.snapshot()["tenants"]["acme"]["objectives"]["p90"]
    assert burn["burn_rates"]["60s"] == 0.0
    assert burn["burn_rates"]["600s"] == pytest.approx(2.0)


def test_slo_gauges_are_prometheus_encodable():
    slo = SloRegistry([parse_slo_spec("p99=5s")], windows=(300.0,))
    slo.record_job("acme", 0.1)
    slo.record_job("acme", 9.0)
    gauges = slo.gauges()
    names = {name for name, _, _ in gauges}
    assert names == {
        "slo.worker_respawns",
        "slo.jobs",
        "slo.failures",
        "slo.deadline_misses",
        "slo.bad_events",
        "slo.error_budget_remaining",
        "slo.burn_rate",
    }
    text = encode_prometheus(MetricsRegistry(), gauges=gauges)
    assert (
        'repro_slo_burn_rate{objective="p99",tenant="acme",window="300s"}'
        in text
    )
    assert 'repro_slo_jobs{tenant="acme"} 2' in text


# ----------------------------------------------------------------------
# HTTP scrape endpoint
# ----------------------------------------------------------------------


def test_metrics_http_server_serves_scrapes_on_ephemeral_port():
    reg = MetricsRegistry()
    reg.counter_add("hits", 7)
    server = MetricsHttpServer(lambda: encode_prometheus(reg), port=0)
    assert server.port is None
    server.start()
    try:
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url, timeout=5) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            body = response.read().decode("utf-8")
        assert "repro_hits_total 7" in body
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=5
            )
        assert error.value.code == 404
    finally:
        server.stop()
    assert server.port is None
    server.stop()  # idempotent


# ----------------------------------------------------------------------
# `cec top` rendering
# ----------------------------------------------------------------------


def test_format_top_renders_full_stats_payload():
    stats = {
        "pid": 4242,
        "uptime_seconds": 3725.0,
        "rss_bytes": 48.5 * 1024 * 1024,
        "admission": {
            "state": "serving",
            "pending": 1,
            "max_pending": 64,
            "per_tenant": {"acme": {"admitted": 9, "rejected": 2}},
        },
        "pool": {
            "jobs_submitted": 10,
            "jobs_completed": 9,
            "inflight": 1,
            "respawns": 1,
            "deadline_kills": 1,
            "per_worker": [
                {
                    "index": 0,
                    "pid": 777,
                    "assigned": 1,
                    "jobs_done": 9,
                    "respawns": 1,
                    "rss_bytes": 10 * 1024 * 1024,
                }
            ],
        },
        "slo": {
            "windows_seconds": [300.0],
            "tenants": {
                "acme": {
                    "jobs": 10,
                    "failures": 1,
                    "deadline_misses": 1,
                    "objectives": {
                        "p99": {
                            "target_seconds": 5.0,
                            "bad_events": 2,
                            "budget_remaining": -1.9,
                            "burn_rates": {"300s": 20.0},
                        }
                    },
                }
            },
        },
    }
    screen = format_top(stats)
    assert "pid=4242" in screen
    assert "uptime=1h02m" in screen
    assert "rss=48.5MiB" in screen
    assert "submitted=10" in screen and "deadline_kills=1" in screen
    assert "WORKER" in screen and "777" in screen
    assert "p99<5s" in screen and "20.00" in screen
    assert "ADMITTED" in screen and "acme" in screen


def test_format_top_degrades_without_optional_blocks():
    screen = format_top({})
    assert "cec daemon" in screen
    assert "WORKER" not in screen
    assert "OBJECTIVE" not in screen


# ----------------------------------------------------------------------
# tools/check_bench.py — the perf-regression gate
# ----------------------------------------------------------------------


def _serve_payload():
    return {
        "experiment": "serve",
        "rows": [
            {
                "name": "voter",
                "round": "cold",
                "status": "equivalent",
                "latency": 0.10,
            },
            {
                "name": "voter",
                "round": "warm",
                "status": "equivalent",
                "latency": 0.02,
                "shm": {},
            },
        ],
        "daemon": {"pool": {"respawns": 0}},
    }


def test_check_bench_passes_on_identical_payload():
    cb = _load_check_bench()
    errors, summary = cb.check_bench(_serve_payload(), _serve_payload())
    assert errors == []
    assert summary["rows_compared"] == 2
    assert summary["ratio"] == pytest.approx(1.0)


def test_check_bench_fails_on_synthetic_slowdown():
    cb = _load_check_bench()
    slow = _serve_payload()
    for row in slow["rows"]:
        row["latency"] *= 2.0
    errors, _ = cb.check_bench(slow, _serve_payload(), max_ratio=1.5)
    assert any("geomean wall-clock ratio 2.00" in e for e in errors)
    # The same slowdown passes under the generous CI threshold.
    errors, _ = cb.check_bench(slow, _serve_payload(), max_ratio=25.0)
    assert errors == []


def test_check_bench_flags_verdict_drift_but_not_wildcards():
    cb = _load_check_bench()
    fresh = _serve_payload()
    fresh["rows"][0]["status"] = "nonequivalent"
    errors, _ = cb.check_bench(fresh, _serve_payload())
    assert any("status changed" in e for e in errors)
    # skipped/failed on either side is a config difference, not drift.
    wild = _serve_payload()
    wild["rows"][0]["status"] = "failed"
    errors, _ = cb.check_bench(wild, _serve_payload())
    assert errors == []


def test_check_bench_flags_missing_rows_leaks_and_respawns():
    cb = _load_check_bench()
    fresh = _serve_payload()
    del fresh["rows"][1]
    errors, _ = cb.check_bench(fresh, _serve_payload())
    assert any("missing fresh" in e for e in errors)

    leaky = _serve_payload()
    leaky["rows"][0]["shm"] = {"shm.segments_leaked": 2.0}
    errors, _ = cb.check_bench(leaky, _serve_payload())
    assert any("leaked 2" in e for e in errors)

    crashed = _serve_payload()
    crashed["daemon"]["pool"]["respawns"] = 1
    errors, _ = cb.check_bench(crashed, _serve_payload())
    assert any("respawned 1 worker" in e for e in errors)
    errors, _ = cb.check_bench(
        crashed, _serve_payload(), max_respawns=1
    )
    assert errors == []


def test_check_bench_rejects_mismatched_experiments():
    cb = _load_check_bench()
    baseline = copy.deepcopy(_serve_payload())
    baseline["experiment"] = "table2"
    errors, _ = cb.check_bench(_serve_payload(), baseline)
    assert any("experiment mismatch" in e for e in errors)
    errors, _ = cb.check_bench({}, _serve_payload())
    assert errors == ["fresh payload is not a BENCH_*.json object"]


def test_check_bench_table2_seconds_and_fig_columns():
    cb = _load_check_bench()
    t2 = {"name": "log2", "total_seconds": 2.0}
    assert cb.row_seconds("table2", t2) == 2.0
    assert cb.row_seconds("fig6", {"seconds": {"P": 1.0, "G": 0.5}}) == 1.5
    assert cb.row_seconds("fig7", {"standalone_seconds": 4.0}) == 4.0
    assert cb.row_key("table2", t2) == ("log2",)


def test_check_bench_cli_round_trip(tmp_path):
    cb = _load_check_bench()
    baseline_dir = tmp_path / "baselines"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_serve.json").write_text(
        json.dumps(_serve_payload())
    )
    fresh = tmp_path / "BENCH_serve.json"
    fresh.write_text(json.dumps(_serve_payload()))
    assert cb.main([str(fresh), "--baseline", str(baseline_dir)]) == 0
    slow_payload = _serve_payload()
    for row in slow_payload["rows"]:
        row["latency"] *= 3.0
    fresh.write_text(json.dumps(slow_payload))
    assert (
        cb.main(
            [
                str(fresh),
                "--baseline",
                str(baseline_dir),
                "--max-ratio",
                "1.5",
            ]
        )
        == 1
    )
    assert cb.main([str(tmp_path / "missing.json")]) == 1
