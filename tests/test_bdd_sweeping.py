"""Tests for the BDD sweeping checker."""

import pytest

from repro.aig.network import negate_outputs
from repro.bdd.sweeping import BddSweepChecker
from repro.bench import generators as gen
from repro.sweep.engine import CecStatus
from repro.synth.resyn import compress2

from conftest import sampled_equivalent


def test_proves_resynthesised_circuit():
    original = gen.voter(15)
    optimized = compress2(original)
    checker = BddSweepChecker(num_random_words=8)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert result.report.phases[0].proved > 0


def test_disproves_with_valid_cex():
    original = gen.sqrt(8)
    buggy = negate_outputs(compress2(original), [1])
    result = BddSweepChecker(num_random_words=4).check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    assert original.evaluate(result.cex) != buggy.evaluate(result.cex)


def test_budget_exhaustion_is_undecided():
    original = gen.multiplier(6)
    optimized = compress2(original)
    checker = BddSweepChecker(node_limit=128)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED
    assert result.reduced_miter is not None
    assert sampled_equivalent(original, optimized)[0]


def test_time_limit():
    original = gen.multiplier(6)
    optimized = compress2(original)
    checker = BddSweepChecker(time_limit=0.0)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED


def test_agrees_with_other_engines_on_log2():
    original = gen.log2(6)
    optimized = compress2(original)
    result = BddSweepChecker().check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
