"""Additional coverage: harness edges, phase merges, solver budgets,
fanin lists, AIGER property round-trips, transform pipelines."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aiger import read_aiger, write_aiger
from repro.aig.builder import AigBuilder
from repro.aig.miter import build_miter
from repro.bench import generators as gen
from repro.bench.harness import run_table2_case
from repro.bench.suite import build_case
from repro.sat.solver import SatSolver, SolveStatus
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.synth.balance import balance
from repro.synth.resyn import compress2
from repro.synth.rewrite import cut_rewrite

from conftest import brute_force_equivalent, random_aig


def test_fanin_lists_match_arrays():
    aig = random_aig(num_pis=5, num_nodes=30, seed=131)
    f0l, f1l = aig.fanin_lists()
    assert len(f0l) == aig.num_nodes
    for node in aig.ands():
        assert (f0l[node], f1l[node]) == aig.fanins(node)
    for node in range(aig.first_and):
        assert f0l[node] == 0


def test_engine_proves_complemented_equivalences():
    """A circuit vs its De-Morganised version: merges carry phases."""
    b1 = AigBuilder(4)
    f1 = b1.add_or(b1.add_and(2, 4), b1.add_and(6, 8))
    b1.add_po(f1)
    a1 = b1.build()

    b2 = AigBuilder(4)
    # !( !(xy) & !(zw) ) built with explicit inverted structure.
    left = b2.add_or(3, 5)    # !x | !y == !(xy)
    right = b2.add_or(7, 9)
    f2 = b2.lit_not(b2.add_and(left, right))
    b2.add_po(f2)
    a2 = b2.build()

    assert brute_force_equivalent(a1, a2)[0]
    result = SimSweepEngine(EngineConfig.fast()).check(a1, a2)
    assert result.status is CecStatus.EQUIVALENT


def test_solver_propagation_limit():
    solver = SatSolver()
    grid = [[solver.new_var() for _ in range(5)] for _ in range(6)]
    for row in grid:
        solver.add_clause([2 * v for v in row])
    for h in range(5):
        for i in range(6):
            for j in range(i + 1, 6):
                solver.add_clause([2 * grid[i][h] + 1, 2 * grid[j][h] + 1])
    status = solver.solve(propagation_limit=5)
    assert status is SolveStatus.UNKNOWN
    assert solver.solve() is SolveStatus.UNSAT


def test_run_table2_case_without_portfolio():
    case = build_case(
        "log2", lambda: gen.log2(6), doublings=0, optimizer=compress2
    )
    row = run_table2_case(
        case,
        config=EngineConfig.fast(),
        sat_conflict_limit=10_000,
        run_portfolio=False,
    )
    assert row.cfm_status == "skipped"
    assert row.abc_status in ("equivalent", "undecided")
    import math

    assert math.isnan(row.cfm_seconds)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6), st.integers(0, 1))
def test_aiger_round_trip_property(seed, binary):
    """Property: AIGER round-trips preserve structure counts and function."""
    import tempfile, os

    rnd = random.Random(seed)
    aig = random_aig(
        num_pis=rnd.randint(1, 8),
        num_nodes=rnd.randint(0, 60),
        num_pos=rnd.randint(1, 5),
        seed=seed,
    )
    fd, path = tempfile.mkstemp(suffix=".aig")
    os.close(fd)
    try:
        write_aiger(aig, path, binary=bool(binary))
        loaded = read_aiger(path)
    finally:
        os.unlink(path)
    assert loaded.num_ands == aig.num_ands
    pattern = [rnd.randint(0, 1) for _ in range(aig.num_pis)]
    assert loaded.evaluate(pattern) == aig.evaluate(pattern)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_transform_pipeline_equivalence_property(seed):
    """Property: any chain of synthesis transforms stays equivalent,
    and the engine agrees."""
    rnd = random.Random(seed)
    aig = random_aig(
        num_pis=rnd.randint(3, 7),
        num_nodes=rnd.randint(10, 60),
        num_pos=rnd.randint(1, 4),
        seed=seed,
    )
    transforms = [
        balance,
        lambda a: cut_rewrite(a, 4),
        lambda a: cut_rewrite(a, 6, zero_gain=True),
    ]
    current = aig
    for _ in range(rnd.randint(1, 3)):
        current = rnd.choice(transforms)(current)
    ok, pattern = brute_force_equivalent(aig, current)
    assert ok, pattern
    result = SimSweepEngine(EngineConfig.fast()).check(aig, current)
    assert result.status is not CecStatus.NONEQUIVALENT


def test_engine_on_zero_po_miter():
    b = AigBuilder(2)
    b.add_and(2, 4)
    aig = b.build()
    miter = build_miter(aig, aig.copy())
    result = SimSweepEngine(EngineConfig.fast()).check_miter(miter)
    assert result.status is CecStatus.EQUIVALENT


def test_engine_handles_constant_pos():
    """Miters with a mix of constant and live POs."""
    b1 = AigBuilder(3)
    b1.add_po(0)                      # constant false output
    b1.add_po(b1.add_and(2, 4))
    a1 = b1.build()
    b2 = AigBuilder(3)
    b2.add_po(0)
    b2.add_po(b2.lit_not(b2.add_or(3, 5)))  # same via De Morgan
    a2 = b2.build()
    result = SimSweepEngine(EngineConfig.fast()).check(a1, a2)
    assert result.status is CecStatus.EQUIVALENT


def test_window_merging_with_multi_round():
    """Merged windows must agree with unmerged under tiny memory."""
    from repro.aig.traversal import support
    from repro.simulation.exhaustive import ExhaustiveSimulator
    from repro.simulation.merging import merge_windows
    from repro.simulation.window import Pair, build_window

    aig = random_aig(num_pis=9, num_nodes=90, num_pos=8, seed=133)
    windows = []
    for i, po in enumerate(aig.pos):
        supp = support(aig, po >> 1)
        roots = [po >> 1] if (po >> 1) not in supp else []
        windows.append(build_window(aig, supp, roots, [Pair(po, 0, tag=i)]))
    merged = merge_windows(aig, windows, k_s=9)
    small = ExhaustiveSimulator(memory_budget_words=128)
    big = ExhaustiveSimulator()
    verdict_small = {o.pair.tag: o.status for o in small.run(aig, merged)}
    verdict_big = {o.pair.tag: o.status for o in big.run(aig, windows)}
    assert verdict_small == verdict_big
