"""Tests for NPN canonicalisation."""

import random

import pytest

from repro.synth.isop import tt_mask, tt_var
from repro.synth.npn import (
    apply_input_negation,
    apply_permutation,
    npn_canon,
    npn_class_count,
    npn_equivalent,
    transform_table,
)


def test_permutation_semantics():
    # f = x0 (projection); swapping inputs 0 and 1 gives x1.
    num_vars = 2
    f = tt_var(0, num_vars)
    swapped = apply_permutation(f, num_vars, (1, 0))
    assert swapped == tt_var(1, num_vars)


def test_input_negation_semantics():
    num_vars = 2
    f = tt_var(0, num_vars)  # x0
    negated = apply_input_negation(f, num_vars, 0b01)
    assert negated == (tt_var(0, num_vars) ^ tt_mask(num_vars))  # !x0


def test_transform_round_structure():
    num_vars = 3
    f = 0b10010110  # 3-input XOR
    canon, transform = npn_canon(f, num_vars)
    assert transform_table(f, num_vars, transform) == canon


def test_xor_class_closed_under_negation():
    """XOR is NPN-equivalent to XNOR and to any input-negated variant."""
    num_vars = 2
    xor = 0b0110
    xnor = 0b1001
    assert npn_equivalent(xor, xnor, num_vars)
    assert npn_equivalent(xor, apply_input_negation(xor, 2, 0b10), num_vars)


def test_and_or_same_class():
    """AND and OR are NPN-equivalent (De Morgan = negations)."""
    assert npn_equivalent(0b1000, 0b1110, 2)


def test_and_xor_different_class():
    assert not npn_equivalent(0b1000, 0b0110, 2)


@pytest.mark.parametrize("k,count", [(0, 1), (1, 2), (2, 4), (3, 14)])
def test_classic_npn_class_counts(k, count):
    assert npn_class_count(k) == count


def test_canonical_is_class_invariant():
    """Random transforms of a function all canonicalise identically."""
    rnd = random.Random(9)
    num_vars = 3
    import itertools

    for _ in range(20):
        table = rnd.getrandbits(8)
        canon, _ = npn_canon(table, num_vars)
        perm = tuple(rnd.sample(range(num_vars), num_vars))
        mask = rnd.getrandbits(num_vars)
        out = rnd.getrandbits(1)
        variant = transform_table(table, num_vars, (perm, mask, out))
        assert npn_canon(variant, num_vars)[0] == canon


def test_rejects_large_k():
    with pytest.raises(ValueError):
        npn_canon(0, 6)
    with pytest.raises(ValueError):
        npn_class_count(5)


def test_materialized_transforms_cached_and_complete():
    from repro.synth.npn import all_transforms, materialized_transforms

    group = materialized_transforms(3)
    assert len(group) == 96  # 3! * 2^3 * 2
    assert materialized_transforms(3) is group  # memoised tuple
    assert list(all_transforms(3)) == list(group)


def test_npn_canon_second_call_is_cached():
    """Micro-benchmark: a repeated canonicalisation is O(1).

    The first call walks the full 7680-transform group of a 5-input
    function; the second is an ``lru_cache`` dictionary lookup.  The
    assertion is deliberately generous (5x) so slow CI machines never
    flake, but the real ratio is orders of magnitude larger.
    """
    import time

    npn_canon.cache_clear()
    table = 0x9AF37B21  # arbitrary 5-input function
    start = time.perf_counter()
    cold_result = npn_canon(table, 5)
    cold = time.perf_counter() - start

    hits_before = npn_canon.cache_info().hits
    start = time.perf_counter()
    warm_result = npn_canon(table, 5)
    warm = time.perf_counter() - start

    assert warm_result == cold_result
    assert npn_canon.cache_info().hits == hits_before + 1
    assert warm < cold / 5
