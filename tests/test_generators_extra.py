"""Tests for the extended EPFL-family generators."""

import random

import pytest

from repro.bench.generators import (
    barrel_shifter,
    decoder,
    divider,
    int2float,
    max_circuit,
    priority_encoder,
)
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.synth.resyn import compress2

from conftest import to_word, word_val

RND = random.Random(31)


def test_barrel_shifter_semantics():
    width = 8
    aig = barrel_shifter(width)
    assert aig.num_pis == width + 3
    for _ in range(80):
        value = RND.randrange(1 << width)
        shift = RND.randrange(width)
        pattern = to_word(value, width) + to_word(shift, 3)
        got = word_val(aig.evaluate(pattern))
        assert got == (value << shift) & ((1 << width) - 1)


def test_max_semantics():
    width = 6
    aig = max_circuit(width)
    for _ in range(80):
        x, y = RND.randrange(1 << width), RND.randrange(1 << width)
        out = aig.evaluate(to_word(x, width) + to_word(y, width))
        assert word_val(out[:width]) == max(x, y)
        assert out[width] == (1 if x >= y else 0)


@pytest.mark.parametrize("bits", [1, 2, 4])
def test_decoder_one_hot(bits):
    aig = decoder(bits)
    assert aig.num_pos == 1 << bits
    for value in range(1 << bits):
        out = aig.evaluate(to_word(value, bits))
        assert sum(out) == 1
        assert out[value] == 1


def test_priority_encoder_semantics():
    width = 10
    aig = priority_encoder(width)
    index_bits = 4
    for _ in range(80):
        requests = [RND.randint(0, 1) for _ in range(width)]
        out = aig.evaluate(requests)
        index = word_val(out[:index_bits])
        valid = out[index_bits]
        if any(requests):
            assert valid == 1
            assert index == requests.index(1)
        else:
            assert valid == 0
            assert index == 0


def test_divider_semantics():
    width = 6
    aig = divider(width)
    for _ in range(100):
        x = RND.randrange(1 << width)
        y = RND.randrange(1, 1 << width)
        out = aig.evaluate(to_word(x, width) + to_word(y, width))
        assert word_val(out[:width]) == x // y, (x, y)
        assert word_val(out[width:]) == x % y, (x, y)


def test_divider_by_zero_convention():
    width = 4
    aig = divider(width)
    out = aig.evaluate(to_word(9, width) + to_word(0, width))
    assert word_val(out[:width]) == (1 << width) - 1  # all-ones quotient
    assert word_val(out[width:]) == 9


def test_int2float_semantics():
    width, mant = 12, 5
    aig = int2float(width, mant)
    exp_bits = 4
    for _ in range(80):
        x = RND.randrange(1, 1 << width)
        out = aig.evaluate(to_word(x, width))
        exponent = word_val(out[:exp_bits])
        mantissa = word_val(out[exp_bits : exp_bits + mant])
        valid = out[-1]
        assert valid == 1
        top = x.bit_length() - 1
        assert exponent == top
        shifted = (x << (width - 1 - top)) & ((1 << width) - 1)
        want_mantissa = (shifted >> (width - 1 - mant)) & ((1 << mant) - 1)
        assert mantissa == want_mantissa, (x,)


def test_int2float_zero():
    aig = int2float(8, 4)
    out = aig.evaluate([0] * 8)
    assert out[-1] == 0  # invalid flag


@pytest.mark.parametrize(
    "factory",
    [
        lambda: barrel_shifter(6),
        lambda: max_circuit(5),
        lambda: decoder(3),
        lambda: priority_encoder(8),
        lambda: divider(5),
        lambda: int2float(8, 4),
    ],
    ids=["bar", "max", "dec", "priority", "div", "int2float"],
)
def test_engine_proves_optimised_variants(factory):
    original = factory()
    optimized = compress2(original)
    result = SimSweepEngine(EngineConfig()).check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
