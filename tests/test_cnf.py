"""Tests for the lazy Tseitin encoder."""

import itertools

from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver, SolveStatus

from conftest import random_aig


def test_encoding_matches_evaluator():
    aig = random_aig(num_pis=4, num_nodes=25, num_pos=2, seed=91)
    solver = SatSolver()
    cnf = CnfBuilder(aig, solver)
    po_lits = [cnf.literal(p) for p in aig.pos]
    pi_vars = [cnf.var_of(pi) for pi in aig.pis()]
    for bits in itertools.product([0, 1], repeat=4):
        assumptions = [
            (v << 1) | (1 - bit) for v, bit in zip(pi_vars, bits)
        ]
        assert solver.solve(assumptions=assumptions) is SolveStatus.SAT
        got = [
            solver.model_value(l >> 1) ^ (l & 1) for l in po_lits
        ]
        assert got == aig.evaluate(list(bits))


def test_lazy_encoding_touches_only_needed_cone():
    aig = random_aig(num_pis=6, num_nodes=60, num_pos=3, seed=92)
    solver = SatSolver()
    cnf = CnfBuilder(aig, solver)
    cnf.literal(aig.pos[0])
    vars_after_one = solver.num_vars
    cnf.literal(aig.pos[1])
    assert solver.num_vars >= vars_after_one
    # Encoding the same PO again adds nothing.
    before = solver.num_vars
    cnf.literal(aig.pos[1])
    assert solver.num_vars == before


def test_constant_literal_encoding():
    aig = random_aig(num_pis=3, seed=93)
    solver = SatSolver()
    cnf = CnfBuilder(aig, solver)
    zero = cnf.literal(0)
    one = cnf.literal(1)
    assert solver.solve(assumptions=[zero]) is SolveStatus.UNSAT
    assert solver.solve(assumptions=[one]) is SolveStatus.SAT


def test_pi_pattern_defaults_to_zero():
    aig = random_aig(num_pis=5, num_nodes=10, num_pos=1, seed=94)
    solver = SatSolver()
    cnf = CnfBuilder(aig, solver)
    assert solver.solve() is SolveStatus.SAT
    pattern = cnf.pi_pattern_from_model()
    assert pattern == [0, 0, 0, 0, 0]  # nothing encoded yet
