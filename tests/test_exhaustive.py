"""Tests for the Algorithm-1 exhaustive simulator."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.builder import AigBuilder
from repro.aig.traversal import support
from repro.simulation.exhaustive import ExhaustiveSimulator, PairStatus
from repro.simulation.window import Pair, build_window

from conftest import random_aig


def _global_window(aig, lit_a, lit_b, tag=-1):
    supp = sorted(
        set(support(aig, lit_a >> 1)) | set(support(aig, lit_b >> 1))
    )
    roots = [v for v in (lit_a >> 1, lit_b >> 1) if v not in supp and v != 0]
    return build_window(aig, supp, roots, [Pair(lit_a, lit_b, tag)])


def _brute_equal(aig, lit_a, lit_b):
    for bits in itertools.product([0, 1], repeat=aig.num_pis):
        values = aig.evaluate_all(list(bits))
        va = int(values[lit_a >> 1]) ^ (lit_a & 1)
        vb = int(values[lit_b >> 1]) ^ (lit_b & 1)
        if va != vb:
            return False
    return True


def test_paper_example_equivalence():
    """xy' + xy'z == xy' despite different supports (paper §III-B1)."""
    b = AigBuilder(3)
    x, y, z = 2, 4, 6
    f = b.add_or(b.add_and(x, y ^ 1), b.add_and_multi([x, y ^ 1, z]))
    g = b.add_and(x, y ^ 1)
    b.add_po(f)
    b.add_po(g)
    aig = b.build()
    window = _global_window(aig, f, g)
    out = ExhaustiveSimulator().run(aig, [window])
    assert out[0].status is PairStatus.EQUAL


def test_mismatch_yields_valid_cex():
    aig = random_aig(num_pis=5, num_nodes=40, seed=61)
    lit_a, lit_b = aig.pos[0], aig.pos[1]
    window = _global_window(aig, lit_a, lit_b)
    out = ExhaustiveSimulator().run(aig, [window])
    equal = _brute_equal(aig, lit_a, lit_b)
    if out[0].status is PairStatus.MISMATCH:
        assert not equal
        cex = out[0].cex
        pattern = cex.to_pi_pattern(aig.num_pis)
        values = aig.evaluate_all(pattern)
        va = int(values[lit_a >> 1]) ^ (lit_a & 1)
        vb = int(values[lit_b >> 1]) ^ (lit_b & 1)
        assert va != vb
    else:
        assert equal


@pytest.mark.parametrize("budget", [128, 256, 1 << 20])
def test_memory_budget_does_not_change_verdicts(budget):
    """Multi-round (small E) and single-round runs must agree."""
    aig = random_aig(num_pis=8, num_nodes=80, num_pos=6, seed=62)
    windows = []
    for i in range(0, 6, 2):
        windows.append(
            _global_window(aig, aig.pos[i], aig.pos[i + 1], tag=i)
        )
    reference = ExhaustiveSimulator(1 << 22).run(aig, windows)
    limited = ExhaustiveSimulator(budget).run(aig, windows)
    ref_by_tag = {o.pair.tag: o.status for o in reference}
    lim_by_tag = {o.pair.tag: o.status for o in limited}
    assert ref_by_tag == lim_by_tag


def test_memory_budget_bounds_table_allocation():
    """Algorithm 1's ``M``: the ``simt`` table never exceeds the budget.

    Regression test: with many windows the slot count alone used to
    exceed the budget at ``entry=1``; now the batch is split into
    sub-batches that respect the bound.
    """
    aig = random_aig(num_pis=8, num_nodes=80, num_pos=8, seed=67)
    windows = [
        _global_window(aig, aig.pos[i], aig.pos[j], tag=8 * i + j)
        for i in range(8)
        for j in range(8)
    ]
    slot_counts = [len(w.inputs) + len(w.nodes) for w in windows]
    total_slots = 1 + sum(slot_counts)
    budget = 2 * max(slot_counts)
    assert budget < total_slots  # one flat batch would break the bound
    limited = ExhaustiveSimulator(budget)
    outcomes = limited.run(aig, windows)
    assert limited.stats.peak_table_words <= budget
    assert limited.stats.batches > 1
    reference = {
        o.pair.tag: o.status
        for o in ExhaustiveSimulator(1 << 22).run(aig, windows)
    }
    assert {o.pair.tag: o.status for o in outcomes} == reference


def test_window_larger_than_budget_rejected():
    aig = random_aig(num_pis=6, num_nodes=40, num_pos=2, seed=68)
    window = _global_window(aig, aig.pos[0], aig.pos[1])
    with pytest.raises(ValueError):
        ExhaustiveSimulator(4).run(aig, [window])


def test_complemented_pair():
    b = AigBuilder(2)
    f = b.add_and(2, 4)
    g = b.add_or(2 ^ 1, 4 ^ 1)  # g == !f
    b.add_po(f)
    b.add_po(g)
    aig = b.build()
    window = _global_window(aig, f, g ^ 1)
    out = ExhaustiveSimulator().run(aig, [window])
    assert out[0].status is PairStatus.EQUAL
    window2 = _global_window(aig, f, g)
    out2 = ExhaustiveSimulator().run(aig, [window2])
    assert out2[0].status is PairStatus.MISMATCH


def test_pair_against_constant():
    b = AigBuilder(2)
    f = b.add_and(2, 2 ^ 1)  # simplifies to const 0 via strash
    g = b.add_and(2, 4)
    b.add_po(g)
    aig = b.build()
    window = _global_window(aig, g, 0)
    out = ExhaustiveSimulator().run(aig, [window])
    assert out[0].status is PairStatus.MISMATCH
    assert f == 0


def test_multiple_windows_and_tags():
    aig = random_aig(num_pis=6, num_nodes=50, num_pos=6, seed=63)
    windows = [
        _global_window(aig, aig.pos[i], aig.pos[i], tag=i) for i in range(6)
    ]
    out = ExhaustiveSimulator().run(aig, windows)
    assert sorted(o.pair.tag for o in out) == list(range(6))
    assert all(o.status is PairStatus.EQUAL for o in out)


def test_empty_batch():
    aig = random_aig(seed=64)
    assert ExhaustiveSimulator().run(aig, []) == []


def test_collect_cex_disabled():
    aig = random_aig(num_pis=5, num_nodes=30, seed=65)
    window = _global_window(aig, aig.pos[0], aig.pos[1])
    out = ExhaustiveSimulator().run(aig, [window], collect_cex=False)
    if out[0].status is PairStatus.MISMATCH:
        assert out[0].cex is None


def test_stats_accumulate():
    aig = random_aig(num_pis=5, num_nodes=30, seed=66)
    sim = ExhaustiveSimulator()
    window = _global_window(aig, aig.pos[0], aig.pos[1])
    sim.run(aig, [window])
    sim.run(aig, [window])
    assert sim.stats.batches == 2
    assert sim.stats.pairs == 2


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_exhaustive_agrees_with_brute_force(seed):
    """Property: simulator verdict == brute force on every PO pair."""
    rnd = random.Random(seed)
    num_pis = rnd.randint(2, 7)
    aig = random_aig(
        num_pis=num_pis, num_nodes=rnd.randint(5, 40), num_pos=2, seed=seed
    )
    lit_a, lit_b = aig.pos[0], aig.pos[1]
    window = _global_window(aig, lit_a, lit_b)
    out = ExhaustiveSimulator(memory_budget_words=64).run(aig, [window])
    want = PairStatus.EQUAL if _brute_equal(aig, lit_a, lit_b) else PairStatus.MISMATCH
    assert out[0].status is want


def test_rejects_zero_budget():
    with pytest.raises(ValueError):
        ExhaustiveSimulator(0)
