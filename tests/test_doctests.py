"""Run the docstring examples of the key public classes.

The examples in module/class docstrings are part of the documented API
contract; this keeps them executable without enabling doctest collection
globally.
"""

import doctest

import pytest

import repro.aig.builder
import repro.aig.literals
import repro.sat.solver
import repro.sweep.engine


@pytest.mark.parametrize(
    "module",
    [
        repro.aig.literals,
        repro.aig.builder,
        repro.sat.solver,
        repro.sweep.engine,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
