"""Tests for FRAIG construction (SAT-based and simulation-based)."""

import pytest

from repro.aig.builder import AigBuilder
from repro.bench.generators import adder, carry_select_adder
from repro.synth.fraig import fraig, fraig_sim

from conftest import brute_force_equivalent, random_aig


def redundant_network():
    """The same function computed twice with different structure."""
    b = AigBuilder(3)
    x, y, z = 2, 4, 6
    f1 = b.add_or(b.add_and(x, y), b.add_and(x, z))   # x(y+z), expanded
    f2 = b.add_and(x, b.add_or(y, z))                 # x(y+z), factored
    b.add_po(f1)
    b.add_po(f2)
    return b.build()


@pytest.mark.parametrize("reducer", [fraig, fraig_sim], ids=["sat", "sim"])
def test_fraig_merges_redundant_logic(reducer):
    aig = redundant_network()
    reduced = reducer(aig)
    assert brute_force_equivalent(aig, reduced)[0]
    # Both POs now point at one shared implementation.
    assert reduced.pos[0] == reduced.pos[1]
    assert reduced.num_ands < aig.num_ands


@pytest.mark.parametrize("reducer", [fraig, fraig_sim], ids=["sat", "sim"])
def test_fraig_preserves_function_on_random(reducer):
    for seed in (0, 1, 2):
        aig = random_aig(num_pis=6, num_nodes=60, num_pos=3, seed=seed)
        reduced = reducer(aig)
        assert brute_force_equivalent(aig, reduced)[0], seed
        assert reduced.num_ands <= aig.num_ands


def test_fraig_sim_deduplicates_architectures():
    """Concatenating two adder architectures: fraiging shares the sums."""
    ripple = adder(5)
    csel = carry_select_adder(5)
    b = AigBuilder(10)
    m1 = b.import_cone(ripple, {pi: 2 * pi for pi in ripple.pis()})
    m2 = b.import_cone(csel, {pi: 2 * pi for pi in csel.pis()})
    for po in ripple.pos:
        b.add_po(m1[po >> 1] ^ (po & 1))
    for po in csel.pos:
        b.add_po(m2[po >> 1] ^ (po & 1))
    combined = b.build()
    reduced = fraig_sim(combined)
    # Outputs i and i + 6 are functionally identical; after fraiging
    # they must literally coincide.
    for i in range(6):
        assert reduced.pos[i] == reduced.pos[i + 6]
    assert reduced.num_ands < combined.num_ands


def test_fraig_with_tiny_conflict_limit_stays_sound():
    aig = random_aig(num_pis=7, num_nodes=80, num_pos=4, seed=9)
    reduced = fraig(aig, conflict_limit=1)
    assert brute_force_equivalent(aig, reduced)[0]


def test_fraig_sim_respects_support_threshold():
    """Pairs wider than k_g are left unmerged but nothing breaks."""
    aig = redundant_network()
    reduced = fraig_sim(aig, k_g=2)  # support of the pair is 3 > 2
    assert brute_force_equivalent(aig, reduced)[0]
