"""Additional harness and callback coverage."""

import pytest

from repro.bench import generators as gen
from repro.bench.harness import (
    format_fig6,
    format_fig7,
    format_table2,
    run_table2,
)
from repro.bench.suite import build_case
from repro.sweep.config import EngineConfig
from repro.sweep.engine import SimSweepEngine
from repro.synth.isop import isop, sop_to_expr, tt_var
from repro.synth.factor import eval_expr
from repro.synth.resyn import compress2


@pytest.fixture(scope="module")
def two_cases():
    return [
        build_case("log2", lambda: gen.log2(6), 0, compress2),
        build_case("voter", lambda: gen.voter(15), 0, compress2),
    ]


def test_run_table2_multiple_cases(two_cases):
    rows = run_table2(
        two_cases,
        config=EngineConfig.fast(),
        sat_conflict_limit=5_000,
        run_portfolio=False,
    )
    assert [r.name for r in rows] == ["log2", "voter"]
    table = format_table2(rows)
    assert "log2" in table and "voter" in table
    # Every numeric column renders without raising.
    assert table.count("\n") >= 3


def test_format_fig_tables_render(two_cases):
    from repro.bench.harness import Fig6Row, Fig7Row

    fig6 = format_fig6(
        [Fig6Row("x", {"P": 0.5, "L": 0.5}, {"P": 1.0, "L": 1.0})]
    )
    assert "50.0" in fig6
    fig7 = format_fig7(
        [Fig7Row("y", 2.0, {"P": 1.0, "PG": 0.5, "PGL": 0.0}, {})]
    )
    assert "0.50" in fig7


def test_engine_on_phase_callback():
    original = gen.voter(15)
    optimized = compress2(original)
    seen = []
    engine = SimSweepEngine(
        EngineConfig.fast(), on_phase=lambda rec: seen.append(rec.kind)
    )
    result = engine.check(original, optimized)
    assert seen  # at least the P phase reported
    assert seen == [p.kind for p in result.report.phases]


def test_sop_to_expr_round_trip():
    table = tt_var(0, 3) ^ tt_var(2, 3)
    cubes = isop(table, 3)
    expr = sop_to_expr(cubes)
    for index in range(8):
        bits = [(index >> i) & 1 for i in range(3)]
        assert eval_expr(expr, bits) == (table >> index) & 1


def test_run_table2_json_and_cache(two_cases, tmp_path):
    cache_dir = tmp_path / "cache"
    json_dir = tmp_path / "out"
    json_dir.mkdir()
    rows = run_table2(
        two_cases,
        config=EngineConfig.fast(),
        sat_conflict_limit=5_000,
        run_portfolio=False,
        cache_dir=str(cache_dir),
        json_out=str(json_dir),
    )
    import json

    path = json_dir / "BENCH_table2.json"
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "table2"
    assert [r["name"] for r in payload["rows"]] == [r.name for r in rows]
    assert "speedup_vs_abc" in payload["geomeans"]
    assert set(payload["cache"]) == {"counters", "hit_rate"}
    # Row-level cache counters are present when a cache dir is given.
    assert all("cache" in r and "cache_hit_rate" in r for r in payload["rows"])


def test_harness_main_writes_bench_json(tmp_path, capsys):
    from repro.bench.harness import main

    code = main(
        [
            "table2",
            "--profile",
            "tiny",
            "--only",
            "log2",
            "--no-portfolio",
            "--json",
            str(tmp_path),
            "--cache",
            str(tmp_path / "cache"),
        ]
    )
    assert code == 0
    assert "log2" in capsys.readouterr().out
    assert (tmp_path / "BENCH_table2.json").exists()


def test_run_fig6_json(two_cases, tmp_path):
    import json

    from repro.bench.harness import run_fig6

    out = tmp_path / "fig6.json"
    rows = run_fig6(
        two_cases, cache_dir=str(tmp_path / "cache"), json_out=str(out)
    )
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "fig6"
    assert len(payload["rows"]) == len(rows)
    assert all("fractions" in r for r in payload["rows"])
