"""Tests for the DOT exporter."""

from repro.aig.builder import AigBuilder
from repro.aig.dot import to_dot, write_dot


def small_net():
    b = AigBuilder(2)
    f = b.add_and(2, 4 ^ 1)
    b.add_po(f ^ 1)
    return b.build("tiny"), f


def test_dot_structure():
    aig, f = small_net()
    dot = to_dot(aig)
    assert dot.startswith("digraph aig {")
    assert dot.rstrip().endswith("}")
    assert 'label="tiny"' in dot
    assert '"x1"' in dot and '"x2"' in dot
    assert "doublecircle" in dot
    # One dashed fanin edge (the complemented input) + dashed PO edge.
    assert dot.count("style=dashed") == 2


def test_dot_highlight():
    aig, f = small_net()
    dot = to_dot(aig, highlight=[f >> 1, 1])
    assert dot.count("fillcolor") == 2


def test_write_dot(tmp_path):
    aig, _ = small_net()
    path = tmp_path / "net.dot"
    write_dot(aig, path, title="custom")
    text = path.read_text()
    assert 'label="custom"' in text
    assert text.endswith("}\n")
