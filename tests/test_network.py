"""Tests for the Aig container."""

import numpy as np
import pytest

from repro.aig.builder import AigBuilder
from repro.aig.network import Aig, negate_outputs

from conftest import random_aig


def test_node_partitioning():
    aig = random_aig(num_pis=4, num_nodes=10, seed=1)
    assert aig.is_const(0)
    assert all(aig.is_pi(n) for n in range(1, 5))
    assert all(aig.is_and(n) for n in aig.ands())
    assert aig.first_and == 5
    assert aig.num_nodes == 1 + aig.num_pis + aig.num_ands


def test_validation_rejects_forward_references():
    with pytest.raises(ValueError):
        Aig(2, fanin0=[8], fanin1=[2], pos=[6])  # fanin 8 -> node 4 > 3


def test_validation_rejects_bad_po():
    with pytest.raises(ValueError):
        Aig(2, fanin0=[2], fanin1=[4], pos=[100])


def test_levels_and_depth():
    b = AigBuilder(3)
    n1 = b.add_and(2, 4)
    n2 = b.add_and(n1, 6)
    n3 = b.add_and(n2, n1)
    b.add_po(n3)
    aig = b.build()
    levels = aig.levels()
    assert levels[0] == 0
    assert all(levels[pi] == 0 for pi in aig.pis())
    assert levels[n1 >> 1] == 1
    assert levels[n2 >> 1] == 2
    assert levels[n3 >> 1] == 3
    assert aig.depth() == 3


def test_depth_empty_pos():
    b = AigBuilder(2)
    b.add_and(2, 4)
    aig = b.build()
    assert aig.depth() == 0


def test_fanout_counts_include_pos():
    b = AigBuilder(2)
    f = b.add_and(2, 4)
    b.add_po(f)
    b.add_po(f ^ 1)
    aig = b.build()
    counts = aig.fanout_counts()
    assert counts[f >> 1] == 2
    assert counts[1] == 1 and counts[2] == 1


def test_evaluate_all_matches_evaluate():
    aig = random_aig(num_pis=5, num_nodes=30, seed=3)
    pattern = [1, 0, 1, 1, 0]
    values = aig.evaluate_all(pattern)
    outs = aig.evaluate(pattern)
    for po, out in zip(aig.pos, outs):
        assert out == (int(values[po >> 1]) ^ (po & 1))


def test_evaluate_checks_arity():
    aig = random_aig(num_pis=4, seed=0)
    with pytest.raises(ValueError):
        aig.evaluate([0, 1])


def test_copy_is_independent():
    aig = random_aig(seed=5)
    clone = aig.copy()
    clone.pos[0] ^= 1
    assert clone.pos[0] != aig.pos[0]


def test_negate_outputs():
    aig = random_aig(seed=6)
    flipped = negate_outputs(aig, [0])
    pattern = [0] * aig.num_pis
    assert flipped.evaluate(pattern)[0] == aig.evaluate(pattern)[0] ^ 1
    assert flipped.evaluate(pattern)[1:] == aig.evaluate(pattern)[1:]
    all_flipped = negate_outputs(aig)
    assert all_flipped.evaluate(pattern) == [
        v ^ 1 for v in aig.evaluate(pattern)
    ]


def test_ids_are_topological():
    aig = random_aig(num_pis=6, num_nodes=50, seed=7)
    f0s, f1s = aig.fanin_literals()
    ids = np.arange(aig.first_and, aig.num_nodes)
    assert np.all((f0s >> 1) < ids)
    assert np.all((f1s >> 1) < ids)
