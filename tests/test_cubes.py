"""Cube-and-conquer: split soundness, lane verdicts, distributed race.

The package's soundness rests on one invariant — the cubes over any
split-PI set are pairwise disjoint and jointly exhaustive — so the
property tests here check it structurally and functionally, then the
verdict sweep pins the in-process cube lane against the fixed pipeline
and brute force on ~100 seeded miters, and the runner tests drive the
distributed race end to end: first-winner cancellation, staged kills of
busy losers, lazy worker respawn, and zero leaked shared memory.
"""

import glob
import itertools
import random
import time

import pytest

from repro.aig.network import Aig
from repro.aig.miter import build_miter
from repro.cubes import (
    Cube,
    CubeChecker,
    CubeRunner,
    choose_split_pis,
    cofactor,
    enumerate_cubes,
    patch_pattern,
)
from repro.portfolio.checker import CombinedChecker
from repro.sched import FORCE_ENV, AdaptiveSweeper
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus
from repro.synth.resyn import compress2

from conftest import brute_force_equivalent, random_aig


def _mutate(aig: Aig, seed: int) -> Aig:
    """Flip one AND fanin phase (the classic synthesis-bug model)."""
    rnd = random.Random(seed)
    f0, f1 = aig.fanin_literals()
    f0 = [int(x) for x in f0]
    f1 = [int(x) for x in f1]
    pos = list(aig.pos)
    if not f0:
        pos[rnd.randrange(len(pos))] ^= 1
    elif rnd.random() < 0.5:
        f0[rnd.randrange(len(f0))] ^= 1
    else:
        f1[rnd.randrange(len(f1))] ^= 1
    return Aig(aig.num_pis, f0, f1, pos, name=aig.name + "_bug")


def _shm_segments() -> int:
    return len(glob.glob("/dev/shm/rs*"))


# ----------------------------------------------------------------------
# Split properties: exhaustive, disjoint, function-preserving
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("k", [1, 2, 3])
def test_cubes_are_exhaustive_and_pairwise_disjoint(seed, k):
    """Every assignment of the split PIs lands in exactly one cube."""
    aig = random_aig(num_pis=5 + seed % 3, num_nodes=30, num_pos=2, seed=seed)
    pis = choose_split_pis(aig, k)
    assert len(pis) == len(set(pis)) <= k
    cubes = enumerate_cubes(pis)
    assert len(cubes) == 1 << len(pis)
    for bits in itertools.product([0, 1], repeat=len(pis)):
        assignment = dict(zip(pis, bits))
        matching = [
            cube
            for cube in cubes
            if all(assignment[pi] == v for pi, v in cube.assignments)
        ]
        assert len(matching) == 1, (seed, k, bits)


def test_choose_split_pis_ranks_by_fanout():
    aig = random_aig(num_pis=6, num_nodes=50, num_pos=3, seed=7)
    fanouts = aig.fanout_counts()
    pis = choose_split_pis(aig, 3)
    chosen = [int(fanouts[pi]) for pi in pis]
    # Non-increasing fanout, and nothing with zero fanout is chosen.
    assert chosen == sorted(chosen, reverse=True)
    assert all(count > 0 for count in chosen)


@pytest.mark.parametrize("seed", range(8))
def test_cofactor_preserves_interface_and_function(seed):
    """``cofactor(aig, cube)`` equals ``aig`` with the cube's PIs pinned:
    same PI/PO interface, same value on every input extending the cube."""
    aig = random_aig(num_pis=6, num_nodes=40, num_pos=3, seed=seed)
    rnd = random.Random(seed)
    for cube in enumerate_cubes(choose_split_pis(aig, 2)):
        cof = cofactor(aig, cube)
        assert cof.num_pis == aig.num_pis
        assert len(cof.pos) == len(aig.pos)
        for _ in range(16):
            pattern = [rnd.randint(0, 1) for _ in range(aig.num_pis)]
            patched = patch_pattern(pattern, aig, cube)
            assert cof.evaluate(patched) == aig.evaluate(patched), (
                seed, str(cube), patched,
            )


def test_patch_pattern_overlays_cube_values_only():
    aig = random_aig(num_pis=5, num_nodes=20, num_pos=2, seed=3)
    cube = Cube(((1, 1), (4, 0)))
    patched = patch_pattern([0, 0, 1, 1, 1], aig, cube)
    assert patched == [1, 0, 1, 0, 1]
    assert not Cube(()).assignments  # the monolith patches nothing
    assert Cube(()).is_monolith


def test_cube_list_round_trip():
    cube = Cube(((2, 1), (5, 0)))
    assert Cube.from_list(cube.as_list()) == cube
    assert str(cube) == "pi2=1,pi5=0"
    assert str(Cube(())) == "monolith"


# ----------------------------------------------------------------------
# Verdict sweep: forced cube lane ≡ fixed pipeline ≡ brute force
# ----------------------------------------------------------------------


def _case(seed: int):
    original = random_aig(
        num_pis=5 + seed % 4, num_nodes=40 + seed % 30, num_pos=3, seed=seed
    )
    other = compress2(original)
    if seed % 2 == 1:
        other = _mutate(other, seed)
    equal, _ = brute_force_equivalent(original, other)
    return original, other, equal


@pytest.mark.parametrize("seed_block", range(10))
def test_cube_lane_verdicts_match_fixed_pipeline(seed_block, monkeypatch):
    """10 blocks × 10 seeds = 100 miters: every dispatch pinned to the
    cube lane must reach the same verdict as the fixed P-G-L-SAT
    pipeline, and both must match brute force."""
    monkeypatch.setenv(FORCE_ENV, "cube")
    for seed in range(seed_block * 10, seed_block * 10 + 10):
        original, other, equal = _case(seed)
        fixed = CombinedChecker(EngineConfig.fast(), sched="fixed").check(
            original, other
        )
        cube = AdaptiveSweeper(EngineConfig.fast()).check(original, other)
        assert fixed.status == cube.status, seed
        expected = CecStatus.EQUIVALENT if equal else CecStatus.NONEQUIVALENT
        assert cube.status is expected, seed
        if not equal:
            assert original.evaluate(cube.cex) != other.evaluate(cube.cex), (
                seed
            )


# ----------------------------------------------------------------------
# The distributed race
# ----------------------------------------------------------------------


def test_runner_race_equivalent_and_nonequivalent():
    """One warm runner settles an UNSAT and then a SAT query, reusing
    its workers, and leaks no shared-memory segments."""
    before = _shm_segments()
    original = random_aig(num_pis=6, num_nodes=50, num_pos=2, seed=21)
    eq_miter = build_miter(original, compress2(original))
    buggy = _mutate(compress2(original), 21)
    neq_miter = build_miter(original, buggy)
    with CubeRunner(num_workers=2) as runner:
        cubes = enumerate_cubes(choose_split_pis(eq_miter, 2))
        outcome = runner.solve(eq_miter, cubes, conflict_limit=100_000)
        assert outcome.status == "equivalent"
        assert outcome.stats["winner"] in ("monolith", "all-cubes")
        cubes = enumerate_cubes(choose_split_pis(neq_miter, 2))
        outcome = runner.solve(neq_miter, cubes, conflict_limit=100_000)
        assert outcome.status == "nonequivalent"
        # The patched model is a genuine counter-example of the miter.
        assert 1 in neq_miter.evaluate(outcome.cex)
        assert runner.races == 2
    assert _shm_segments() == before


def test_runner_kills_busy_losers_after_first_winner():
    """Losing cubes still solving when the winner settles are
    staged-killed, and the next race lazily respawns their workers."""
    original = random_aig(num_pis=6, num_nodes=40, num_pos=2, seed=33)
    miter = build_miter(original, compress2(original))
    cubes = enumerate_cubes(choose_split_pis(miter, 2))
    with CubeRunner(num_workers=3, terminate_grace=0.2) as runner:
        # Cubes park for 30 s before solving; the (undelayed) monolith
        # proves UNSAT immediately and must cancel all four cubes:
        # queued ones revoked off the board, busy ones killed.
        start = time.perf_counter()
        outcome = runner.solve(
            miter, cubes, conflict_limit=100_000, cube_delay=30.0
        )
        elapsed = time.perf_counter() - start
        assert outcome.status == "equivalent"
        assert outcome.stats["winner"] == "monolith"
        assert outcome.stats["cancelled"] == len(cubes)
        assert outcome.stats["killed"] >= 1
        assert elapsed < 20.0, "losers were waited on, not cancelled"
        killed_workers = [w for w in runner._workers if not w.alive]
        assert killed_workers, "staged kill left every worker alive"
        # The warm pool recovers: the next race respawns dead workers
        # and still reaches a verdict.  Monolith-only, so this race has
        # no losers to kill and every respawned worker stays alive.
        outcome = runner.solve(miter, [], conflict_limit=100_000)
        assert outcome.status == "equivalent"
        assert all(w.alive for w in runner._workers)
    assert _shm_segments() == 0


def test_runner_deadline_returns_unknown():
    """A race whose deadline expires reports unknown, not a verdict."""
    original = random_aig(num_pis=6, num_nodes=40, num_pos=2, seed=11)
    miter = build_miter(original, compress2(original))
    cubes = enumerate_cubes(choose_split_pis(miter, 2))
    with CubeRunner(num_workers=2, terminate_grace=0.2) as runner:
        outcome = runner.solve(
            miter,
            cubes,
            include_monolith=False,
            cube_delay=30.0,
            deadline=time.perf_counter() + 0.5,
        )
        assert outcome.status == "unknown"
        assert outcome.stats.get("timeout") is True
    assert _shm_segments() == 0


# ----------------------------------------------------------------------
# The standalone checker (--engine cube)
# ----------------------------------------------------------------------


def test_cube_checker_verdicts_match_brute_force():
    original = random_aig(num_pis=6, num_nodes=45, num_pos=3, seed=5)
    optimized = compress2(original)
    checker = CubeChecker(workers=2)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    buggy = _mutate(optimized, 5)
    equal, _ = brute_force_equivalent(original, buggy)
    assert not equal
    result = checker.check(original, buggy)
    assert result.status is CecStatus.NONEQUIVALENT
    assert original.evaluate(result.cex) != buggy.evaluate(result.cex)
    assert _shm_segments() == 0
