"""Tests for the generic job runtime (``repro.exec``).

Covers the pieces the pools build their policies on: reason
normalisation and cancellation tokens (``cancel``), first-winner
groups, and the work-stealing :class:`~repro.exec.board.JobBoard` —
plus the regression test for the kill-reason strings the parallel
portfolio surfaces on its run records.
"""

import pytest

from repro.bench.generators import voter
from repro.exec.board import JobBoard
from repro.exec.cancel import (
    REASON_CANCELLED,
    REASON_TIMEOUT,
    CancelGroup,
    CancelToken,
    normalize_reason,
)
from repro.portfolio.parallel import ParallelPortfolioChecker
from repro.sweep.engine import CecStatus
from repro.synth.resyn import compress2


# ----------------------------------------------------------------------
# normalize_reason
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "raw, expected",
    [
        ("timeout", REASON_TIMEOUT),
        ("timed out", REASON_TIMEOUT),
        ("timed-out", REASON_TIMEOUT),
        ("deadline exceeded", REASON_TIMEOUT),
        ("job deadline exceeded", REASON_TIMEOUT),
        ("per-engine budget", REASON_TIMEOUT),
        ("OVERTIME", REASON_TIMEOUT),
        ("cancelled", REASON_CANCELLED),
        ("canceled", REASON_CANCELLED),
        ("winner_cancelled", REASON_CANCELLED),
        ("lost the race", REASON_CANCELLED),
        ("", REASON_CANCELLED),
        (None, REASON_CANCELLED),
        ("segfault", REASON_CANCELLED),
    ],
)
def test_normalize_reason_table(raw, expected):
    assert normalize_reason(raw) == expected


def test_normalize_reason_default_is_configurable():
    assert normalize_reason("gibberish", default=REASON_TIMEOUT) == (
        REASON_TIMEOUT
    )
    # Recognised strings win over the default.
    assert normalize_reason("cancelled", default=REASON_TIMEOUT) == (
        REASON_CANCELLED
    )


# ----------------------------------------------------------------------
# CancelToken / CancelGroup
# ----------------------------------------------------------------------


def test_cancel_token_first_cancel_wins():
    token = CancelToken("w0")
    assert not token.cancelled
    assert token.reason == ""
    assert token.cancel("deadline exceeded") == REASON_TIMEOUT
    assert token.cancelled
    # A later winner-cancellation sweep must not overwrite the original
    # timeout: the record should still say why the worker really died.
    assert token.cancel("cancelled") == REASON_TIMEOUT
    assert token.reason == REASON_TIMEOUT


def test_cancel_group_first_winner_cancels_the_rest():
    group = CancelGroup()
    tokens = [group.new_token(f"cube{i}") for i in range(4)]
    winner = tokens[1]
    losers = group.cancel_rest(winner, REASON_CANCELLED)
    assert group.winner is winner
    assert not winner.cancelled
    assert sorted(t.name for t in losers) == ["cube0", "cube2", "cube3"]
    assert all(t.reason == REASON_CANCELLED for t in losers)
    assert group.cancelled_count == 3
    # Idempotent: a second sweep finds nothing new to cancel.
    assert group.cancel_rest(winner) == []


def test_cancel_group_does_not_recount_cancelled_tokens():
    group = CancelGroup()
    a = group.new_token("a")
    b = group.new_token("b")
    a.cancel("timeout")
    losers = group.cancel_rest(b)
    assert losers == []
    assert a.reason == REASON_TIMEOUT  # untouched by the sweep
    assert group.cancelled_count == 1


# ----------------------------------------------------------------------
# JobBoard
# ----------------------------------------------------------------------


def test_board_affinity_then_shared_order():
    board = JobBoard()
    board.add(1, {"n": 1}, affinity=0)
    board.add(2, {"n": 2}, affinity=0)
    board.add(3, {"n": 3})  # shared
    assert len(board) == 3
    assert board.queued_for(0) == 2
    taken = [board.take(0).job_id for _ in range(3)]
    assert taken == [1, 2, 3]
    assert board.take(0) is None


def test_board_steals_from_tail_of_longest_sibling():
    board = JobBoard()
    for job_id in (1, 2, 3):
        board.add(job_id, {}, affinity=0)
    board.add(4, {}, affinity=1)
    # Worker 2 has nothing of its own and the shared queue is empty, so
    # it steals from worker 0 (the longest backlog) — from the *tail*,
    # leaving the victim's next job (its head) in place.
    stolen = board.take(2)
    assert stolen.job_id == 3
    assert board.take(0).job_id == 1


def test_board_take_discards_cancelled_jobs():
    board = JobBoard()
    token = CancelToken()
    board.add(1, {}, token=token, affinity=0)
    board.add(2, {}, affinity=0)
    token.cancel()
    job = board.take(0)
    assert job.job_id == 2


def test_board_revoke_cancelled_sweeps_all_queues():
    board = JobBoard()
    group = CancelGroup()
    keep = board.add(1, {}, token=group.new_token("keep"), affinity=0)
    board.add(2, {}, token=group.new_token("lose-a"), affinity=0)
    board.add(3, {}, token=group.new_token("lose-b"))
    group.cancel_rest(keep.token)
    revoked = board.revoke_cancelled()
    assert sorted(job.job_id for job in revoked) == [2, 3]
    assert len(board) == 1
    assert board.take(0) is keep


# ----------------------------------------------------------------------
# Kill reasons surfaced on portfolio run records (regression)
# ----------------------------------------------------------------------


def test_parallel_losers_report_canonical_cancelled():
    """Engines outrun by the winner read exactly "cancelled".

    Regression: the old pool spelled the loser status differently on
    different paths ("terminated", "killed", "cancelled"), so report
    consumers had to pattern-match.  The runtime's cancellation tokens
    normalise every kill, and both the record status and any attached
    ``EngineFailure.reason`` must use the canonical strings.
    """
    original = voter(13)
    optimized = compress2(original)
    checker = ParallelPortfolioChecker(
        engines=[("combined", {}), ("sleep", {"seconds": 60.0})],
        time_limit=120.0,
        finisher=None,
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    report = result.report
    assert report.record("sleep").status == REASON_CANCELLED
    for record in report.engines:
        assert record.status in (
            "equivalent", REASON_CANCELLED, REASON_TIMEOUT
        )
        if record.failure is not None:
            assert record.failure.reason in (
                "", REASON_CANCELLED, REASON_TIMEOUT
            )


def test_parallel_budget_kill_reports_canonical_timeout():
    """A per-engine budget kill reads exactly "timeout", even though the
    orchestrator's internal stop path phrases the reason differently."""
    original = voter(13)
    optimized = compress2(original)
    # The only other engine cannot conclude (zero SAT time budget), so
    # the sleep engine is stopped by its own 0.3 s budget, never by a
    # winner-cancellation sweep.
    checker = ParallelPortfolioChecker(
        engines=[("sleep", {}, 0.3), ("sat", {"time_limit": 0.0})],
        time_limit=60.0,
        finisher=None,
    )
    result = checker.check(original, optimized)
    assert result.status is CecStatus.UNDECIDED
    record = result.report.record("sleep")
    assert record.status == REASON_TIMEOUT
    if record.failure is not None:
        assert record.failure.reason == REASON_TIMEOUT
