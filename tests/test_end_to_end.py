"""Cross-engine agreement and mutation-detection fuzzing.

Every checker in the package must agree on every instance: the
simulation engine, the SAT sweeper, the BDD engine and the combined /
portfolio flows.  Disagreement on any instance is a soundness bug in at
least one engine, so this file is the package's strongest safety net.
"""

import random

import pytest

from repro import (
    CecStatus,
    CombinedChecker,
    PortfolioChecker,
    SatSweepChecker,
    SimSweepEngine,
    check_equivalence,
)
from repro.aig.builder import AigBuilder
from repro.bdd.cec import BddChecker
from repro.bench import generators as gen
from repro.sweep.config import EngineConfig
from repro.synth.balance import balance
from repro.synth.resyn import compress2
from repro.synth.rewrite import cut_rewrite

from conftest import brute_force_equivalent, random_aig


def _mutate(aig, seed):
    """Flip one AND gate's fanin phase — a classic synthesis bug model."""
    rnd = random.Random(seed)
    f0, f1 = aig.fanin_literals()
    f0 = list(int(x) for x in f0)
    f1 = list(int(x) for x in f1)
    idx = rnd.randrange(len(f0))
    if rnd.random() < 0.5:
        f0[idx] ^= 1
    else:
        f1[idx] ^= 1
    from repro.aig.network import Aig

    return Aig(aig.num_pis, f0, f1, list(aig.pos), name=aig.name + "_bug")


def _checkers():
    return [
        ("sim", SimSweepEngine(EngineConfig.fast())),
        ("sat", SatSweepChecker(num_random_words=4)),
        ("bdd", BddChecker(node_limit=200_000)),
        ("combined", CombinedChecker(EngineConfig.fast())),
        ("portfolio", PortfolioChecker()),
    ]


@pytest.mark.parametrize("seed", range(6))
def test_all_engines_agree_on_equivalent_instances(seed):
    original = random_aig(num_pis=6, num_nodes=60, num_pos=3, seed=seed)
    transform = [balance, lambda a: cut_rewrite(a, 4), compress2][seed % 3]
    optimized = transform(original)
    assert brute_force_equivalent(original, optimized)[0]
    for name, checker in _checkers():
        result = checker.check(original, optimized)
        assert result.status in (CecStatus.EQUIVALENT, CecStatus.UNDECIDED), (
            name,
            seed,
        )
        # UNDECIDED is acceptable only for budgeted engines; the claim
        # they must never make is NONEQUIVALENT.
        assert result.status is not CecStatus.NONEQUIVALENT


@pytest.mark.parametrize("seed", range(6))
def test_all_engines_catch_mutations(seed):
    original = gen.multiplier(3) if seed % 2 else gen.sqrt(6)
    buggy = _mutate(original, seed)
    equal, _ = brute_force_equivalent(original, buggy)
    for name, checker in _checkers():
        result = checker.check(original, buggy)
        if equal:
            assert result.status is not CecStatus.NONEQUIVALENT, (name, seed)
        else:
            assert result.status is CecStatus.NONEQUIVALENT, (name, seed)
            assert original.evaluate(result.cex) != buggy.evaluate(
                result.cex
            ), (name, seed)


def test_check_equivalence_top_level():
    original = gen.log2(6)
    optimized = compress2(original)
    result = check_equivalence(original, optimized)
    assert result.status is CecStatus.EQUIVALENT


def test_combined_checker_timings_split():
    original = gen.voter(15)
    optimized = compress2(original)
    checker = CombinedChecker(EngineConfig.fast())
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    timings = checker.timings
    assert timings.engine_seconds > 0
    assert timings.total_seconds >= timings.engine_seconds
    assert timings.engine_status in ("equivalent", "undecided")


def test_combined_checker_ec_transfer_path():
    """Force an engine residue so the SAT back end actually runs."""
    original = gen.voter(31)
    optimized = compress2(original)
    tiny = EngineConfig(
        k_P=4, k_p=4, k_g=4, k_l=4, C=2,
        num_random_words=4, max_local_phases=1,
        memory_budget_words=1 << 14,
    )
    checker = CombinedChecker(tiny, transfer_ecs=True)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    # The report keeps the engine's phase records even after SAT finishes.
    kinds = {p.kind for p in result.report.phases}
    assert "P" in kinds or "G" in kinds or "L" in kinds


def test_portfolio_early_stop_on_bdd():
    original = gen.voter(15)
    optimized = compress2(original)
    checker = PortfolioChecker()
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert "bdd" in checker.engine_seconds
    assert "sat" not in checker.engine_seconds  # early stop


def test_portfolio_falls_through_to_sat():
    original = gen.multiplier(4)
    optimized = compress2(original)
    checker = PortfolioChecker(bdd_node_limit=64)
    result = checker.check(original, optimized)
    assert result.status is CecStatus.EQUIVALENT
    assert "sat" in checker.engine_seconds
