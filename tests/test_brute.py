"""Tests for the vectorised exhaustive oracle."""

import pytest

from repro.analysis.brute import (
    exhaustive_equivalent,
    exhaustive_po_signatures,
)
from repro.aig.network import negate_outputs
from repro.bench.generators import multiplier, wallace_multiplier
from repro.synth.balance import balance

from conftest import brute_force_equivalent, random_aig


def test_agrees_with_python_brute_force():
    for seed in range(6):
        a = random_aig(num_pis=5, num_nodes=40, num_pos=3, seed=seed)
        b = balance(a) if seed % 2 else negate_outputs(a, [1])
        want_equal, _ = brute_force_equivalent(a, b)
        got_equal, cex = exhaustive_equivalent(a, b)
        assert got_equal == want_equal, seed
        if not got_equal:
            assert a.evaluate(cex) != b.evaluate(cex)


def test_architectural_pair():
    equal, cex = exhaustive_equivalent(multiplier(6), wallace_multiplier(6))
    assert equal and cex is None


def test_interface_validation():
    a = random_aig(num_pis=4, seed=1)
    b = random_aig(num_pis=5, seed=1)
    with pytest.raises(ValueError, match="PI counts"):
        exhaustive_equivalent(a, b)
    wide = random_aig(num_pis=25, num_nodes=5, seed=2)
    with pytest.raises(ValueError, match="at most"):
        exhaustive_equivalent(wide, wide.copy())


def test_po_signatures_canonical():
    a = random_aig(num_pis=4, num_nodes=30, num_pos=2, seed=7)
    b = balance(a)
    assert exhaustive_po_signatures(a) == exhaustive_po_signatures(b)
    c = negate_outputs(a, [0])
    sig_a = exhaustive_po_signatures(a)
    sig_c = exhaustive_po_signatures(c)
    mask = (1 << 16) - 1
    assert sig_c[0] == sig_a[0] ^ mask
    assert sig_c[1] == sig_a[1]


def test_small_pi_counts():
    a = random_aig(num_pis=2, num_nodes=6, num_pos=1, seed=9)
    equal, _ = exhaustive_equivalent(a, a.copy())
    assert equal
