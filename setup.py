"""Setup shim.

The offline environment lacks the ``wheel`` package, which modern
``pip install -e .`` needs to build a PEP-660 editable wheel.  This shim
lets ``python setup.py develop`` perform the equivalent legacy editable
install; all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
