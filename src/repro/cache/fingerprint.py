"""Content-addressed fingerprints of miter cones.

The proof store (:mod:`repro.cache.store`) must key functional knowledge
by *what a node computes*, never by node id — ids are reassigned on
every miter reduction and differ between runs.  This module derives one
key string per node:

- **Truth-table keys** (``"T:…"``) for cones whose *functional* support
  fits :attr:`~repro.cache.config.CacheConfig.tt_support_limit` PIs.
  The cone is evaluated exhaustively over its support (Python-int bit
  tables), constant and non-influential variables are dropped, and the
  key digests the exact function: for ≤ ``npn_limit`` variables as the
  NPN-canonical table of :func:`repro.synth.npn.npn_canon` *plus* the
  canonising transform (canonical representation, exact identity), for
  larger supports as the raw table.  Functionally equal cones therefore
  share a key no matter how differently they are structured.
- **Structural keys** (``"S:…"``) for everything larger: a bottom-up
  DAG hash over ``(child-key, child-phase)`` pairs in commutative
  order, salted with the node's simulation signature under a
  fixed-seed random pattern block.  The salt is a deterministic
  function of the node's logic, so keys are stable across runs while
  two different functions that happen to share a local DAG shape after
  hashing (never, short of a hash collision) are still separated
  semantically.

Because both key families are pure functions of the logic, re-running
the same (or a locally perturbed) miter reproduces the same keys and
unlocks every previously stored verdict — the warm-start path.

Fingerprints can also *decide* a pair outright when both sides carry
exact truth tables (:meth:`MiterFingerprints.decide_pair`); the engine
counts such decisions separately from store hits.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aig.network import Aig
from repro.aig.traversal import collect_cone, supports_capped
from repro.cache.config import CacheConfig
from repro.simulation.bitops import random_words
from repro.simulation.partial import simulate_words

# NOTE: nothing from repro.synth (or any package that pulls the sweep /
# SAT stack) may be imported at module level: repro.sweep.config imports
# this package, so going back up would close an import cycle.  npn_canon
# is imported lazily at call time and tt_mask is restated inline.


def tt_mask(num_vars: int) -> int:
    """All-ones truth table (= :func:`repro.synth.isop.tt_mask`)."""
    return (1 << (1 << num_vars)) - 1

#: Fixed seed of the structural-hash salt patterns.  Changing it
#: invalidates every structural key ever stored, so it is part of the
#: on-disk format in spirit; bump the store format version with it.
SALT_SEED = 0x5EEDCAFE

_DIGEST_SIZE = 10  # 80-bit keys: ample for a proof cache, short on disk


@lru_cache(maxsize=4096)
def var_projection(j: int, n: int) -> int:
    """Truth table of variable ``j`` over ``n`` variables (Python int)."""
    block = 1 << j
    chunk = ((1 << block) - 1) << block
    period = 2 * block
    out = 0
    for r in range((1 << n) // period):
        out |= chunk << (r * period)
    return out


def remove_var(table: int, j: int, n: int) -> int:
    """Project out variable ``j`` (must be non-influential) of ``n``."""
    block = 1 << j
    mask = (1 << block) - 1
    out = 0
    for c in range(1 << (n - 1 - j)):
        out |= ((table >> (c * 2 * block)) & mask) << (c * block)
    return out


def shrink_table(table: int, support: Sequence[int]) -> Tuple[int, Tuple[int, ...]]:
    """Drop variables the function does not actually depend on.

    Returns the table over the *functional* support — the canonical
    domain the truth-table keys are defined over.
    """
    variables = list(support)
    j = 0
    while j < len(variables):
        n = len(variables)
        block = 1 << j
        mask = tt_mask(n)
        off_bits = mask & ~var_projection(j, n)
        if ((table ^ (table >> block)) & off_bits) == 0:
            table = remove_var(table, j, n)
            variables.pop(j)
        else:
            j += 1
    return table, tuple(variables)


class MiterFingerprints:
    """Per-node content keys of one miter.

    Instances are bound to a single :class:`~repro.aig.network.Aig`; the
    engine rebuilds them after every reduction (keys are functions of
    the logic, so knowledge recorded against an earlier binding stays
    valid).  Truth tables are computed lazily per queried node and
    memoised; structural keys are built eagerly in one bottom-up pass.

    The state-carry parameters let :class:`repro.sweep.state.SweepState`
    hand knowledge from the previous binding across a reduction — sound
    because all three are pure functions of each node's *logic*, which
    merges of proved equivalences preserve:

    - ``salt_matrix``: the ``(num_nodes, salt_words)`` signature matrix
      under the fixed :data:`SALT_SEED` patterns, normally re-simulated
      on every bind;
    - ``table_carry``: memoised exact truth tables, keyed by node id of
      *this* network;
    - ``key_carry``: memoised final keys — only function-backed ``"T:"``
      keys may be carried (structural keys depend on cone shape, which
      reductions change).
    """

    def __init__(
        self,
        aig: Aig,
        config: Optional[CacheConfig] = None,
        *,
        salt_matrix: Optional[np.ndarray] = None,
        table_carry: Optional[
            Dict[int, Tuple[int, Tuple[int, ...]]]
        ] = None,
        key_carry: Optional[Dict[int, str]] = None,
    ) -> None:
        self.aig = aig
        self.config = config or CacheConfig()
        self._supports = supports_capped(aig, self.config.tt_support_limit)
        self._tables: Dict[int, Optional[Tuple[int, Tuple[int, ...]]]] = (
            dict(table_carry) if table_carry else {}
        )
        self._final_keys: Dict[int, str] = {
            node: key
            for node, key in (key_carry or {}).items()
            if key.startswith("T:")
        }
        if (
            salt_matrix is not None
            and self.config.salt_words > 0
            and aig.num_pis > 0
            and salt_matrix.shape == (aig.num_nodes, self.config.salt_words)
        ):
            self._salt: Optional[bytes] = np.ascontiguousarray(
                salt_matrix
            ).tobytes()
        else:
            self._salt = self._build_salt()
        self._structural = self._build_structural()

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------

    def _build_salt(self) -> Optional[bytes]:
        cfg = self.config
        if cfg.salt_words <= 0 or self.aig.num_pis == 0:
            return None
        rng = np.random.default_rng(SALT_SEED)
        words = random_words(self.aig.num_pis, cfg.salt_words, rng)
        return simulate_words(self.aig, words).tobytes()

    def _build_structural(self) -> List[str]:
        aig = self.aig
        keys: List[str] = ["C"]
        keys.extend(f"I{pi}" for pi in range(1, aig.num_pis + 1))
        salt = self._salt
        row = self.config.salt_words * 8
        f0l, f1l = aig.fanin_lists()
        for node in range(aig.first_and, aig.num_nodes):
            f0 = f0l[node]
            f1 = f1l[node]
            c0 = (keys[f0 >> 1], f0 & 1)
            c1 = (keys[f1 >> 1], f1 & 1)
            if c1 < c0:
                c0, c1 = c1, c0
            digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
            digest.update(c0[0].encode())
            digest.update(b"-" if c0[1] else b"+")
            digest.update(c1[0].encode())
            digest.update(b"-" if c1[1] else b"+")
            if salt is not None:
                digest.update(salt[node * row : (node + 1) * row])
            keys.append("S:" + digest.hexdigest())
        return keys

    def table_of(self, node: int) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """Exact truth table over the node's functional support, if small.

        Returns ``(table, support)`` with ``support`` a sorted tuple of
        PI ids, or ``None`` when the cone exceeds the configured limits.
        """
        cached = self._tables.get(node, _MISSING)
        if cached is not _MISSING:
            return cached
        result = self._compute_table(node)
        self._tables[node] = result
        return result

    def _compute_table(self, node: int) -> Optional[Tuple[int, Tuple[int, ...]]]:
        aig = self.aig
        if node == 0:
            return 0, ()
        if aig.is_pi(node):
            return 0b10, (node,)
        supp = self._supports[node]
        if supp is None:
            return None
        svars = tuple(sorted(supp))
        n = len(svars)
        cone = collect_cone(aig, [node])
        if len(cone) > self.config.tt_cone_limit:
            return None
        mask = tt_mask(n)
        vals: Dict[int, int] = {0: 0}
        for j, v in enumerate(svars):
            vals[v] = var_projection(j, n)
        f0l, f1l = aig.fanin_lists()
        for c in cone:
            f0 = f0l[c]
            f1 = f1l[c]
            a = vals[f0 >> 1] ^ (mask if f0 & 1 else 0)
            b = vals[f1 >> 1] ^ (mask if f1 & 1 else 0)
            vals[c] = a & b
        return shrink_table(vals[node], svars)

    def key_of(self, node: int) -> str:
        """Content key of a node: truth-table backed when available."""
        key = self._final_keys.get(node)
        if key is not None:
            return key
        entry = self.table_of(node)
        if entry is None:
            key = self._structural[node]
        else:
            table, support = entry
            n = len(support)
            if n <= self.config.npn_limit:
                from repro.synth.npn import npn_canon

                canon, (perm, neg, out_neg) = npn_canon(table, n)
                material = f"T{n}:{canon:x}:{perm}:{neg}:{out_neg}:{support}"
            else:
                material = f"T{n}:{table:x}:{support}"
            digest = hashlib.blake2b(
                material.encode(), digest_size=_DIGEST_SIZE
            )
            key = "T:" + digest.hexdigest()
        self._final_keys[node] = key
        return key

    def npn_class_of(self, node: int) -> Optional[str]:
        """NPN class token of a small cone (provenance/statistics only).

        Unlike :meth:`key_of` this identifies the function only up to
        input permutation/negation and output negation, so it must never
        be used as a proof key.
        """
        entry = self.table_of(node)
        if entry is None:
            return None
        table, support = entry
        n = len(support)
        if n > self.config.npn_limit:
            return None
        from repro.synth.npn import npn_canon

        canon, _ = npn_canon(table, n)
        return f"N{n}:{canon:x}"

    def pair_key(self, lit_a: int, lit_b: int) -> str:
        """Canonical key of a candidate pair (symmetric in its sides)."""
        key_a = self.key_of(lit_a >> 1)
        key_b = self.key_of(lit_b >> 1)
        phase = (lit_a ^ lit_b) & 1
        if key_b < key_a:
            key_a, key_b = key_b, key_a
        return f"P:{key_a}|{key_b}|{phase}"

    def cut_key(self, cut: Sequence[int]) -> str:
        """Content key of a cut (a set of nodes), order-insensitive."""
        digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        for key in sorted(self.key_of(x) for x in cut):
            digest.update(key.encode())
            digest.update(b"|")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Direct decisions
    # ------------------------------------------------------------------

    def decide_pair(
        self, lit_a: int, lit_b: int
    ) -> Optional[Tuple[str, Optional[List[int]]]]:
        """Decide a pair from fingerprints alone, when possible.

        Returns ``("equivalent", None)``, ``("nonequivalent", cex)``
        with a full PI pattern, or ``None`` when the fingerprints cannot
        decide.  Sound because truth-table keys identify exact functions
        and structural-key equality implies DAG isomorphism.
        """
        phase = (lit_a ^ lit_b) & 1
        var_a = lit_a >> 1
        var_b = lit_b >> 1
        entry_a = self.table_of(var_a)
        entry_b = self.table_of(var_b)
        if entry_a is not None and entry_b is not None:
            return self._decide_tables(entry_a, entry_b, phase)
        if self.key_of(var_a) == self.key_of(var_b):
            if phase == 0:
                return "equivalent", None
            # f == NOT f is unsatisfiable: every pattern distinguishes.
            return "nonequivalent", [0] * self.aig.num_pis
        return None

    def _decide_tables(
        self,
        entry_a: Tuple[int, Tuple[int, ...]],
        entry_b: Tuple[int, Tuple[int, ...]],
        phase: int,
    ) -> Tuple[str, Optional[List[int]]]:
        table_a, sup_a = entry_a
        table_b, sup_b = entry_b
        if sup_a == sup_b:
            n = len(sup_a)
            diff = table_a ^ table_b ^ (tt_mask(n) if phase else 0)
            if diff == 0:
                return "equivalent", None
            idx = (diff & -diff).bit_length() - 1
            return "nonequivalent", self._pattern(sup_a, idx)
        # Functional supports differ, so the functions cannot be equal.
        # Pick a variable one side depends on and the other does not,
        # find an assignment where flipping it changes the dependent
        # side, and keep whichever polarity disagrees with the other.
        extra = sorted(set(sup_a) ^ set(sup_b))[0]
        if extra in sup_a:
            dep_t, dep_sup = table_a, sup_a
            other_t, other_sup = table_b, sup_b
        else:
            dep_t, dep_sup = table_b, sup_b
            other_t, other_sup = table_a, sup_a
        j = dep_sup.index(extra)
        n = len(dep_sup)
        block = 1 << j
        off_bits = tt_mask(n) & ~var_projection(j, n)
        dep_mask = (dep_t ^ (dep_t >> block)) & off_bits
        idx0 = (dep_mask & -dep_mask).bit_length() - 1
        assign = {v: (idx0 >> k) & 1 for k, v in enumerate(dep_sup)}
        other_idx = 0
        for k, v in enumerate(other_sup):
            if assign.get(v):
                other_idx |= 1 << k
        other_val = (other_t >> other_idx) & 1
        dep_val0 = (dep_t >> idx0) & 1
        # At `idx0` the flip variable is 0; `idx0 | block` sets it to 1.
        chosen = idx0 if dep_val0 != (other_val ^ phase) else idx0 | block
        assign[extra] = (chosen >> j) & 1
        pattern = [0] * self.aig.num_pis
        for v, value in assign.items():
            pattern[v - 1] = value
        return "nonequivalent", pattern

    def _pattern(self, support: Tuple[int, ...], index: int) -> List[int]:
        pattern = [0] * self.aig.num_pis
        for j, v in enumerate(support):
            pattern[v - 1] = (index >> j) & 1
        return pattern


_MISSING = object()
