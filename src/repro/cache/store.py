"""Append-only persistent proof store.

One JSONL file (``proofs.jsonl``) per cache directory, one verdict per
line, last occurrence of a key wins.  The format is deliberately dumb:

- **Appends** hold an ``fcntl`` lock on a sidecar ``.lock`` file and
  write their delta with a single ``write`` call, so concurrent
  processes (portfolio workers, parallel CI jobs) interleave whole
  records rather than bytes.
- **Compaction** rewrites the file through a temp file in the same
  directory followed by an atomic ``os.replace`` under the same lock,
  so readers never observe a half-written store.
- **Reads** tolerate torn or corrupt trailing lines by skipping them
  (counted in :attr:`ProofStore.load_errors`); a truncated record costs
  one cached verdict, never the run.

On platforms without ``fcntl`` (Windows) locking falls back to an
``O_CREAT|O_EXCL`` lockfile protocol (spin until the exclusive create
succeeds, break locks older than a staleness bound) and emits a
``RuntimeWarning`` once — slower and advisory, but still mutual
exclusion rather than the silent no-op it used to be.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

try:  # POSIX only; gate so the module imports everywhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Bump when key derivation or the record schema changes incompatibly
#: (e.g. the structural-hash salt seed).  Stores with a different
#: version are ignored wholesale rather than half-trusted.
FORMAT_VERSION = 1

PROOFS_FILENAME = "proofs.jsonl"
LOCK_FILENAME = ".lock"

EQUIVALENT = "equivalent"
NONEQUIVALENT = "nonequivalent"
INCONCLUSIVE = "inconclusive"

_STATUSES = frozenset({EQUIVALENT, NONEQUIVALENT, INCONCLUSIVE})


@dataclass
class Verdict:
    """One cached piece of functional knowledge, with provenance."""

    status: str
    cex: Optional[List[int]] = None
    num_pis: int = 0
    engine: str = ""
    context: str = ""
    cut_size: int = 0
    conflict_limit: int = 0
    seconds: float = 0.0

    def to_json(self, key: str) -> str:
        record = {"k": key, "s": self.status}
        if self.cex is not None:
            record["x"] = "".join("1" if b else "0" for b in self.cex)
        if self.num_pis:
            record["n"] = self.num_pis
        if self.engine:
            record["e"] = self.engine
        if self.context:
            record["c"] = self.context
        if self.cut_size:
            record["w"] = self.cut_size
        if self.conflict_limit:
            record["l"] = self.conflict_limit
        if self.seconds:
            record["t"] = round(self.seconds, 6)
        return json.dumps(record, separators=(",", ":"))

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> Tuple[str, "Verdict"]:
        key = record["k"]
        status = record["s"]
        if not isinstance(key, str) or status not in _STATUSES:
            raise ValueError("malformed proof record")
        cex_field = record.get("x")
        cex: Optional[List[int]] = None
        if isinstance(cex_field, str):
            if cex_field.strip("01"):
                raise ValueError("malformed counter-example")
            cex = [1 if ch == "1" else 0 for ch in cex_field]
        return key, cls(
            status=str(status),
            cex=cex,
            num_pis=int(record.get("n", 0)),
            engine=str(record.get("e", "")),
            context=str(record.get("c", "")),
            cut_size=int(record.get("w", 0)),
            conflict_limit=int(record.get("l", 0)),
            seconds=float(record.get("t", 0.0)),
        )


class _FileLock:
    """Exclusive advisory lock on ``<directory>/.lock`` (context manager).

    With ``fcntl`` available this is a plain ``flock``.  Without it the
    lock is an ``O_CREAT|O_EXCL`` claim on a ``.lock.excl`` sidecar:
    whoever creates the file owns the lock, everyone else spins.  A
    claim file older than ``stale_after`` seconds is presumed to belong
    to a dead process and is broken.  Entering never leaks the ``.lock``
    fd: if acquiring the ``flock`` raises, the fd is closed before the
    exception propagates.
    """

    #: Seconds after which an exclusive-create claim is considered
    #: abandoned (its holder crashed without removing it).
    _STALE_AFTER = 60.0
    _SPIN_INTERVAL = 0.01
    _warned_no_fcntl = False

    def __init__(self, directory: str) -> None:
        self._path = os.path.join(directory, LOCK_FILENAME)
        self._excl_path = self._path + ".excl"
        self._fd: Optional[int] = None
        self._claimed = False

    def __enter__(self) -> "_FileLock":
        if fcntl is not None:
            fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except BaseException:
                os.close(fd)
                raise
            self._fd = fd
            return self
        if not _FileLock._warned_no_fcntl:
            _FileLock._warned_no_fcntl = True
            warnings.warn(
                "fcntl is unavailable: proof-store locking falls back to "
                "an O_CREAT|O_EXCL lockfile protocol (slower, advisory)",
                RuntimeWarning,
                stacklevel=3,
            )
        self._acquire_exclusive()
        return self

    def _acquire_exclusive(self) -> None:
        while True:
            try:
                fd = os.open(
                    self._excl_path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                    0o644,
                )
            except FileExistsError:
                self._break_stale_claim()
                time.sleep(self._SPIN_INTERVAL)
                continue
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            except OSError:
                pass
            finally:
                os.close(fd)
            self._claimed = True
            return

    def _break_stale_claim(self) -> None:
        try:
            age = time.time() - os.stat(self._excl_path).st_mtime
        except OSError:
            return  # holder released it between our open and stat
        if age > self._STALE_AFTER:
            try:
                os.unlink(self._excl_path)
            except OSError:
                pass

    def __exit__(self, *exc_info: object) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None
        if self._claimed:
            self._claimed = False
            try:
                os.unlink(self._excl_path)
            except OSError:
                pass


@dataclass
class ProofStore:
    """In-memory verdict map with JSONL persistence.

    Mutations accumulate in ``pending`` until :meth:`append_pending`
    writes them out; the in-memory view is always the merged state.
    """

    entries: Dict[str, Verdict] = field(default_factory=dict)
    pending: List[Tuple[str, Verdict]] = field(default_factory=list)
    load_errors: int = 0

    # ------------------------------------------------------------------
    # In-memory operations
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Verdict]:
        return self.entries.get(key)

    def put(self, key: str, verdict: Verdict) -> bool:
        """Record a verdict; returns True when it changed the store.

        Conclusive verdicts never regress to inconclusive ones, and an
        inconclusive verdict only replaces another when it carries a
        higher conflict limit (it represents a stronger failed attempt).
        """
        existing = self.entries.get(key)
        if existing is not None:
            if existing.status != INCONCLUSIVE:
                return False
            if (
                verdict.status == INCONCLUSIVE
                and verdict.conflict_limit <= existing.conflict_limit
            ):
                return False
        self.entries[key] = verdict
        self.pending.append((key, verdict))
        return True

    def discard(self, key: str) -> None:
        """Drop an entry from the in-memory view (e.g. failed replay).

        No tombstone is written: the stale record stays on disk until
        the next :meth:`compact`, and every future reader re-validates.
        """
        self.entries.pop(key, None)

    def clear_pending(self) -> None:
        """Forget un-flushed verdicts without writing them.

        Used by readonly holders (serve workers) after shipping their
        delta to the owning process — the entries stay in the in-memory
        view, only the outbound list is reset.
        """
        self.pending.clear()

    def merge(self, other: "ProofStore") -> int:
        """Adopt another store's entries; returns how many were taken."""
        taken = 0
        for key, verdict in other.entries.items():
            if self.put(key, verdict):
                taken += 1
        return taken

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.entries)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, directory: str) -> "ProofStore":
        store = cls()
        path = os.path.join(directory, PROOFS_FILENAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return store
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                store.load_errors += 1
                continue
            if not isinstance(record, dict):
                store.load_errors += 1
                continue
            if "format" in record:
                if record.get("format") != FORMAT_VERSION:
                    # Incompatible store: ignore it entirely.
                    return cls(load_errors=index + 1)
                continue
            try:
                key, verdict = Verdict.from_record(record)
            except (KeyError, ValueError, TypeError):
                store.load_errors += 1
                continue
            store.entries[key] = verdict  # last occurrence wins
        return store

    def append_pending(self, directory: str) -> int:
        """Flush accumulated verdicts to disk; returns records written."""
        if not self.pending:
            return 0
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, PROOFS_FILENAME)
        chunks = []
        for key, verdict in self.pending:
            chunks.append(verdict.to_json(key))
            chunks.append("\n")
        payload = "".join(chunks)
        with _FileLock(directory):
            fresh = not os.path.exists(path)
            with open(path, "a", encoding="utf-8") as handle:
                if fresh:
                    handle.write(
                        json.dumps({"format": FORMAT_VERSION}) + "\n"
                    )
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
        written = len(self.pending)
        self.pending.clear()
        return written

    def compact(self, directory: str) -> None:
        """Rewrite the store file without superseded or stale records."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, PROOFS_FILENAME)
        with _FileLock(directory):
            # Merge whatever other writers appended since we loaded so
            # compaction never discards their knowledge.
            on_disk = ProofStore.load(directory)
            for key, verdict in on_disk.entries.items():
                if key not in self.entries:
                    self.entries[key] = verdict
            fd, temp_path = tempfile.mkstemp(
                prefix=".proofs-", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps({"format": FORMAT_VERSION}) + "\n"
                    )
                    for key in sorted(self.entries):
                        handle.write(self.entries[key].to_json(key))
                        handle.write("\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        self.pending.clear()
