"""Configuration of the functional-knowledge cache.

:class:`CacheConfig` travels on
:attr:`repro.sweep.config.EngineConfig.cache` and is consumed by
:class:`repro.cache.SweepCache`.  It deliberately lives in its own
module with no intra-package imports so ``repro.sweep.config`` can
reference it without creating an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheConfig:
    """Knobs of the functional-knowledge cache.

    Parameters
    ----------
    directory:
        Cache directory for cross-run persistence (``proofs.jsonl`` plus
        a lock file).  ``None`` keeps the cache purely in-memory — still
        useful within a run (shared halves of doubled miters, engine →
        SAT hand-off) but nothing survives the process.
    readonly:
        Load the store but never write deltas back to disk.  Used to
        hand portfolio workers a shared snapshot they cannot corrupt
        mid-run (their deltas are merged explicitly on join).
    tt_support_limit:
        Cones whose *functional* support has at most this many PIs are
        keyed by exact truth table; larger cones fall back to the salted
        structural hash.  Tables are Python ints of ``2**k`` bits, so
        keep this small (the default 8 means 256-bit tables).
    npn_limit:
        Truth-table keys for cones with at most this many support
        variables embed the NPN-canonical form computed by
        :func:`repro.synth.npn.npn_canon` (which supports up to 5 vars).
    salt_words:
        64-pattern simulation words mixed into every structural hash.
        The patterns are derived from a fixed seed, so the salt is
        stable across runs while sharpening the hash semantically.
    tt_cone_limit:
        Upper bound on the cone size (AND nodes) walked when computing a
        truth-table key; beyond it the structural key is used instead.
    validate_cex:
        Replay cached NOT-EQUIVALENT counter-examples on the live miter
        before trusting them.  Entries that fail replay are counted as
        ``invalidated`` and treated as misses.  Disabling this is only
        safe when the cache directory is trusted and keyed circuits
        never see SDC-masked patterns.
    shards:
        Number of proof-store shards (``shardNN/`` subdirectories, each
        with its own JSONL file and lock).  ``1`` keeps the classic
        single-file layout; the serve daemon raises it so per-tenant
        flushes and compactions stop contending on one lock.  The count
        must stay constant for the lifetime of a cache directory —
        routing is ``crc32(key) % shards``.
    """

    directory: Optional[str] = None
    readonly: bool = False
    tt_support_limit: int = 8
    npn_limit: int = 5
    salt_words: int = 2
    tt_cone_limit: int = 512
    validate_cex: bool = True
    shards: int = 1

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameter combinations."""
        if self.tt_support_limit < 0:
            raise ValueError("tt_support_limit must be non-negative")
        if self.tt_support_limit > 16:
            raise ValueError(
                "tt_support_limit above 16 would build multi-kilobyte "
                "truth tables per node; use the structural hash instead"
            )
        if not 0 <= self.npn_limit <= 5:
            raise ValueError("npn_limit must be in [0, 5] (npn_canon bound)")
        if self.salt_words < 0:
            raise ValueError("salt_words must be non-negative")
        if self.tt_cone_limit < 1:
            raise ValueError("tt_cone_limit must be positive")
        if not 1 <= self.shards <= 64:
            raise ValueError("shards must be in [1, 64]")
