"""Content-addressed functional-knowledge cache with cross-run warm-start.

The subsystem the incremental-CEC story is built on: cones are keyed by
*what they compute* (NPN-backed truth-table keys for small supports, a
salted structural hash above), verdicts about key pairs are kept in an
append-only JSONL proof store that is safe under concurrent writers,
and the sweep engines consult/record through a per-miter binding.  See
``docs/architecture.md`` ("Functional-knowledge cache").
"""

from repro.cache.config import CacheConfig
from repro.cache.counters import CacheCounters
from repro.cache.fingerprint import MiterFingerprints
from repro.cache.knowledge import BoundCache, CachedPair, SweepCache
from repro.cache.sharding import ShardedProofStore
from repro.cache.store import (
    EQUIVALENT,
    INCONCLUSIVE,
    NONEQUIVALENT,
    ProofStore,
    Verdict,
)

__all__ = [
    "CacheConfig",
    "CacheCounters",
    "MiterFingerprints",
    "BoundCache",
    "CachedPair",
    "SweepCache",
    "ShardedProofStore",
    "ProofStore",
    "Verdict",
    "EQUIVALENT",
    "NONEQUIVALENT",
    "INCONCLUSIVE",
]
