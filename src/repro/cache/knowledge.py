"""The functional-knowledge cache consumed by the sweep engines.

:class:`SweepCache` owns one :class:`~repro.cache.store.ProofStore` and
its cumulative :class:`~repro.cache.counters.CacheCounters`; it lives as
long as a checker (or a whole service process) and is re-*bound* to each
miter it sees.  :class:`BoundCache` pairs the store with the
:class:`~repro.cache.fingerprint.MiterFingerprints` of one concrete
miter, translating literal pairs into content keys in both directions:

- **lookup**: the fingerprint layer may decide the pair outright (both
  truth tables known, or identical keys); otherwise the pair key is
  probed in the store.  A cached NOT-EQUIVALENT is only trusted after
  its counter-example replays successfully on the live miter — replay
  failures are counted ``invalidated``, dropped from the in-memory
  view, and treated as misses (the stale record dies at the next
  compaction).
- **record**: verdicts are stored with provenance (engine, phase
  context, cut size, conflict budget, wall time).  Pairs the
  fingerprint layer can always re-decide from exact truth tables are
  *not* stored — they would be dead weight.

The engine re-binds after every miter reduction; because keys are pure
functions of the logic, knowledge recorded against one binding remains
valid for every later one (and for every later run — the warm start).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.aig.network import Aig
from repro.cache.config import CacheConfig
from repro.cache.counters import CacheCounters
from repro.cache.fingerprint import MiterFingerprints
from repro.obs import get_tracer
from repro.cache.store import (
    EQUIVALENT,
    INCONCLUSIVE,
    NONEQUIVALENT,
    ProofStore,
    Verdict,
)
from repro.simulation.partial import pack_patterns, simulate_words


@dataclass
class CachedPair:
    """A usable answer for one candidate pair.

    ``cex`` (NOT-EQUIVALENT only) is a full PI pattern, already
    validated on the live miter when validation is enabled.
    ``conflict_limit`` (inconclusive only) is the largest SAT budget
    known to have failed on this pair.
    """

    status: str
    cex: Optional[List[int]] = None
    conflict_limit: int = 0

    @property
    def is_equivalent(self) -> bool:
        return self.status == EQUIVALENT

    @property
    def is_nonequivalent(self) -> bool:
        return self.status == NONEQUIVALENT


class SweepCache:
    """Process-wide functional-knowledge cache."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self.config.validate()
        if self.config.directory is not None:
            if self.config.shards > 1:
                from repro.cache.sharding import ShardedProofStore

                self.store = ShardedProofStore.load(
                    self.config.directory, self.config.shards
                )
            else:
                self.store = ProofStore.load(self.config.directory)
        else:
            self.store = ProofStore()
        self.counters = CacheCounters()

    @classmethod
    def from_config(
        cls, config: Optional[CacheConfig]
    ) -> Optional["SweepCache"]:
        """Build a cache when configured, ``None`` otherwise."""
        return cls(config) if config is not None else None

    def bind(
        self,
        miter: Aig,
        fingerprints: Optional[MiterFingerprints] = None,
    ) -> "BoundCache":
        """Attach the cache to one concrete miter.

        ``fingerprints`` injects a prebuilt
        :class:`~repro.cache.fingerprint.MiterFingerprints` — the
        incremental :class:`~repro.sweep.state.SweepState` passes one
        carrying the salt matrix and truth-table memos of the previous
        binding, so a re-bind after a reduction costs a structural-hash
        pass instead of a full re-simulation.
        """
        return BoundCache(self, miter, fingerprints=fingerprints)

    def flush(self) -> int:
        """Persist pending verdicts; returns the records written."""
        if self.config.readonly or self.config.directory is None:
            return 0
        return self.store.append_pending(self.config.directory)

    def compact(self) -> None:
        """Rewrite the store file dropping superseded records."""
        if self.config.readonly or self.config.directory is None:
            return
        self.store.compact(self.config.directory)

    def snapshot(self) -> CacheCounters:
        """Counter snapshot for later per-run deltas via ``diff``."""
        return self.counters.copy()


class BoundCache:
    """A :class:`SweepCache` bound to one miter's fingerprints."""

    def __init__(
        self,
        cache: SweepCache,
        miter: Aig,
        fingerprints: Optional[MiterFingerprints] = None,
    ) -> None:
        self.cache = cache
        self.miter = miter
        if fingerprints is not None and fingerprints.aig is not miter:
            raise ValueError("fingerprints were built for a different miter")
        self.fingerprints = (
            fingerprints
            if fingerprints is not None
            else MiterFingerprints(miter, cache.config)
        )

    @property
    def counters(self) -> CacheCounters:
        return self.cache.counters

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup_pair(
        self, lit_a: int, lit_b: int, want_inconclusive: bool = False
    ) -> Optional[CachedPair]:
        """Best known answer for a pair of literals, or ``None``.

        Inconclusive knowledge is suppressed (and counted as a miss)
        unless ``want_inconclusive`` is set — a pair that defeated one
        cut or one SAT budget may still fall to another, so only callers
        that compare budgets should see those records.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._lookup(lit_a, lit_b, want_inconclusive)
        start = time.perf_counter()
        found = self._lookup(lit_a, lit_b, want_inconclusive)
        tracer.metrics.observe(
            "cache.lookup_seconds", time.perf_counter() - start
        )
        tracer.metrics.counter_add(
            "cache.lookup_hits" if found is not None else "cache.lookup_misses"
        )
        return found

    def _lookup(
        self, lit_a: int, lit_b: int, want_inconclusive: bool
    ) -> Optional[CachedPair]:
        decided = self.fingerprints.decide_pair(lit_a, lit_b)
        if decided is not None:
            status, cex = decided
            self.counters.fingerprint_decided += 1
            return CachedPair(status, cex)
        key = self.fingerprints.pair_key(lit_a, lit_b)
        verdict = self.cache.store.get(key)
        if verdict is None:
            self.counters.misses += 1
            return None
        if verdict.status == NONEQUIVALENT:
            cex = verdict.cex
            valid = (
                cex is not None
                and verdict.num_pis == self.miter.num_pis
                and (
                    not self.cache.config.validate_cex
                    or self._cex_distinguishes(lit_a, lit_b, cex)
                )
            )
            if not valid:
                self.counters.invalidated += 1
                self.cache.store.discard(key)
                return None
            self.counters.hits += 1
            return CachedPair(NONEQUIVALENT, list(cex))
        if verdict.status == INCONCLUSIVE and not want_inconclusive:
            self.counters.misses += 1
            return None
        self.counters.hits += 1
        return CachedPair(
            verdict.status, conflict_limit=verdict.conflict_limit
        )

    def _cex_distinguishes(
        self, lit_a: int, lit_b: int, pattern: List[int]
    ) -> bool:
        if len(pattern) != self.miter.num_pis:
            return False
        words = pack_patterns([pattern], self.miter.num_pis)
        values = simulate_words(self.miter, words)
        val_a = (int(values[lit_a >> 1, 0]) & 1) ^ (lit_a & 1)
        val_b = (int(values[lit_b >> 1, 0]) & 1) ^ (lit_b & 1)
        return val_a != val_b

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_equivalent(
        self,
        lit_a: int,
        lit_b: int,
        engine: str = "sim",
        context: str = "",
        cut_size: int = 0,
        seconds: float = 0.0,
    ) -> None:
        self._record(
            lit_a,
            lit_b,
            Verdict(
                EQUIVALENT,
                num_pis=self.miter.num_pis,
                engine=engine,
                context=context,
                cut_size=cut_size,
                seconds=seconds,
            ),
        )

    def record_nonequivalent(
        self,
        lit_a: int,
        lit_b: int,
        cex: List[int],
        engine: str = "sim",
        context: str = "",
        seconds: float = 0.0,
    ) -> None:
        if len(cex) != self.miter.num_pis:
            return
        self._record(
            lit_a,
            lit_b,
            Verdict(
                NONEQUIVALENT,
                cex=list(cex),
                num_pis=self.miter.num_pis,
                engine=engine,
                context=context,
                seconds=seconds,
            ),
        )

    def record_inconclusive(
        self,
        lit_a: int,
        lit_b: int,
        engine: str = "sat",
        context: str = "",
        conflict_limit: int = 0,
        seconds: float = 0.0,
    ) -> None:
        self._record(
            lit_a,
            lit_b,
            Verdict(
                INCONCLUSIVE,
                num_pis=self.miter.num_pis,
                engine=engine,
                context=context,
                conflict_limit=conflict_limit,
                seconds=seconds,
            ),
        )

    def _record(self, lit_a: int, lit_b: int, verdict: Verdict) -> None:
        fp = self.fingerprints
        # Pairs the fingerprint layer re-decides from exact tables on
        # every lookup would never be read back: don't store them.
        if (
            fp.table_of(lit_a >> 1) is not None
            and fp.table_of(lit_b >> 1) is not None
        ):
            return
        key = fp.pair_key(lit_a, lit_b)
        if self.cache.store.put(key, verdict):
            self.counters.stores += 1

    # ------------------------------------------------------------------
    # Local-cut mismatch memo
    # ------------------------------------------------------------------
    #
    # A local-function mismatch over a cut is not a verdict about the
    # pair (it may be an SDC) — but re-simulating the same pair over the
    # same cut function is guaranteed to mismatch again.  Memoising the
    # (pair, cut-content) combination lets warm runs skip those windows.

    def _mismatch_key(self, lit_a: int, lit_b: int, cut) -> str:
        return (
            "M:"
            + self.fingerprints.pair_key(lit_a, lit_b)
            + "|"
            + self.fingerprints.cut_key(cut)
        )

    def local_mismatch_seen(self, lit_a: int, lit_b: int, cut) -> bool:
        """True when this pair already mismatched over this exact cut."""
        seen = (
            self.cache.store.get(self._mismatch_key(lit_a, lit_b, cut))
            is not None
        )
        if seen:
            self.counters.hits += 1
        return seen

    def record_local_mismatch(
        self, lit_a: int, lit_b: int, cut, context: str = "L"
    ) -> None:
        key = self._mismatch_key(lit_a, lit_b, cut)
        verdict = Verdict(
            INCONCLUSIVE,
            num_pis=self.miter.num_pis,
            engine="sim",
            context=context,
            cut_size=len(cut),
        )
        if self.cache.store.put(key, verdict):
            self.counters.stores += 1
