"""Sharded proof stores for multi-tenant serving.

A single ``proofs.jsonl`` serialises every writer behind one file lock.
That is fine for a portfolio run (the parent is the only writer) but not
for a long-lived daemon flushing deltas for many tenants while queries
are in flight: every flush would contend on the same lock and every
compaction would rewrite the whole store.

:class:`ShardedProofStore` splits the key space over ``n`` sub-stores,
each living in its own ``shardNN/`` subdirectory with an independent
JSONL file and lock.  Routing is a stable content hash
(``crc32(key) % n``), so a key always lands in the same shard across
processes and runs — growing or shrinking the shard count is the only
operation that invalidates placement (old shards are still *read*
correctly only if the count matches; pick the count once per cache
directory).

The class duck-types the :class:`~repro.cache.store.ProofStore` surface
the rest of the package uses (``get``/``put``/``discard``/``merge``,
``pending``, ``append_pending``/``compact``/``load``), so
:class:`~repro.cache.SweepCache` and the portfolio's delta-merge path
work unchanged on top of it.
"""

from __future__ import annotations

import os
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.cache.store import ProofStore, Verdict

__all__ = ["ShardedProofStore", "shard_name"]

#: Largest shard count accepted — beyond this the per-shard files are
#: too small to be worth their directory entries and locks.
MAX_SHARDS = 64


def shard_name(index: int) -> str:
    """Directory name of one shard (``shard00`` … ``shard63``)."""
    return f"shard{index:02d}"


class ShardedProofStore:
    """``n`` independent :class:`ProofStore` instances behind one router."""

    def __init__(self, shards: List[ProofStore]) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self._shards = shards

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def shard_index(self, key: str) -> int:
        """Stable shard of a key (same across processes and runs)."""
        return zlib.crc32(key.encode("utf-8")) % len(self._shards)

    def shard_of(self, key: str) -> ProofStore:
        return self._shards[self.shard_index(key)]

    # ------------------------------------------------------------------
    # ProofStore surface
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Verdict]:
        return self.shard_of(key).get(key)

    def put(self, key: str, verdict: Verdict) -> bool:
        return self.shard_of(key).put(key, verdict)

    def discard(self, key: str) -> None:
        self.shard_of(key).discard(key)

    def merge(self, other) -> int:
        """Adopt another store's entries; returns how many were taken."""
        taken = 0
        for key in other:
            verdict = other.get(key)
            if verdict is not None and self.put(key, verdict):
                taken += 1
        return taken

    @property
    def pending(self) -> List[Tuple[str, Verdict]]:
        """Un-flushed verdicts across all shards (aggregated view)."""
        combined: List[Tuple[str, Verdict]] = []
        for shard in self._shards:
            combined.extend(shard.pending)
        return combined

    def clear_pending(self) -> None:
        """Forget un-flushed verdicts in every shard (delta shipped)."""
        for shard in self._shards:
            shard.clear_pending()

    @property
    def load_errors(self) -> int:
        return sum(shard.load_errors for shard in self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __iter__(self) -> Iterator[str]:
        for shard in self._shards:
            yield from shard

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, directory: str, num_shards: int) -> "ShardedProofStore":
        """Load every shard of a cache directory (missing ones start empty)."""
        if not 1 <= num_shards <= MAX_SHARDS:
            raise ValueError(
                f"shard count must be in [1, {MAX_SHARDS}], got {num_shards}"
            )
        return cls(
            [
                ProofStore.load(os.path.join(directory, shard_name(i)))
                for i in range(num_shards)
            ]
        )

    def append_pending(self, directory: str) -> int:
        """Flush each shard's pending verdicts under its own lock."""
        written = 0
        for index, shard in enumerate(self._shards):
            if shard.pending:
                written += shard.append_pending(
                    os.path.join(directory, shard_name(index))
                )
        return written

    def compact(self, directory: str) -> None:
        """Compact every shard file (each under its own lock)."""
        for index, shard in enumerate(self._shards):
            shard.compact(os.path.join(directory, shard_name(index)))
