"""Hit/miss accounting for the functional-knowledge cache.

Kept in a leaf module so :mod:`repro.sweep.report` can attach counters
to engine reports without importing the heavier cache machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CacheCounters:
    """Cumulative cache statistics.

    ``hits``/``misses``/``invalidated`` count proof-store lookups;
    ``fingerprint_decided`` counts pairs the fingerprint layer settled
    outright (both truth tables known, or identical keys) without
    touching the store; ``stores`` counts new or upgraded verdicts
    recorded.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    fingerprint_decided: int = 0

    def copy(self) -> "CacheCounters":
        return CacheCounters(
            self.hits,
            self.misses,
            self.stores,
            self.invalidated,
            self.fingerprint_decided,
        )

    def diff(self, earlier: "CacheCounters") -> "CacheCounters":
        """Counters accumulated since an earlier snapshot."""
        return CacheCounters(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.stores - earlier.stores,
            self.invalidated - earlier.invalidated,
            self.fingerprint_decided - earlier.fingerprint_decided,
        )

    def add(self, other: "CacheCounters") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.invalidated += other.invalidated
        self.fingerprint_decided += other.fingerprint_decided

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.invalidated

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "fingerprint_decided": self.fingerprint_decided,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CacheCounters":
        return cls(
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            stores=int(data.get("stores", 0)),
            invalidated=int(data.get("invalidated", 0)),
            fingerprint_decided=int(data.get("fingerprint_decided", 0)),
        )

    def summary(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} stores={self.stores} "
            f"invalidated={self.invalidated} "
            f"fingerprint_decided={self.fingerprint_decided}"
        )
