"""Topological utilities: cones, fanout sets and structural supports.

All functions here treat the AIG as read-only and return plain Python or
numpy containers.  The strict id ordering of :class:`~repro.aig.network.Aig`
(fanins smaller than the node) lets every bottom-up computation run as a
single forward sweep, and every top-down one as a single backward sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.aig.network import Aig


def node_levels(aig: Aig) -> np.ndarray:
    """Return the per-node levels (alias of :meth:`Aig.levels`)."""
    return aig.levels()


def collect_cone(aig: Aig, roots: Iterable[int], stop: Iterable[int] = ()) -> List[int]:
    """Collect the transitive fanin cone of ``roots``.

    Returns the node ids of all AND nodes reachable from ``roots`` going
    backwards, stopping at (and excluding) the nodes in ``stop`` and at
    PIs/constant.  The result is sorted, i.e. in topological order.

    ``roots`` are node ids (not literals).  Root nodes themselves are
    included when they are AND nodes not in ``stop``.
    """
    stop_set = set(stop)
    seen: Set[int] = set()
    stack = [r for r in roots if r not in stop_set]
    while stack:
        node = stack.pop()
        if node in seen or node in stop_set or not aig.is_and(node):
            continue
        seen.add(node)
        f0, f1 = aig.fanins(node)
        for fanin in ((f0 >> 1), (f1 >> 1)):
            if fanin not in seen and fanin not in stop_set:
                stack.append(fanin)
    return sorted(seen)


def collect_tfo(aig: Aig, sources: Iterable[int]) -> Set[int]:
    """Return the set of nodes in the transitive fanout of ``sources``.

    The sources themselves are included.  Computed with one forward sweep
    using the topological id order.
    """
    in_tfo = np.zeros(aig.num_nodes, dtype=bool)
    for s in sources:
        in_tfo[s] = True
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        if in_tfo[f0s[i] >> 1] or in_tfo[f1s[i] >> 1]:
            in_tfo[base + i] = True
    return set(np.nonzero(in_tfo)[0].tolist())


def supports(aig: Aig) -> List[Tuple[int, ...]]:
    """Return the structural support of every node as a sorted PI-id tuple.

    Supports are computed bottom-up with interning, so shared cones share
    tuple objects.  The constant node has an empty support; a PI's support
    is itself.

    Note
    ----
    This is O(total support mass).  For very wide networks prefer
    :func:`support_sizes` when only cardinalities are needed, or
    :func:`support` for a single node.
    """
    interned: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    def intern(t: Tuple[int, ...]) -> Tuple[int, ...]:
        return interned.setdefault(t, t)

    result: List[Tuple[int, ...]] = [()]
    for pi in aig.pis():
        result.append(intern((pi,)))
    f0s, f1s = aig.fanin_literals()
    for i in range(aig.num_ands):
        s0 = result[f0s[i] >> 1]
        s1 = result[f1s[i] >> 1]
        if s0 is s1:
            result.append(s0)
        elif not s0:
            result.append(s1)
        elif not s1:
            result.append(s0)
        else:
            merged = tuple(sorted(set(s0) | set(s1)))
            result.append(intern(merged))
    return result


def support(aig: Aig, node: int) -> Tuple[int, ...]:
    """Return the structural support of a single node (sorted PI ids)."""
    seen: Set[int] = set()
    pis: Set[int] = set()
    stack = [node]
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        if aig.is_pi(n):
            pis.add(n)
        elif aig.is_and(n):
            f0, f1 = aig.fanins(n)
            stack.append(f0 >> 1)
            stack.append(f1 >> 1)
    return tuple(sorted(pis))


def support_sizes(aig: Aig, cap: int = 0) -> np.ndarray:
    """Return per-node structural support *sizes*.

    When ``cap`` is positive, supports are tracked exactly only up to
    ``cap`` elements; any node whose support exceeds the cap is reported
    as ``cap + 1``.  The sweeping engine only compares support sizes
    against thresholds (k_P, k_p, k_g), so capping keeps the computation
    cheap on wide networks without changing any decision.
    """
    sizes = np.zeros(aig.num_nodes, dtype=np.int64)
    sets: List[object] = [frozenset()]
    for pi in aig.pis():
        sets.append(frozenset((pi,)))
        sizes[pi] = 1
    overflow = object()
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        s0 = sets[f0s[i] >> 1]
        s1 = sets[f1s[i] >> 1]
        if s0 is overflow or s1 is overflow:
            merged: object = overflow
        elif s0 is s1:
            merged = s0
        else:
            union = s0 | s1  # type: ignore[operator]
            if cap and len(union) > cap:
                merged = overflow
            else:
                merged = union
        sets.append(merged)
        node = base + i
        if merged is overflow:
            sizes[node] = (cap + 1) if cap else -1
        else:
            sizes[node] = len(merged)  # type: ignore[arg-type]
    return sizes


def supports_capped(aig: Aig, cap: int):
    """Per-node structural supports, tracked only up to ``cap`` PIs.

    Returns a list indexed by node id whose entries are frozensets of PI
    ids, or ``None`` for nodes whose support exceeds ``cap``.  The global
    checking phase needs actual support *sets* (to take pair unions) but
    only for nodes under its threshold, which keeps this linear in the
    retained support mass.
    """
    sets: List[Optional[frozenset]] = [frozenset()]
    for pi in aig.pis():
        sets.append(frozenset((pi,)))
    f0s, f1s = aig.fanin_literals()
    for i in range(aig.num_ands):
        s0 = sets[f0s[i] >> 1]
        s1 = sets[f1s[i] >> 1]
        if s0 is None or s1 is None:
            sets.append(None)
            continue
        if s0 is s1 or s1 <= s0:
            sets.append(s0)
        elif s0 <= s1:
            sets.append(s1)
        else:
            union = s0 | s1
            sets.append(union if len(union) <= cap else None)
    return sets


def po_support_sizes(aig: Aig, cap: int = 0) -> List[int]:
    """Return the support size of every PO literal (capped like above)."""
    sizes = support_sizes(aig, cap=cap)
    return [int(sizes[p >> 1]) for p in aig.pos]


def level_batches(aig: Aig, nodes: Sequence[int]) -> List[np.ndarray]:
    """Group ``nodes`` (AND ids) into per-level batches, increasing level.

    This is the host-side scheduling step of level-wise parallel
    simulation: each returned array can be processed with one vectorised
    operation because no node depends on another node of the same level.
    """
    if len(nodes) == 0:
        return []
    arr = np.asarray(nodes, dtype=np.int64)
    levels = aig.levels()[arr]
    order = np.argsort(levels, kind="stable")
    arr = arr[order]
    levels = levels[order]
    boundaries = np.nonzero(np.diff(levels))[0] + 1
    return np.split(arr, boundaries)
