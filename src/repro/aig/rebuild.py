"""Vectorised network rebuild: gather-based fanin remap + array strash.

This module is the hot path behind :func:`repro.aig.transform.cleanup`,
:func:`repro.aig.transform.relabel_compact`,
:func:`repro.aig.transform.rebuild_with_replacements` and the incremental
:class:`repro.sweep.state.SweepState` rebuild.  Instead of walking the
network node by node through a Python loop with dict literal maps, the
whole reduction is expressed as a handful of numpy passes over the flat
fanin arrays:

1. **Chain resolution** — the ``node -> equivalent literal`` replacement
   map is turned into a dense ``res`` array (old node id -> resolved
   literal) by pointer jumping, with explicit cycle detection.
2. **Fixpoint simplify + strash** — repeated rounds of {gather fanins
   through ``res``, sort each pair to ``(lo, hi)``, apply the four
   AND-gate simplifications, dedupe identical fanin-pair keys onto the
   minimum surviving node id} until nothing changes.  Each round is pure
   array code; the number of rounds is bounded by the depth of collapse
   chains, which is tiny in practice.
3. **Reachability + compaction** — a frontier-wave BFS over the resolved
   fanin arrays marks the PO cone, then a prefix-sum renumbering emits
   the compacted network.

The result is *bit-identical* to the sequential
:class:`~repro.aig.builder.AigBuilder` path it replaces: the builder
interns a fanin-pair key on first creation, and creation order equals
old-id order, so "first created" and "minimum old id among survivors"
pick the same winner.  ``tests/test_sweep_state.py`` cross-checks this
equivalence on hundreds of seeded random networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.aig.network import Aig

__all__ = [
    "RebuildResult",
    "reachable_and_mask",
    "rebuild_network",
    "resolve_replacement_chains",
]


@dataclass
class RebuildResult:
    """Outcome of :func:`rebuild_network`.

    Attributes
    ----------
    aig:
        The reduced, compacted network.
    node_map:
        ``int64`` array of length ``old.num_nodes`` mapping every old
        node id to its literal in the new network, or ``-1`` if the node
        was swept away.  Kept nodes always map with phase 0; merged
        nodes map to (possibly complemented) literals of their
        representative.
    rounds:
        Number of simplify/strash fixpoint rounds that ran.
    kept_ands:
        AND positions (old node id minus ``first_and``) of the surviving
        nodes, in new-id order — the gather index that carries any
        per-node row data (signatures, salts) across the rebuild.
    """

    aig: Aig
    node_map: np.ndarray
    rounds: int
    kept_ands: np.ndarray


def _chain_of(replacements: Dict[int, int], start: int) -> str:
    """Render the replacement chain starting at ``start`` for errors."""
    seen = set()
    node = start
    parts = [str(node)]
    while node in replacements and node not in seen:
        seen.add(node)
        node = replacements[node] >> 1
        parts.append(str(node))
    return " -> ".join(parts)


def _find_cycle(replacements: Dict[int, int]) -> Optional[str]:
    """Find one replacement cycle and render it, or return None."""
    for start in replacements:
        node = start
        order: Dict[int, int] = {}
        path = []
        while node in replacements and node not in order:
            order[node] = len(path)
            path.append(node)
            node = replacements[node] >> 1
        if node in order:
            cycle = path[order[node]:] + [node]
            return " -> ".join(str(n) for n in cycle)
    return None


def resolve_replacement_chains(
    num_nodes: int,
    replacements: Dict[int, int],
    enforce_decreasing: bool = True,
) -> np.ndarray:
    """Resolve a replacement map into a dense literal array.

    Returns an ``int64`` array ``res`` of length ``num_nodes`` where
    ``res[v]`` is the literal node ``v`` resolves to after following
    replacement chains to their end: the identity literal ``2*v`` for
    unreplaced nodes, a (possibly complemented) literal of a *live*
    (unreplaced) node otherwise.

    Chains are resolved by vectorised pointer jumping.  A chain that
    never reaches a live literal (a cycle such as ``a -> b -> a``)
    raises :class:`ValueError` naming the offending cycle.  With
    ``enforce_decreasing`` (the default, and the invariant the sweeping
    engine relies on) every chain must also *end* at a literal of a
    strictly smaller node id than the node it replaces; violations raise
    :class:`ValueError` with the resolved chain.
    """
    res = np.arange(num_nodes, dtype=np.int64) * 2
    if not replacements:
        return res
    nodes = np.fromiter(replacements.keys(), dtype=np.int64, count=len(replacements))
    targets = np.fromiter(
        replacements.values(), dtype=np.int64, count=len(replacements)
    )
    if nodes.size and (nodes.min() < 1 or nodes.max() >= num_nodes):
        bad = int(nodes[(nodes < 1) | (nodes >= num_nodes)][0])
        raise ValueError(f"replacement of node {bad} is out of range")
    if targets.size and (targets.min() < 0 or (targets >> 1).max() >= num_nodes):
        bad = int(targets[(targets < 0) | ((targets >> 1) >= num_nodes)][0])
        raise ValueError(f"replacement target literal {bad} is out of range")
    res[nodes] = targets
    # Pointer jumping halves the longest unresolved chain every round,
    # so convergence takes O(log chain-length) rounds.  A cycle never
    # converges; cap the rounds and report the cycle explicitly.
    max_rounds = max(4, int(num_nodes).bit_length() + 2)
    for _ in range(max_rounds):
        step = res[res >> 1] ^ (res & 1)
        if np.array_equal(step, res):
            break
        res = step
    else:
        cycle = _find_cycle(replacements)
        raise ValueError(
            "replacement chain never reaches a live literal "
            f"(cycle: {cycle or 'unknown'})"
        )
    if enforce_decreasing:
        resolved_vars = res[nodes] >> 1
        bad = resolved_vars >= nodes
        if bad.any():
            node = int(nodes[bad][0])
            target = int(replacements[node])
            raise ValueError(
                f"replacement target {target} of node {node} must resolve to "
                f"a smaller id (chain: {_chain_of(replacements, node)})"
            )
    return res


def reachable_and_mask(
    num_nodes: int,
    first_and: int,
    fanin0_vars: np.ndarray,
    fanin1_vars: np.ndarray,
    root_vars: np.ndarray,
) -> np.ndarray:
    """Mark the AND nodes reachable from ``root_vars``.

    ``fanin0_vars``/``fanin1_vars`` are fanin *node ids* indexed by AND
    position (node id minus ``first_and``).  Returns a bool array over
    all node ids where only reachable AND nodes are True — the constant
    node and PIs stay False, matching the historical traversal this
    replaces.  The walk is a frontier-wave BFS: each wave gathers the
    fanins of the newly marked frontier in one vectorised pass, so every
    node is touched exactly once.
    """
    reachable = np.zeros(num_nodes, dtype=bool)
    roots = np.asarray(root_vars, dtype=np.int64)
    frontier = np.unique(roots[roots >= first_and])
    while frontier.size:
        reachable[frontier] = True
        pos = frontier - first_and
        nxt = np.concatenate((fanin0_vars[pos], fanin1_vars[pos]))
        nxt = nxt[nxt >= first_and]
        if nxt.size:
            nxt = np.unique(nxt)
            nxt = nxt[~reachable[nxt]]
        frontier = nxt
    return reachable


def rebuild_network(
    aig: Aig,
    replacements: Optional[Dict[int, int]] = None,
    name: Optional[str] = None,
    *,
    prune: str = "after",
) -> RebuildResult:
    """Rebuild ``aig`` with merges applied, simplified and strashed.

    ``replacements`` maps node ids to the (possibly complemented)
    literals they were proved equivalent to; chains are resolved
    transitively (see :func:`resolve_replacement_chains`).

    ``prune`` selects when unreachable logic is dropped, mirroring the
    two historical builder paths bit-for-bit:

    - ``"after"`` (:func:`~repro.aig.transform.rebuild_with_replacements`
      semantics): every node participates in the simplify/strash
      fixpoint, then the PO cone of the *resolved* structure is kept.
    - ``"before"`` (:func:`~repro.aig.transform.relabel_compact` /
      ``cleanup`` semantics): only nodes reachable in the *original*
      structure participate, and all surviving participants are kept —
      including nodes left dangling when a PO collapsed to a constant,
      exactly as the sequential builder behaves.
    """
    if prune not in ("after", "before"):
        raise ValueError(f"unknown prune mode {prune!r}")
    num_nodes = aig.num_nodes
    base = aig.first_and
    num_ands = aig.num_ands
    f0, f1 = aig.fanin_literals()
    pos_arr = np.asarray(aig.pos, dtype=np.int64)
    res = resolve_replacement_chains(num_nodes, replacements or {})

    and_identity = np.arange(base, num_nodes, dtype=np.int64) * 2
    live = res[base:] == and_identity
    orig_keep: Optional[np.ndarray] = None
    if prune == "before":
        orig_keep = reachable_and_mask(
            num_nodes, base, f0 >> 1, f1 >> 1, pos_arr >> 1
        )
        live &= orig_keep[base:]

    # --- fixpoint: gather-remap fanins, simplify, strash -------------
    rounds = 0
    lo = hi = np.empty(0, dtype=np.int64)
    live_pos = np.nonzero(live)[0]
    while True:
        rounds += 1
        # Fully compress replacement chains before gathering: a fanin
        # may point at a non-live node whose own resolution moved last
        # round, and gathers only follow one link.  Entries strictly
        # decrease along chains, so pointer jumping converges.
        while True:
            step = res[res >> 1] ^ (res & 1)
            if np.array_equal(step, res):
                break
            res = step
        live = res[base:] == and_identity
        if orig_keep is not None:
            live &= orig_keep[base:]
        live_pos = np.nonzero(live)[0]
        a = res[f0[live_pos] >> 1] ^ (f0[live_pos] & 1)
        b = res[f1[live_pos] >> 1] ^ (f1[live_pos] & 1)
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        # The four AigBuilder simplifications, on sorted pairs:
        # AND(0, x) = 0; AND(1, x) = x; AND(x, x) = x; AND(x, !x) = 0.
        val = np.full(live_pos.size, -1, dtype=np.int64)
        mask = lo == 0
        val[mask] = 0
        mask = (lo == 1) & (val < 0)
        val[mask] = hi[mask]
        mask = (lo == hi) & (val < 0)
        val[mask] = lo[mask]
        mask = ((lo ^ 1) == hi) & (val < 0)
        val[mask] = 0
        simplified = val >= 0
        changed = bool(simplified.any())
        if changed:
            res[base + live_pos[simplified]] = val[simplified]
        remaining = ~simplified
        rem_pos = live_pos[remaining]
        if rem_pos.size:
            # Strash: equal (lo, hi) keys collapse onto the minimum old
            # node id, which is the node the sequential builder created
            # first for that key.
            key = lo[remaining] * (2 * num_nodes) + hi[remaining]
            uniq, inverse = np.unique(key, return_inverse=True)
            first = np.full(uniq.size, rem_pos.size, dtype=np.int64)
            order = np.arange(rem_pos.size, dtype=np.int64)
            np.minimum.at(first, inverse, order)
            winner = first[inverse]
            dup = winner < order
            if dup.any():
                res[base + rem_pos[dup]] = (base + rem_pos[winner[dup]]) * 2
                changed = True
        if not changed:
            break

    # The loop exits after a round with no changes, so ``res`` is fully
    # compressed and ``live_pos``/``lo``/``hi`` reflect the final state.
    lo_full = np.zeros(num_ands, dtype=np.int64)
    hi_full = np.zeros(num_ands, dtype=np.int64)
    lo_full[live_pos] = lo
    hi_full[live_pos] = hi
    po_res = res[pos_arr >> 1] ^ (pos_arr & 1)

    if prune == "before":
        kept_pos = live_pos
    else:
        keep_mask = reachable_and_mask(
            num_nodes, base, lo_full >> 1, hi_full >> 1, po_res >> 1
        )
        kept_pos = np.nonzero(keep_mask[base:])[0]

    # --- compaction ---------------------------------------------------
    new_id = np.full(num_nodes, -1, dtype=np.int64)
    new_id[:base] = np.arange(base, dtype=np.int64)
    new_id[base + kept_pos] = base + np.arange(kept_pos.size, dtype=np.int64)
    new_f0 = new_id[lo_full[kept_pos] >> 1] * 2 + (lo_full[kept_pos] & 1)
    new_f1 = new_id[hi_full[kept_pos] >> 1] * 2 + (hi_full[kept_pos] & 1)
    new_pos = (new_id[po_res >> 1] * 2 + (po_res & 1)).tolist()
    new_aig = Aig(
        aig.num_pis, new_f0, new_f1, new_pos, name=name or aig.name
    )

    resolved_vars = res >> 1
    node_map = np.full(num_nodes, -1, dtype=np.int64)
    mapped = new_id[resolved_vars] >= 0
    if orig_keep is not None:
        participates = np.zeros(num_nodes, dtype=bool)
        participates[:base] = True
        participates[base:] = orig_keep[base:]
        mapped &= participates
    node_map[mapped] = new_id[resolved_vars[mapped]] * 2 + (res[mapped] & 1)
    return RebuildResult(
        aig=new_aig, node_map=node_map, rounds=rounds, kept_ands=kept_pos
    )
