"""AIGER file I/O (ASCII ``.aag`` and binary ``.aig``).

Implements the combinational subset of the AIGER 1.9 format: latches are
rejected (this package is about combinational equivalence checking).
The binary writer/reader uses the standard delta varint encoding.
"""

from __future__ import annotations

import os
from typing import BinaryIO, List, Union

from repro.aig.network import Aig

PathLike = Union[str, "os.PathLike[str]"]


def write_aiger(
    aig: Aig,
    path: PathLike,
    binary: bool = True,
    pi_names=None,
    po_names=None,
    comments=(),
) -> None:
    """Write ``aig`` to an AIGER file.

    Binary (``aig``) format is the default; pass ``binary=False`` for the
    human-readable ASCII (``aag``) format.  ``pi_names``/``po_names``
    optionally emit the AIGER symbol table (``i<pos> name`` /
    ``o<pos> name`` lines); ``comments`` go into the comment section.
    """
    with open(path, "wb") as handle:
        if binary:
            _write_binary(aig, handle)
        else:
            _write_ascii(aig, handle)
        _write_symbols(handle, aig, pi_names, po_names, comments)


def read_symbols(path: PathLike):
    """Read the symbol table of an AIGER file.

    Returns ``(pi_names, po_names)`` dictionaries keyed by position.
    The binary AND section is skipped by decoding it, so stray ``i``/
    ``o`` bytes inside the delta encoding cannot be misread as symbols.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    header_end = data.find(b"\n")
    header = data[:header_end].split()
    magic = header[0]
    i, _l, o, a = (int(x) for x in header[2:6])
    cursor = header_end + 1
    if magic == b"aag":
        lines_to_skip = i + o + a
        for _ in range(lines_to_skip):
            cursor = data.find(b"\n", cursor) + 1
    else:
        for _ in range(o):
            cursor = data.find(b"\n", cursor) + 1
        decoded = 0
        while decoded < 2 * a:
            if data[cursor] < 0x80:
                decoded += 1
            cursor += 1
    pi_names = {}
    po_names = {}
    for raw in data[cursor:].split(b"\n"):
        if raw.startswith(b"c"):
            break
        if raw[:1] in (b"i", b"o") and b" " in raw:
            kind = raw[:1]
            head, name = raw.split(b" ", 1)
            try:
                position = int(head[1:])
            except ValueError:
                continue
            target = pi_names if kind == b"i" else po_names
            target[position] = name.decode("utf-8")
    return pi_names, po_names


def _write_symbols(handle, aig, pi_names, po_names, comments) -> None:
    lines = []
    if pi_names:
        for position in sorted(pi_names):
            if not 0 <= position < aig.num_pis:
                raise ValueError(f"PI symbol position {position} out of range")
            lines.append(f"i{position} {pi_names[position]}")
    if po_names:
        for position in sorted(po_names):
            if not 0 <= position < aig.num_pos:
                raise ValueError(f"PO symbol position {position} out of range")
            lines.append(f"o{position} {po_names[position]}")
    if comments:
        lines.append("c")
        lines.extend(str(c) for c in comments)
    if lines:
        handle.write(("\n".join(lines) + "\n").encode("utf-8"))


def read_aiger(path: PathLike) -> Aig:
    """Read a combinational AIGER file (ASCII or binary, autodetected)."""
    with open(path, "rb") as handle:
        data = handle.read()
    header_end = data.find(b"\n")
    if header_end < 0:
        raise ValueError("truncated AIGER file: no header line")
    header = data[:header_end].split()
    if not header or header[0] not in (b"aag", b"aig"):
        raise ValueError("not an AIGER file (missing aag/aig magic)")
    if len(header) < 6:
        raise ValueError("malformed AIGER header")
    m, i, l, o, a = (int(x) for x in header[1:6])
    if l != 0:
        raise ValueError("sequential AIGER files are not supported")
    if m != i + a:
        raise ValueError(f"inconsistent AIGER header: M={m}, I={i}, A={a}")
    body = data[header_end + 1 :]
    if header[0] == b"aag":
        return _parse_ascii(body, i, o, a)
    return _parse_binary(body, i, o, a)


# ----------------------------------------------------------------------
# ASCII format
# ----------------------------------------------------------------------


def _write_ascii(aig: Aig, handle: BinaryIO) -> None:
    m = aig.num_pis + aig.num_ands
    lines = [f"aag {m} {aig.num_pis} 0 {aig.num_pos} {aig.num_ands}"]
    for pi in aig.pis():
        lines.append(str(2 * pi))
    for p in aig.pos:
        lines.append(str(p))
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for idx in range(aig.num_ands):
        node = base + idx
        lines.append(f"{2 * node} {int(f0s[idx])} {int(f1s[idx])}")
    handle.write(("\n".join(lines) + "\n").encode("ascii"))


def _parse_ascii(body: bytes, num_pis: int, num_pos: int, num_ands: int) -> Aig:
    lines = body.decode("ascii").splitlines()
    cursor = 0

    def next_line() -> str:
        nonlocal cursor
        if cursor >= len(lines):
            raise ValueError("truncated ASCII AIGER body")
        line = lines[cursor]
        cursor += 1
        return line

    for expected_pi in range(1, num_pis + 1):
        literal = int(next_line())
        if literal != 2 * expected_pi:
            raise ValueError(
                f"non-canonical PI literal {literal}; expected {2 * expected_pi}"
            )
    pos = [int(next_line()) for _ in range(num_pos)]
    fanin0: List[int] = []
    fanin1: List[int] = []
    for idx in range(num_ands):
        parts = next_line().split()
        if len(parts) != 3:
            raise ValueError(f"malformed AND line: {parts}")
        lhs, rhs0, rhs1 = (int(x) for x in parts)
        expected = 2 * (1 + num_pis + idx)
        if lhs != expected:
            raise ValueError(f"non-canonical AND literal {lhs}; expected {expected}")
        fanin0.append(rhs0)
        fanin1.append(rhs1)
    return Aig(num_pis, fanin0, fanin1, pos)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------


def _encode_varint(value: int, out: bytearray) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_binary(aig: Aig, handle: BinaryIO) -> None:
    m = aig.num_pis + aig.num_ands
    header = f"aig {m} {aig.num_pis} 0 {aig.num_pos} {aig.num_ands}\n"
    handle.write(header.encode("ascii"))
    handle.write(("\n".join(str(p) for p in aig.pos) + "\n").encode("ascii") if aig.pos else b"")
    payload = bytearray()
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for idx in range(aig.num_ands):
        lhs = 2 * (base + idx)
        a, b = int(f0s[idx]), int(f1s[idx])
        if a < b:
            a, b = b, a
        _encode_varint(lhs - a, payload)
        _encode_varint(a - b, payload)
    handle.write(bytes(payload))


def _parse_binary(body: bytes, num_pis: int, num_pos: int, num_ands: int) -> Aig:
    cursor = 0
    pos: List[int] = []
    for _ in range(num_pos):
        end = body.find(b"\n", cursor)
        if end < 0:
            raise ValueError("truncated binary AIGER output section")
        pos.append(int(body[cursor:end]))
        cursor = end + 1

    def next_varint() -> int:
        nonlocal cursor
        value, shift = 0, 0
        while True:
            if cursor >= len(body):
                raise ValueError("truncated binary AIGER AND section")
            byte = body[cursor]
            cursor += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    fanin0: List[int] = []
    fanin1: List[int] = []
    for idx in range(num_ands):
        lhs = 2 * (1 + num_pis + idx)
        delta0 = next_varint()
        delta1 = next_varint()
        a = lhs - delta0
        b = a - delta1
        if a < 0 or b < 0:
            raise ValueError("invalid delta encoding in binary AIGER")
        fanin0.append(b)
        fanin1.append(a)
    return Aig(num_pis, fanin0, fanin1, pos)
