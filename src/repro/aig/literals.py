"""AIGER-style literal encoding.

A *literal* encodes a node reference together with an optional inversion:
``lit = 2 * var + phase`` where ``var`` is the node id and ``phase`` is 1
when the edge is complemented.  Node 0 is the constant-false node, hence
literal 0 is constant false and literal 1 is constant true.

These helpers are deliberately tiny, free functions so that hot loops can
inline the arithmetic directly when needed; they exist to give names to the
bit tricks at API boundaries.
"""

from __future__ import annotations

#: Literal of the constant-false function (node 0, non-inverted).
CONST0 = 0

#: Literal of the constant-true function (node 0, inverted).
CONST1 = 1


def lit(var: int, phase: int = 0) -> int:
    """Return the literal referring to node ``var`` with the given phase."""
    return (var << 1) | phase


def lit_var(literal: int) -> int:
    """Return the node id a literal refers to."""
    return literal >> 1


def lit_cpl(literal: int) -> int:
    """Return 1 if the literal is complemented, else 0."""
    return literal & 1


def lit_not(literal: int) -> int:
    """Return the complement of a literal."""
    return literal ^ 1


def lit_regular(literal: int) -> int:
    """Return the non-complemented literal of the same node."""
    return literal & ~1


def lit_is_const(literal: int) -> bool:
    """Return True if the literal refers to the constant node."""
    return (literal >> 1) == 0
