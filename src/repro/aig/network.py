"""Array-based And-Inverter Graph.

The :class:`Aig` stores the whole network in flat arrays indexed by node id:

- node 0 is the constant-false node,
- nodes ``1 .. num_pis`` are the primary inputs,
- the remaining nodes are two-input AND gates whose fanins are literals
  (see :mod:`repro.aig.literals`) of *strictly smaller* node ids.

The strict id ordering means node ids form a valid topological order, which
the simulators exploit: every bottom-up pass is a single sweep over the
fanin arrays, and per-level batches can be formed with one ``numpy`` pass.

Instances are append-only; structural rewrites (merging equivalent nodes,
removing dangling logic) produce *new* networks via
:mod:`repro.aig.transform`.  This immutability-by-convention keeps the
sweeping engine honest about when node ids are remapped.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.aig.literals import lit_cpl, lit_not, lit_var


class Aig:
    """A combinational And-Inverter Graph.

    Parameters
    ----------
    num_pis:
        Number of primary inputs.
    fanin0, fanin1:
        Fanin literals of the AND nodes, one entry per AND node in id
        order (the AND with id ``num_pis + 1 + i`` has fanins
        ``fanin0[i]`` and ``fanin1[i]``).  Both fanins must refer to
        nodes with smaller ids.
    pos:
        Primary output literals.
    name:
        Optional display name used by reports and benchmarks.
    """

    __slots__ = (
        "num_pis",
        "_fanin0",
        "_fanin1",
        "pos",
        "name",
        "_levels",
        "_fanin_lists",
    )

    def __init__(
        self,
        num_pis: int,
        fanin0: Sequence[int],
        fanin1: Sequence[int],
        pos: Sequence[int],
        name: str = "aig",
    ) -> None:
        if num_pis < 0:
            raise ValueError("num_pis must be non-negative")
        if len(fanin0) != len(fanin1):
            raise ValueError("fanin arrays must have equal length")
        self.num_pis = num_pis
        self._fanin0 = np.asarray(fanin0, dtype=np.int64)
        self._fanin1 = np.asarray(fanin1, dtype=np.int64)
        self.pos: List[int] = list(int(p) for p in pos)
        self.name = name
        self._levels: Optional[np.ndarray] = None
        self._fanin_lists: Optional[tuple] = None
        self._validate()

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def num_ands(self) -> int:
        """Number of AND nodes."""
        return int(self._fanin0.shape[0])

    @property
    def num_nodes(self) -> int:
        """Total number of nodes including the constant node and PIs."""
        return 1 + self.num_pis + self.num_ands

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self.pos)

    @property
    def first_and(self) -> int:
        """Id of the first AND node."""
        return 1 + self.num_pis

    def is_const(self, node: int) -> bool:
        """Return True if ``node`` is the constant-false node."""
        return node == 0

    def is_pi(self, node: int) -> bool:
        """Return True if ``node`` is a primary input."""
        return 1 <= node <= self.num_pis

    def is_and(self, node: int) -> bool:
        """Return True if ``node`` is an AND gate."""
        return self.first_and <= node < self.num_nodes

    def fanins(self, node: int) -> tuple:
        """Return the two fanin literals of an AND node."""
        if not self.is_and(node):
            raise ValueError(f"node {node} is not an AND gate")
        i = node - self.first_and
        return int(self._fanin0[i]), int(self._fanin1[i])

    def fanin_literals(self) -> tuple:
        """Return the raw ``(fanin0, fanin1)`` arrays (AND nodes only)."""
        return self._fanin0, self._fanin1

    def fanin_lists(self) -> tuple:
        """Fanin literals as plain Python lists indexed by *node id*.

        Entries for the constant node and PIs are 0.  Cached — NumPy
        scalar indexing is an order of magnitude slower than list
        indexing, and the cut/window machinery reads fanins millions of
        times per sweep.
        """
        if self._fanin_lists is None:
            pad = [0] * self.first_and
            self._fanin_lists = (
                pad + self._fanin0.tolist(),
                pad + self._fanin1.tolist(),
            )
        return self._fanin_lists

    def ands(self) -> Iterator[int]:
        """Iterate over AND node ids in topological order."""
        return iter(range(self.first_and, self.num_nodes))

    def pis(self) -> Iterator[int]:
        """Iterate over PI node ids."""
        return iter(range(1, self.num_pis + 1))

    # ------------------------------------------------------------------
    # Derived information
    # ------------------------------------------------------------------

    def levels(self) -> np.ndarray:
        """Return the level of every node (PIs and constant are level 0).

        The level of an AND node is ``1 + max(level of fanins)``; the level
        of the network (see :meth:`depth`) is the maximum PO level.  The
        result is cached — the network is append-only so levels never
        change once computed.
        """
        if self._levels is None or self._levels.shape[0] != self.num_nodes:
            levels = np.zeros(self.num_nodes, dtype=np.int64)
            f0, f1 = self._fanin0, self._fanin1
            base = self.first_and
            for i in range(self.num_ands):
                l0 = levels[f0[i] >> 1]
                l1 = levels[f1[i] >> 1]
                levels[base + i] = (l0 if l0 >= l1 else l1) + 1
            self._levels = levels
        return self._levels

    def depth(self) -> int:
        """Return the level of the network (max level over the POs)."""
        if not self.pos:
            return 0
        levels = self.levels()
        return int(max(levels[lit_var(p)] for p in self.pos))

    def fanout_counts(self) -> np.ndarray:
        """Return the number of fanouts of every node.

        PO references count as fanouts, matching the fanout-based cut
        selection heuristic of the paper (§III-C1), where highly observed
        nodes make good cut points.
        """
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(counts, self._fanin0 >> 1, 1)
        np.add.at(counts, self._fanin1 >> 1, 1)
        for p in self.pos:
            counts[lit_var(p)] += 1
        return counts

    # ------------------------------------------------------------------
    # Evaluation (reference semantics, used by tests and CEX replay)
    # ------------------------------------------------------------------

    def evaluate(self, pi_values: Sequence[int]) -> List[int]:
        """Evaluate the network under a single input assignment.

        Parameters
        ----------
        pi_values:
            One 0/1 value per primary input, in PI order.

        Returns
        -------
        list of int
            One 0/1 value per primary output.

        This is the *reference* evaluator: simple, obviously correct and
        used to cross-check the word-parallel simulators and to replay
        counter-examples.
        """
        values = self.evaluate_all(pi_values)
        return [int(values[p >> 1] ^ (p & 1)) for p in self.pos]

    def evaluate_all(self, pi_values: Sequence[int]) -> np.ndarray:
        """Evaluate every node under one assignment; returns 0/1 per node."""
        if len(pi_values) != self.num_pis:
            raise ValueError(
                f"expected {self.num_pis} input values, got {len(pi_values)}"
            )
        values = np.zeros(self.num_nodes, dtype=np.uint8)
        for i, v in enumerate(pi_values):
            values[1 + i] = 1 if v else 0
        f0, f1 = self._fanin0, self._fanin1
        base = self.first_and
        for i in range(self.num_ands):
            a = values[f0[i] >> 1] ^ (f0[i] & 1)
            b = values[f1[i] >> 1] ^ (f1[i] & 1)
            values[base + i] = a & b
        return values

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def lit_level(self, literal: int) -> int:
        """Return the level of the node referred to by a literal."""
        return int(self.levels()[lit_var(literal)])

    def copy(self, name: Optional[str] = None) -> "Aig":
        """Return a deep copy (fresh fanin arrays and PO list)."""
        return Aig(
            self.num_pis,
            self._fanin0.copy(),
            self._fanin1.copy(),
            list(self.pos),
            name=name if name is not None else self.name,
        )

    def __repr__(self) -> str:
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis}, "
            f"ands={self.num_ands}, pos={self.num_pos})"
        )

    def __getstate__(self):
        """Pickle support (``__slots__`` classes need this explicitly).

        Caches are dropped; they rebuild lazily after unpickling.  Used
        by the multiprocessing portfolio checker.
        """
        return {
            "num_pis": self.num_pis,
            "fanin0": self._fanin0,
            "fanin1": self._fanin1,
            "pos": self.pos,
            "name": self.name,
        }

    def __setstate__(self, state) -> None:
        self.__init__(
            state["num_pis"],
            state["fanin0"],
            state["fanin1"],
            state["pos"],
            name=state["name"],
        )

    def _validate(self) -> None:
        base = self.first_and
        f0, f1 = self._fanin0, self._fanin1
        if self.num_ands:
            ids = np.arange(base, base + self.num_ands, dtype=np.int64)
            if np.any((f0 >> 1) >= ids) or np.any((f1 >> 1) >= ids):
                raise ValueError("fanin ids must be smaller than the node id")
            if np.any(f0 < 0) or np.any(f1 < 0):
                raise ValueError("fanin literals must be non-negative")
        for p in self.pos:
            if p < 0 or (p >> 1) >= self.num_nodes:
                raise ValueError(f"PO literal {p} out of range")


def negate_outputs(aig: Aig, which: Optional[Iterable[int]] = None) -> Aig:
    """Return a copy of ``aig`` with the selected POs complemented.

    ``which`` is an iterable of PO indices; all POs are complemented when
    it is omitted.  Used by tests to construct near-miss miters.
    """
    result = aig.copy()
    indices = range(len(result.pos)) if which is None else which
    for i in indices:
        result.pos[i] = lit_not(result.pos[i])
    return result
