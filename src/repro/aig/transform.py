"""Whole-network transforms: cleanup, node merging, ``double``, cones.

These are the structural operations the sweeping engine and the
experimental protocol need:

- :func:`cleanup` removes logic not reachable from the POs and re-hashes
  the rest (ABC ``cleanup`` + implicit strash);
- :func:`rebuild_with_replacements` applies a batch of "node → equivalent
  literal" merges, which is how proved equivalences reduce the miter;
- :func:`double` duplicates a network with fresh PIs/POs, reproducing the
  ABC ``double`` command the paper uses to enlarge benchmarks;
- :func:`cone_aig` extracts the fanin cone of selected POs as a standalone
  network.

The rebuild hot path is vectorised (:mod:`repro.aig.rebuild`): fanins are
remapped with numpy gathers and strashing runs over sorted fanin-pair
keys instead of a per-node Python loop.  The historical sequential
builder implementations are kept as ``*_reference`` functions; the
randomized cross-check in ``tests/test_sweep_state.py`` asserts the two
paths produce bit-identical networks and maps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, lit, lit_var
from repro.aig.network import Aig
from repro.aig.rebuild import reachable_and_mask, rebuild_network


def cleanup(aig: Aig, name: Optional[str] = None) -> Aig:
    """Return a copy without dangling logic, structurally hashed.

    Only AND nodes in the transitive fanin of some PO survive.  PIs are
    always kept (the interface of the network must not change).  Node ids
    are compacted but the relative order is preserved, so the result is
    still topologically sorted.
    """
    return rebuild_network(aig, None, name=name, prune="before").aig


def _map_as_dict(node_map: np.ndarray) -> Dict[int, int]:
    """Convert an array node map to the historical dict form."""
    kept = np.nonzero(node_map >= 0)[0]
    return dict(zip(kept.tolist(), node_map[kept].tolist()))


def relabel_compact(
    aig: Aig, name: Optional[str] = None
) -> Tuple[Aig, Dict[int, int]]:
    """Like :func:`cleanup` but also return the old-node → new-literal map.

    Nodes that were swept away do not appear in the map.
    """
    result = rebuild_network(aig, None, name=name, prune="before")
    return result.aig, _map_as_dict(result.node_map)


def rebuild_with_replacements(
    aig: Aig,
    replacements: Dict[int, int],
    name: Optional[str] = None,
) -> Tuple[Aig, Dict[int, int]]:
    """Merge equivalent nodes and rebuild the network.

    ``replacements`` maps a node id to the literal it is equivalent to
    (possibly complemented).  Chains (a → b, b → c) are resolved
    transitively; every chain must *end* at a live literal of a node
    with a strictly smaller id than the node it replaces — the sweeping
    engine guarantees this because class representatives have the
    minimum id of their class.  A chain that violates the invariant, or
    never terminates (a cycle), raises :class:`ValueError` naming the
    offending chain.

    Returns the reduced, cleaned-up network together with the old-node →
    new-literal map (missing entries were swept away).
    """
    result = rebuild_network(aig, replacements, name=name, prune="after")
    return result.aig, _map_as_dict(result.node_map)


def relabel_compact_reference(
    aig: Aig, name: Optional[str] = None
) -> Tuple[Aig, Dict[int, int]]:
    """Sequential-builder implementation of :func:`relabel_compact`.

    Retained as the independent oracle for the randomized cross-check
    tests; production callers use the vectorised path.
    """
    builder = AigBuilder(aig.num_pis, name=name or aig.name)
    reachable = _reachable_from_pos(aig)
    new_lit: Dict[int, int] = {0: CONST0}
    for pi in aig.pis():
        new_lit[pi] = lit(pi)
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        node = base + i
        if not reachable[node]:
            continue
        a = new_lit[int(f0s[i]) >> 1] ^ (int(f0s[i]) & 1)
        b = new_lit[int(f1s[i]) >> 1] ^ (int(f1s[i]) & 1)
        new_lit[node] = builder.add_and(a, b)
    for p in aig.pos:
        builder.add_po(new_lit[lit_var(p)] ^ (p & 1))
    return builder.build(), new_lit


def rebuild_with_replacements_reference(
    aig: Aig,
    replacements: Dict[int, int],
    name: Optional[str] = None,
) -> Tuple[Aig, Dict[int, int]]:
    """Sequential-builder implementation of :func:`rebuild_with_replacements`.

    Retained as the independent oracle for the randomized cross-check
    tests; production callers use the vectorised path.
    """
    for node, target in replacements.items():
        if lit_var(target) >= node:
            raise ValueError(
                f"replacement target {target} of node {node} must have a smaller id"
            )
    builder = AigBuilder(aig.num_pis, name=name or aig.name)
    new_lit: Dict[int, int] = {0: CONST0}
    for pi in aig.pis():
        if pi in replacements:
            # A PI can only be replaced by the constant or an earlier PI.
            target = replacements[pi]
            new_lit[pi] = new_lit[lit_var(target)] ^ (target & 1)
        else:
            new_lit[pi] = lit(pi)
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        node = base + i
        target = replacements.get(node)
        if target is not None:
            new_lit[node] = new_lit[lit_var(target)] ^ (target & 1)
        else:
            a = new_lit[int(f0s[i]) >> 1] ^ (int(f0s[i]) & 1)
            b = new_lit[int(f1s[i]) >> 1] ^ (int(f1s[i]) & 1)
            new_lit[node] = builder.add_and(a, b)
    for p in aig.pos:
        builder.add_po(new_lit[lit_var(p)] ^ (p & 1))
    reduced = builder.build()
    cleaned, compact_map = relabel_compact_reference(
        reduced, name=name or aig.name
    )
    final_map = {
        node: compact_map[lit_var(l)] ^ (l & 1)
        for node, l in new_lit.items()
        if lit_var(l) in compact_map
    }
    return cleaned, final_map


def double(aig: Aig, times: int = 1) -> Aig:
    """Duplicate the network ``times`` times (ABC ``double``).

    Each application produces a network with two disjoint copies of the
    input: twice the PIs, twice the POs and twice the AND nodes.  This is
    the enlargement protocol used by the paper's experiments ("nxd" in
    benchmark names means n applications of ``double``).
    """
    result = aig
    for _ in range(times):
        builder = AigBuilder(2 * result.num_pis, name=result.name)
        maps = []
        for copy_idx in range(2):
            offset = copy_idx * result.num_pis
            leaf_map = {
                pi: lit(pi + offset) for pi in result.pis()
            }
            maps.append(builder.import_cone(result, leaf_map))
        for copy_idx in range(2):
            mapping = maps[copy_idx]
            for p in result.pos:
                builder.add_po(mapping[lit_var(p)] ^ (p & 1))
        result = builder.build(f"{aig.name}")
    return result


def cone_aig(
    aig: Aig, po_indices: Sequence[int], name: Optional[str] = None
) -> Aig:
    """Extract the fanin cone of the selected POs as a standalone network.

    The result keeps *all* PIs of the original network (so PI indices stay
    meaningful for counter-example replay) but contains only the AND logic
    feeding the selected POs.
    """
    selected = [aig.pos[i] for i in po_indices]
    trimmed = Aig(
        aig.num_pis,
        aig.fanin_literals()[0],
        aig.fanin_literals()[1],
        selected,
        name=name or f"{aig.name}_cone",
    )
    return cleanup(trimmed, name=name or f"{aig.name}_cone")


def compose_pipeline(transforms: Iterable, aig: Aig) -> Aig:
    """Apply a sequence of ``Aig -> Aig`` transforms left to right."""
    result = aig
    for transform in transforms:
        result = transform(result)
    return result


def _reachable_from_pos(aig: Aig) -> np.ndarray:
    """Bool mask over node ids; only POs-reachable AND nodes are True."""
    f0, f1 = aig.fanin_literals()
    roots = np.asarray(aig.pos, dtype=np.int64) >> 1
    return reachable_and_mask(aig.num_nodes, aig.first_and, f0 >> 1, f1 >> 1, roots)
