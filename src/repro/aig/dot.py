"""Graphviz DOT export for visual debugging.

Small networks (counter-example cones, windows, failing cuts) are much
easier to reason about as pictures.  The exporter draws PIs as boxes,
ANDs as circles, POs as double circles; complemented edges are dashed —
the conventional AIG rendering.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Set, Union

from repro.aig.network import Aig

PathLike = Union[str, "os.PathLike[str]"]


def to_dot(
    aig: Aig,
    highlight: Iterable[int] = (),
    title: Optional[str] = None,
) -> str:
    """Render a network as a DOT string.

    ``highlight`` node ids are filled (e.g. a window's cut or a pair of
    candidate nodes under investigation).
    """
    highlighted: Set[int] = set(highlight)
    lines = ["digraph aig {", "  rankdir=BT;"]
    if title or aig.name:
        lines.append(f'  label="{title or aig.name}";')
    lines.append('  node [fontname="monospace"];')
    for pi in aig.pis():
        style = ', style=filled, fillcolor="#ffd27f"' if pi in highlighted else ""
        lines.append(f'  n{pi} [label="x{pi}", shape=box{style}];')
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        node = base + i
        style = (
            ', style=filled, fillcolor="#9fd4ff"'
            if node in highlighted
            else ""
        )
        lines.append(f'  n{node} [label="{node}", shape=circle{style}];')
        for edge in (int(f0s[i]), int(f1s[i])):
            dashed = ", style=dashed" if edge & 1 else ""
            lines.append(f"  n{edge >> 1} -> n{node} [dir=none{dashed}];")
    for idx, po in enumerate(aig.pos):
        lines.append(
            f'  o{idx} [label="po{idx}", shape=doublecircle];'
        )
        dashed = ", style=dashed" if po & 1 else ""
        lines.append(f"  n{po >> 1} -> o{idx} [dir=none{dashed}];")
    lines.append("}")
    return "\n".join(lines)


def write_dot(
    aig: Aig,
    path: PathLike,
    highlight: Iterable[int] = (),
    title: Optional[str] = None,
) -> None:
    """Write the DOT rendering to a file."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(to_dot(aig, highlight=highlight, title=title) + "\n")
