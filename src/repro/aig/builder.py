"""Structurally hashed AIG construction.

:class:`AigBuilder` is the only way networks are created in this code
base.  It interns AND gates by their ordered fanin pair (structural
hashing, "strashing") and applies the standard constant/identity
simplifications, so trivially equal structures share nodes from the
start — exactly what ABC's AIG manager does on construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.aig.literals import CONST0, CONST1, lit, lit_not
from repro.aig.network import Aig


class AigBuilder:
    """Incremental builder for :class:`~repro.aig.network.Aig`.

    Example
    -------
    >>> b = AigBuilder()
    >>> x, y = b.add_pi(), b.add_pi()
    >>> f = b.add_and(x, b.lit_not(y))
    >>> b.add_po(f)
    0
    >>> aig = b.build("xandnoty")
    >>> aig.evaluate([1, 0])
    [1]
    """

    def __init__(self, num_pis: int = 0, name: str = "aig") -> None:
        self.name = name
        self._num_pis = 0
        self._fanin0: List[int] = []
        self._fanin1: List[int] = []
        self._pos: List[int] = []
        self._strash: Dict[Tuple[int, int], int] = {}
        for _ in range(num_pis):
            self.add_pi()

    # ------------------------------------------------------------------
    # Node creation
    # ------------------------------------------------------------------

    @property
    def num_pis(self) -> int:
        """Number of PIs added so far."""
        return self._num_pis

    @property
    def num_ands(self) -> int:
        """Number of AND nodes added so far."""
        return len(self._fanin0)

    @property
    def num_nodes(self) -> int:
        """Total node count (constant + PIs + ANDs)."""
        return 1 + self._num_pis + len(self._fanin0)

    def add_pi(self) -> int:
        """Append a primary input; returns its (non-inverted) literal."""
        if self._fanin0:
            raise RuntimeError("all PIs must be added before AND nodes")
        self._num_pis += 1
        return lit(self._num_pis)

    def add_pis(self, count: int) -> List[int]:
        """Append ``count`` PIs; returns their literals."""
        return [self.add_pi() for _ in range(count)]

    def add_and(self, a: int, b: int) -> int:
        """Return the literal of ``a AND b``, creating a node if needed.

        Applies the one-level simplification rules (x·x = x, x·x' = 0,
        x·1 = x, x·0 = 0) and structural hashing, so the returned literal
        may refer to an existing node or a constant.
        """
        if a > b:
            a, b = b, a
        if a == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if a == b:
            return a
        if a == (b ^ 1):
            return CONST0
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = 1 + self._num_pis + len(self._fanin0)
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._strash[key] = node
        return lit(node)

    def find_and(self, a: int, b: int) -> Optional[int]:
        """Like :meth:`add_and` but never creates a node.

        Returns the literal the conjunction would resolve to via
        simplification or structural hashing, or ``None`` when a new node
        would be needed.  Used by rewriting to estimate candidate costs
        without mutating the builder.
        """
        if a > b:
            a, b = b, a
        if a == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if a == b:
            return a
        if a == (b ^ 1):
            return CONST0
        node = self._strash.get((a, b))
        return None if node is None else lit(node)

    # ------------------------------------------------------------------
    # Derived gates
    # ------------------------------------------------------------------

    def lit_not(self, a: int) -> int:
        """Complement a literal (free in an AIG)."""
        return lit_not(a)

    def add_or(self, a: int, b: int) -> int:
        """Return the literal of ``a OR b``."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        """Return the literal of ``a XOR b`` (two-level AIG expansion)."""
        return lit_not(
            self.add_and(
                lit_not(self.add_and(a, lit_not(b))),
                lit_not(self.add_and(lit_not(a), b)),
            )
        )

    def add_xnor(self, a: int, b: int) -> int:
        """Return the literal of ``a XNOR b``."""
        return lit_not(self.add_xor(a, b))

    def add_mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        """Return ``sel ? then_lit : else_lit``."""
        t = self.add_and(sel, then_lit)
        e = self.add_and(lit_not(sel), else_lit)
        return self.add_or(t, e)

    def add_and_multi(self, literals: Iterable[int]) -> int:
        """Balanced conjunction of an arbitrary number of literals."""
        lits = list(literals)
        if not lits:
            return CONST1
        while len(lits) > 1:
            nxt = []
            for i in range(0, len(lits) - 1, 2):
                nxt.append(self.add_and(lits[i], lits[i + 1]))
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    def add_or_multi(self, literals: Iterable[int]) -> int:
        """Balanced disjunction of an arbitrary number of literals."""
        return lit_not(self.add_and_multi(lit_not(x) for x in literals))

    def add_xor_multi(self, literals: Iterable[int]) -> int:
        """Balanced parity of an arbitrary number of literals."""
        lits = list(literals)
        if not lits:
            return CONST0
        while len(lits) > 1:
            nxt = []
            for i in range(0, len(lits) - 1, 2):
                nxt.append(self.add_xor(lits[i], lits[i + 1]))
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    def add_maj3(self, a: int, b: int, c: int) -> int:
        """Return the 3-input majority ``ab + ac + bc``."""
        return self.add_or(
            self.add_and(a, b),
            self.add_or(self.add_and(a, c), self.add_and(b, c)),
        )

    def add_full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        """Return the ``(sum, carry)`` literals of a full adder."""
        s = self.add_xor(self.add_xor(a, b), cin)
        c = self.add_maj3(a, b, cin)
        return s, c

    # ------------------------------------------------------------------
    # Outputs and finalisation
    # ------------------------------------------------------------------

    def add_po(self, literal: int) -> int:
        """Register a primary output; returns its PO index."""
        if literal < 0 or (literal >> 1) >= self.num_nodes:
            raise ValueError(f"PO literal {literal} out of range")
        self._pos.append(literal)
        return len(self._pos) - 1

    def add_pos(self, literals: Sequence[int]) -> None:
        """Register a sequence of primary outputs."""
        for literal in literals:
            self.add_po(literal)

    def build(self, name: Optional[str] = None) -> Aig:
        """Freeze the builder into an :class:`Aig`."""
        return Aig(
            self._num_pis,
            list(self._fanin0),
            list(self._fanin1),
            list(self._pos),
            name=name if name is not None else self.name,
        )

    # ------------------------------------------------------------------
    # Importing logic from an existing network
    # ------------------------------------------------------------------

    def import_cone(self, aig: Aig, leaf_map: Dict[int, int]) -> Dict[int, int]:
        """Copy logic from ``aig`` into this builder.

        ``leaf_map`` maps node ids of ``aig`` (typically its PIs, but any
        cut works) to literals of this builder.  Every AND node of ``aig``
        reachable through the map is rebuilt here with strashing.  Returns
        the completed node-id → literal map, which includes every AND of
        ``aig`` whose fanin cone is covered by ``leaf_map``.
        """
        mapping = dict(leaf_map)
        mapping[0] = CONST0
        f0s, f1s = aig.fanin_literals()
        base = aig.first_and
        for i in range(aig.num_ands):
            node = base + i
            if node in mapping:
                continue
            v0, v1 = int(f0s[i]) >> 1, int(f1s[i]) >> 1
            if v0 not in mapping or v1 not in mapping:
                continue
            a = mapping[v0] ^ (int(f0s[i]) & 1)
            b = mapping[v1] ^ (int(f1s[i]) & 1)
            mapping[node] = self.add_and(a, b)
        return mapping
