"""And-Inverter Graph (AIG) substrate.

This subpackage provides the circuit representation used throughout the
engine: an array-based AIG with AIGER-style literal encoding, a structural
hashing builder, topological utilities (levels, cones, supports), AIGER
file I/O, miter construction and the network transforms (``double``,
cleanup, cone extraction) needed by the experimental protocol.
"""

from repro.aig.literals import (
    CONST0,
    CONST1,
    lit,
    lit_cpl,
    lit_is_const,
    lit_not,
    lit_regular,
    lit_var,
)
from repro.aig.network import Aig
from repro.aig.builder import AigBuilder
from repro.aig.miter import build_miter, split_miter_po_cones
from repro.aig.traversal import (
    collect_cone,
    collect_tfo,
    node_levels,
    support,
    support_sizes,
    supports,
)
from repro.aig.transform import cleanup, cone_aig, double, relabel_compact
from repro.aig.rebuild import RebuildResult, rebuild_network
from repro.aig.aiger import read_aiger, write_aiger

__all__ = [
    "CONST0",
    "CONST1",
    "Aig",
    "AigBuilder",
    "build_miter",
    "cleanup",
    "collect_cone",
    "collect_tfo",
    "cone_aig",
    "double",
    "lit",
    "lit_cpl",
    "lit_is_const",
    "lit_not",
    "lit_regular",
    "lit_var",
    "node_levels",
    "read_aiger",
    "RebuildResult",
    "rebuild_network",
    "relabel_compact",
    "split_miter_po_cones",
    "support",
    "support_sizes",
    "supports",
    "write_aiger",
]
