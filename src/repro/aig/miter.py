"""Miter construction (Brand, ICCAD'93).

A miter shares the PIs of the two networks being compared and XORs each
corresponding PO pair; the two networks are equivalent iff every miter PO
is constant zero.  Equivalence checking engines in this package all
operate on miters.
"""

from __future__ import annotations

from typing import List, Optional

from repro.aig.builder import AigBuilder
from repro.aig.literals import lit, lit_var
from repro.aig.network import Aig
from repro.aig.transform import cone_aig


def build_miter(aig_a: Aig, aig_b: Aig, name: Optional[str] = None) -> Aig:
    """Build the miter of two networks with matching interfaces.

    Raises
    ------
    ValueError
        If the PI or PO counts differ — correspondence is positional, as
        in ABC's ``miter`` command.
    """
    if aig_a.num_pis != aig_b.num_pis:
        raise ValueError(
            f"PI count mismatch: {aig_a.num_pis} vs {aig_b.num_pis}"
        )
    if aig_a.num_pos != aig_b.num_pos:
        raise ValueError(
            f"PO count mismatch: {aig_a.num_pos} vs {aig_b.num_pos}"
        )
    builder = AigBuilder(aig_a.num_pis, name=name or f"miter_{aig_a.name}")
    leaf_map = {pi: lit(pi) for pi in aig_a.pis()}
    map_a = builder.import_cone(aig_a, leaf_map)
    map_b = builder.import_cone(aig_b, dict(leaf_map))
    for pa, pb in zip(aig_a.pos, aig_b.pos):
        la = map_a[lit_var(pa)] ^ (pa & 1)
        lb = map_b[lit_var(pb)] ^ (pb & 1)
        builder.add_po(builder.add_xor(la, lb))
    return builder.build()


def miter_is_trivially_unsat(miter: Aig) -> bool:
    """Return True when every miter PO is already the constant-0 literal.

    Structural hashing alone proves many easy miters; the engines use this
    as their final success test after reduction.
    """
    return all(p == 0 for p in miter.pos)


def nontrivial_po_indices(miter: Aig) -> List[int]:
    """Indices of miter POs not yet reduced to constant zero."""
    return [i for i, p in enumerate(miter.pos) if p != 0]


def split_miter_po_cones(miter: Aig, group_size: int) -> List[Aig]:
    """Partition the miter POs into groups and extract each group's cone.

    Engines that work PO-by-PO (the BDD engine, and output-partitioned
    SAT sweeping) use this to bound per-subproblem size.
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    groups = [
        list(range(start, min(start + group_size, miter.num_pos)))
        for start in range(0, miter.num_pos, group_size)
    ]
    return [cone_aig(miter, g, name=f"{miter.name}_pos{g[0]}") for g in groups]
