"""Structural invariant checking.

``check_invariants`` audits the representation-level properties the rest
of the code base assumes.  Transform tests call it after every rewrite;
it is intentionally strict — violations indicate a bug in whatever
produced the network, not a recoverable condition.
"""

from __future__ import annotations

from typing import List

from repro.aig.network import Aig


class InvariantViolation(AssertionError):
    """A structural invariant of the AIG representation is broken."""


def check_invariants(aig: Aig, strashed: bool = True) -> None:
    """Raise :class:`InvariantViolation` on any broken invariant.

    Checked properties:

    1. fanin ids strictly smaller than the node id (topological ids);
    2. no AND node references the constant node (the builder's
       simplification rules make that impossible);
    3. no two AND nodes share an ordered fanin pair (structural
       hashing), unless ``strashed=False``;
    4. PO literals reference existing nodes.
    """
    problems = list(iter_violations(aig, strashed=strashed))
    if problems:
        raise InvariantViolation("; ".join(problems))


def iter_violations(aig: Aig, strashed: bool = True) -> List[str]:
    """Collect violation descriptions instead of raising (for tests)."""
    problems: List[str] = []
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    seen_pairs = {}
    for i in range(aig.num_ands):
        node = base + i
        f0, f1 = int(f0s[i]), int(f1s[i])
        if (f0 >> 1) >= node or (f1 >> 1) >= node:
            problems.append(f"node {node} has a non-topological fanin")
        if (f0 >> 1) == 0 or (f1 >> 1) == 0:
            problems.append(f"node {node} references the constant node")
        if strashed:
            key = (f0, f1) if f0 <= f1 else (f1, f0)
            other = seen_pairs.get(key)
            if other is not None:
                problems.append(
                    f"nodes {other} and {node} duplicate fanin pair {key}"
                )
            else:
                seen_pairs[key] = node
    for idx, po in enumerate(aig.pos):
        if po < 0 or (po >> 1) >= aig.num_nodes:
            problems.append(f"PO {idx} literal {po} out of range")
    return problems
