"""Adaptive per-pair engine scheduling (``--sched auto``).

A cost-model dispatcher that routes each candidate equivalence pair to
the predicted-cheapest of four proving lanes (exhaustive-simulation
window, cut-based local check, size-limited BDD, batched incremental
SAT), learning lane latencies online.  See ``docs/scheduling.md``.
"""

from repro.sched.cost import FORCE_ENV, LANES, CostModel
from repro.sched.dispatcher import AdaptiveSweeper
from repro.sched.features import FeatureExtractor, PairFeatures
from repro.sched.lanes import (
    BddLane,
    CutLane,
    LaneOutcome,
    RoundContext,
    RoutedPair,
    SatBatchLane,
    SimLane,
)

__all__ = [
    "AdaptiveSweeper",
    "BddLane",
    "CostModel",
    "CutLane",
    "FeatureExtractor",
    "FORCE_ENV",
    "LANES",
    "LaneOutcome",
    "PairFeatures",
    "RoundContext",
    "RoutedPair",
    "SatBatchLane",
    "SimLane",
]
