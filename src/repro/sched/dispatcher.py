"""The adaptive per-pair scheduler (``--sched auto``).

Replaces the fixed pair pipeline of the residual-SAT stage with
feature-based dispatch: every candidate pair of every refinement round
is scored against four lanes — exhaustive-simulation window, cut-based
local check, size-limited BDD, batched incremental SAT — and routed to
the predicted-cheapest one.  Lane latencies feed back into the
:class:`~repro.sched.cost.CostModel` (ε-greedy, misprediction
penalties), so the routing adapts to the workload within a run, and —
in the serve daemon — across the jobs of one tenant.

Correctness does not depend on the model: lanes only ever *prove* or
*refute* with sound certificates (full-support windows, canonical BDDs,
exact SAT), anything a lane cannot settle reroutes to the batched SAT
backstop, and the final PO proof always runs at the full conflict
limit.  A bad cost model costs time, never the verdict.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

from repro.aig.literals import lit
from repro.aig.miter import build_miter, miter_is_trivially_unsat
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from repro.cache.knowledge import SweepCache
from repro.cubes.lane import CubeLane, prove_pos_with_cubes
from repro.obs import get_tracer
from repro.sat.sweeping import _po_disproof
from repro.sched.cost import LANES, CostModel
from repro.sched.features import FeatureExtractor
from repro.sched.lanes import (
    BddLane,
    CutLane,
    LaneOutcome,
    RoundContext,
    RoutedPair,
    SatBatchLane,
    SimLane,
    _expired,
    prove_pos_batched,
)
from repro.simulation.exhaustive import ExhaustiveSimulator
from repro.sweep.classes import SimulationState
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.report import EngineReport, PhaseRecord, PhaseTimer
from repro.sweep.state import SweepState


class AdaptiveSweeper:
    """Cost-model-dispatched sweeping over a (residual) miter.

    Drop-in peer of :class:`~repro.sat.sweeping.SatSweepChecker`: same
    ``check_miter(miter, state)`` contract, same state-adoption rules,
    same UNDECIDED hand-back shape — but each candidate pair goes to
    whichever engine the cost model predicts is cheapest for it.

    Parameters
    ----------
    config:
        Engine knobs reused by the lanes (``k_g`` caps the sim windows,
        ``k_l``/``C`` drive the cut lane, the memory budget bounds the
        simulator).
    conflict_limit:
        Full SAT budget for the final PO proof; the per-pair batched
        budgets are derived from it (an order of magnitude smaller).
    cost_model:
        Optional externally-owned model; the serve pool passes one per
        tenant so calibration survives across jobs.  A fresh model is
        seeded deterministically otherwise.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        conflict_limit: int = 100_000,
        time_limit: Optional[float] = None,
        max_rounds: int = 16,
        cache: Optional[SweepCache] = None,
        cost_model: Optional[CostModel] = None,
        bdd_node_limit: int = 50_000,
        chunk_size: int = 64,
        sat_round_seconds: float = 1.0,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.conflict_limit = conflict_limit
        self.time_limit = time_limit
        self.max_rounds = max_rounds
        self.cache = cache
        self.model = (
            cost_model
            if cost_model is not None
            else CostModel(seed=self.config.seed, sim_cap=self.config.k_g)
        )
        self.simulator = ExhaustiveSimulator(
            memory_budget_words=self.config.memory_budget_words
        )
        self.lanes = {
            "sim": SimLane(self.config),
            "cut": CutLane(self.config),
            "bdd": BddLane(node_limit=bdd_node_limit),
            "cube": CubeLane(
                self.config,
                conflict_budget=max(200, conflict_limit // 100),
            ),
            "sat": SatBatchLane(
                conflict_budget=max(200, conflict_limit // 100)
            ),
        }
        self.chunk_size = max(1, chunk_size)
        #: Wall-clock slice the in-round SAT batch may spend per round.
        #: Small on purpose: merges from the cheap lanes shrink supports
        #: between rounds, turning SAT-only pairs into sim/cut/BDD pairs
        #: — solving them *now* at seconds each would buy nothing.
        self.sat_round_seconds = sat_round_seconds
        #: Full-budget drain for stalled rounds (the fixed pipeline's
        #: SAT sweep, paid only when every cheaper avenue is dry).
        self._drain_lane = SatBatchLane(conflict_budget=conflict_limit)
        self.rounds = 0

    # ------------------------------------------------------------------

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(
        self,
        miter: Aig,
        state: Optional[Union[SimulationState, SweepState]] = None,
    ) -> CecResult:
        """Run the adaptive sweep on a miter.

        ``state`` follows the same EC-transfer contract as the SAT
        checker: a matching :class:`SweepState` is adopted verbatim
        (signatures, classes and cache fingerprints carried in place), a
        pattern pool is adopted into a fresh state.
        """
        start = time.perf_counter()
        report = EngineReport(initial_ands=miter.num_ands)
        record = PhaseRecord("SCHED")
        sweep = self._adopt_state(miter, state)
        cache_snapshot = (
            self.cache.snapshot() if self.cache is not None else None
        )
        tracer = get_tracer()
        metrics = tracer.metrics
        # Pre-register the dispatch counters so a traced run exports
        # every lane (and the misprediction count) even when zero.
        for lane in LANES:
            metrics.counter_add(f"sched.dispatch.{lane}", 0)
        metrics.counter_add("sched.mispredict", 0)
        metrics.counter_add("sat.batch.pairs", 0)
        metrics.counter_add("sat.batch.solves", 0)

        def finish(result: CecResult) -> CecResult:
            record.miter_ands_after = (
                result.reduced_miter.num_ands if result.reduced_miter else 0
            )
            report.final_ands = record.miter_ands_after
            report.phases.append(record)
            report.total_seconds = time.perf_counter() - start
            if self.cache is not None:
                self.cache.flush()
                report.cache = self.cache.counters.diff(cache_snapshot)
            if tracer.enabled:
                report.metrics = tracer.metrics.as_dict()
            result.report = report
            return result

        deadline = (
            start + self.time_limit if self.time_limit is not None else None
        )
        with tracer.span(
            "sched.check_miter",
            category="sched",
            initial_ands=sweep.network().num_ands,
        ), PhaseTimer(record):
            result = self._sweep(sweep, record, deadline)
        return finish(result)

    # ------------------------------------------------------------------

    def _adopt_state(
        self,
        miter: Aig,
        state: Optional[Union[SimulationState, SweepState]],
    ) -> SweepState:
        if isinstance(state, SweepState) and state.matches(miter):
            metrics = get_tracer().metrics
            metrics.counter_add("sched.state_adopted")
            return state
        sweep = SweepState(
            cleanup(miter),
            num_random_words=self.config.num_random_words,
            seed=self.config.seed,
        )
        if state is not None and state.num_pis == sweep.num_pis:
            pool = state.pool() if isinstance(state, SweepState) else state
            sweep.adopt_pool(pool)
        return sweep

    # ------------------------------------------------------------------

    def _sweep(
        self,
        sweep: SweepState,
        record: PhaseRecord,
        deadline: Optional[float],
    ) -> CecResult:
        miter = sweep.network()
        if miter_is_trivially_unsat(miter):
            return CecResult(CecStatus.EQUIVALENT)
        if any(po == 1 for po in miter.pos):
            return CecResult(CecStatus.NONEQUIVALENT, cex=[0] * miter.num_pis)

        metrics = get_tracer().metrics
        model = self.model
        for _ in range(self.max_rounds):
            miter = sweep.network()
            if _expired(deadline):
                return CecResult(
                    CecStatus.UNDECIDED, reduced_miter=miter, sim_state=sweep
                )
            tables = sweep.tables()
            disproof = _po_disproof(miter, sweep, tables)
            if disproof is not None:
                return disproof
            classes = sweep.classes(tables=tables)
            pairs = [
                (r, n, phase)
                for r, n, phase in classes.all_pairs()
                if miter.is_and(n) or miter.is_pi(n)
            ]
            if not pairs:
                break
            record.candidates += len(pairs)
            bound = sweep.bound_cache(self.cache)
            extractor = FeatureExtractor(
                sweep, cap=max(self.config.k_g, model.bdd_cap)
            )
            class_sizes = extractor.class_sizes(classes)
            merges: Dict[int, Tuple[int, int]] = {}
            cex_patterns: List[List[int]] = []
            ctx = RoundContext(
                state=sweep,
                miter=miter,
                simulator=self.simulator,
                bound=bound,
                deadline=deadline,
            )
            tracer = get_tracer()
            # Route in chunks: lane feedback from early chunks steers
            # the routing of later ones, so a cold model recovers from a
            # bad seed *within* the first round instead of after it.
            # SAT reroutes accumulate across chunks and solve as one
            # batch on a single shared solver at the end of the round.
            sat_pending: List[RoutedPair] = []
            for chunk_start in range(0, len(pairs), self.chunk_size):
                chunk = pairs[chunk_start:chunk_start + self.chunk_size]
                routed: Dict[str, List[RoutedPair]] = {
                    lane: [] for lane in LANES
                }
                for repr_node, node, phase in chunk:
                    # Cache-hit fingerprint: a cached verdict is the
                    # cheapest lane of all — short-circuit before
                    # scoring anything.
                    if bound is not None:
                        known = bound.lookup_pair(
                            lit(repr_node), lit(node, phase),
                            want_inconclusive=False,
                        )
                        if known is not None:
                            if known.is_equivalent:
                                merges[node] = (repr_node, phase)
                                continue
                            if known.is_nonequivalent:
                                cex_patterns.append(known.cex)
                                continue
                    features = extractor.pair(
                        repr_node, node, class_sizes.get(node, 2)
                    )
                    lane = model.choose(features)
                    metrics.counter_add(f"sched.dispatch.{lane}")
                    routed[lane].append(
                        RoutedPair(repr_node, node, phase, features)
                    )
                for lane_name in ("sim", "cut", "bdd", "cube"):
                    lane_pairs = routed[lane_name]
                    if not lane_pairs:
                        continue
                    with tracer.span(
                        f"sched.lane.{lane_name}",
                        category="sched",
                        pairs=len(lane_pairs),
                    ):
                        outcome = self.lanes[lane_name].run(
                            ctx, lane_pairs, model
                        )
                    merges.update(outcome.merges)
                    cex_patterns.extend(outcome.cex_patterns)
                    # Everything a lane could not settle falls through
                    # to the batched SAT backstop of the same round.
                    sat_pending.extend(outcome.unresolved)
                sat_pending.extend(routed["sat"])
            sat_unresolved: List[RoutedPair] = []
            if sat_pending:
                # Shallow cones first (they UNSAT in milliseconds), and
                # only a bounded wall-clock slice: anything the slice
                # cannot settle stays in its class — the next round's
                # merges may shrink it into a cheap lane's reach.
                sat_pending.sort(key=lambda rp: rp.features.level)
                slice_deadline = time.perf_counter() + self.sat_round_seconds
                if deadline is not None:
                    slice_deadline = min(slice_deadline, deadline)
                sat_ctx = RoundContext(
                    state=sweep,
                    miter=miter,
                    simulator=self.simulator,
                    bound=bound,
                    deadline=slice_deadline,
                )
                with tracer.span(
                    "sched.lane.sat", category="sched",
                    pairs=len(sat_pending),
                ):
                    outcome = self.lanes["sat"].run(
                        sat_ctx, sat_pending, model
                    )
                merges.update(outcome.merges)
                cex_patterns.extend(outcome.cex_patterns)
                sat_unresolved = outcome.unresolved
            record.proved += len(merges)
            record.cex += len(cex_patterns)
            self.rounds += 1
            if not merges and not cex_patterns and sat_unresolved:
                # Stalled: the cheap lanes are dry and the SAT slice
                # settled nothing.  Pay the fixed pipeline's price once
                # — a full-budget batched sweep over the survivors —
                # under the overall deadline only.
                with tracer.span(
                    "sched.lane.sat_drain", category="sched",
                    pairs=len(sat_unresolved),
                ):
                    outcome = self._drain_lane.run(
                        ctx, sat_unresolved, model
                    )
                merges.update(outcome.merges)
                cex_patterns.extend(outcome.cex_patterns)
                record.proved += len(outcome.merges)
                record.cex += len(outcome.cex_patterns)
            if cex_patterns:
                sweep.add_cex_patterns(cex_patterns)
            if merges:
                sweep.apply_merges(merges)
            if miter_is_trivially_unsat(sweep.network()):
                return CecResult(CecStatus.EQUIVALENT)
            if _expired(deadline):
                return CecResult(
                    CecStatus.UNDECIDED,
                    reduced_miter=sweep.network(),
                    sim_state=sweep,
                )
            if not merges and not cex_patterns:
                break

        # Final PO proof.  With the cube knob on, predicted-hard POs are
        # raced as distributed cofactor fan-outs first (the fifth lane's
        # out-of-process half); the batched backstop always concludes.
        return prove_pos_with_cubes(
            sweep, self.cache, self.conflict_limit, deadline, record
        )
