"""Lane adapters: one engine probe per routed candidate pair.

Each lane wraps one prover (exhaustive-simulation window, cut-based
local check, size-limited BDD, batched incremental SAT) behind the same
shape: take the pairs the dispatcher routed here, settle what it can,
and hand the rest back as ``unresolved`` — the dispatcher reroutes those
to the SAT backstop, so a lane is free to give up without ever costing
correctness.  Every attempted pair reports its observed latency (and
success/failure) back to the :class:`~repro.sched.cost.CostModel`.

The SAT lane is the batched incremental protocol of the issue: all the
pairs of one round share a single solver instance and lazily-encoded
CNF; each pair is an assumption-guarded query with its own conflict
budget, proved equivalences are asserted into the shared solver so later
queries in the batch reuse them, and the ``sat.batch.pairs`` /
``sat.batch.solves`` counters make the batching observable (pairs must
outnumber solver instances).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aig.literals import CONST0, lit
from repro.aig.miter import miter_is_trivially_unsat
from repro.aig.network import Aig
from repro.aig.traversal import collect_cone
from repro.bdd.manager import ZERO, BddLimitExceeded, BddManager
from repro.bdd.sweeping import node_bdd
from repro.cuts.common import CommonCutBuffer, common_cuts
from repro.cuts.enumeration import CutEnumerator
from repro.cuts.selection import CutSelector
from repro.obs import get_tracer
from repro.sat.cnf import CnfBuilder
from repro.sat.solver import SatSolver, SolveStatus
from repro.sched.cost import CostModel
from repro.sched.features import PairFeatures
from repro.simulation.exhaustive import ExhaustiveSimulator, PairStatus
from repro.simulation.window import Pair, Window, build_pair_window
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.report import PhaseRecord
from repro.sweep.state import SweepState


@dataclass
class RoutedPair:
    """One candidate pair en route to a lane."""

    repr_node: int
    node: int
    phase: int
    features: PairFeatures

    @property
    def lit_r(self) -> int:
        return lit(self.repr_node)

    @property
    def lit_n(self) -> int:
        return lit(self.node, self.phase)


@dataclass
class LaneOutcome:
    """What one lane settled out of its routed pairs."""

    merges: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    cex_patterns: List[List[int]] = field(default_factory=list)
    unresolved: List[RoutedPair] = field(default_factory=list)


@dataclass
class RoundContext:
    """Shared per-round resources handed to every lane."""

    state: SweepState
    miter: Aig
    simulator: ExhaustiveSimulator
    bound: Optional[object]
    deadline: Optional[float]


def _expired(deadline: Optional[float]) -> bool:
    return deadline is not None and time.perf_counter() > deadline


class SimLane:
    """Exhaustive simulation over the pair's support union (a real proof:
    the window covers every input the pair depends on, so EQUAL proves
    and MISMATCH yields a genuine counter-example)."""

    name = "sim"

    def __init__(self, config: EngineConfig) -> None:
        self.config = config

    def run(
        self, ctx: RoundContext, pairs: List[RoutedPair], model: CostModel
    ) -> LaneOutcome:
        out = LaneOutcome()
        miter = ctx.miter
        windows: List[Window] = []
        attempted: List[RoutedPair] = []
        for rp in pairs:
            union = rp.features.union_support
            if union is None or len(union) > self.config.k_g:
                # Only reachable under forcing: choose() never routes a
                # capped-support pair here on its own.
                model.mispredict(self.name)
                out.unresolved.append(rp)
                continue
            windows.append(
                build_pair_window(
                    miter, sorted(union), rp.lit_r, rp.lit_n, rp.node
                )
            )
            attempted.append(rp)
        if not attempted:
            return out
        start = time.perf_counter()
        outcomes = ctx.simulator.run(
            miter, windows, collect_cex=True, skip_oversized=True
        )
        per_pair = (time.perf_counter() - start) / len(attempted)
        by_tag = {o.pair.tag: o for o in outcomes}
        for rp in attempted:
            outcome = by_tag.get(rp.node)
            if outcome is None:
                # Window skipped on the simulator's memory budget.
                model.record(self.name, rp.features, per_pair, resolved=False)
                out.unresolved.append(rp)
                continue
            model.record(self.name, rp.features, per_pair, resolved=True)
            if outcome.status is PairStatus.EQUAL:
                out.merges[rp.node] = (rp.repr_node, rp.phase)
                if ctx.bound is not None:
                    ctx.bound.record_equivalent(
                        rp.lit_r, rp.lit_n, context="SCHED"
                    )
            else:
                pattern = outcome.cex.to_pi_pattern(miter.num_pis)
                out.cex_patterns.append(pattern)
                if ctx.bound is not None:
                    ctx.bound.record_nonequivalent(
                        rp.lit_r, rp.lit_n, pattern, context="SCHED"
                    )
        return out


class CutLane:
    """One priority-cut enumeration pass over the routed pairs' cones.

    Cut-local EQUAL over a common cut proves the pair; a local mismatch
    proves nothing (it may be a satisfiability don't-care), so anything
    not proved comes back unresolved.
    """

    name = "cut"

    def __init__(self, config: EngineConfig, pass_id: int = 0) -> None:
        self.config = config
        # pass_id 0 = rotate through the configured Table I passes, one
        # per invocation, the way the fixed engine's repeated L phases
        # diversify the cuts a surviving pair sees.
        self.pass_id = pass_id
        self._calls = 0

    def _next_pass(self) -> int:
        if self.pass_id:
            return self.pass_id
        passes = self.config.passes or (1,)
        chosen = passes[self._calls % len(passes)]
        self._calls += 1
        return chosen

    def run(
        self, ctx: RoundContext, pairs: List[RoutedPair], model: CostModel
    ) -> LaneOutcome:
        cfg = self.config
        out = LaneOutcome()
        miter = ctx.miter
        attempted: List[RoutedPair] = []
        for rp in pairs:
            if rp.features.node_is_and:
                attempted.append(rp)
            else:
                model.mispredict(self.name)  # PI pairs have no cuts
                out.unresolved.append(rp)
        if not attempted:
            return out
        start = time.perf_counter()
        pair_info = {rp.node: (rp.repr_node, rp.phase) for rp in attempted}
        repr_of: Dict[int, int] = {}
        pair_roots = set()
        for rp in attempted:
            repr_of[rp.node] = rp.repr_node
            repr_of.setdefault(rp.repr_node, rp.repr_node)
            pair_roots.add(rp.node)
            if rp.repr_node != 0:
                pair_roots.add(rp.repr_node)
        needed = set(collect_cone(miter, pair_roots))
        selector = CutSelector.for_network(
            miter, self._next_pass(), cfg.similarity_selection
        )
        enumerator = CutEnumerator(miter, cfg.k_l, cfg.C, selector)
        merges: Dict[int, Tuple[int, int]] = {}
        bound = ctx.bound

        def flush(windows: List[Window]) -> None:
            outcomes = ctx.simulator.run(
                miter, windows, collect_cex=False, skip_oversized=True
            )
            for outcome in outcomes:
                node = outcome.pair.tag
                if outcome.status is PairStatus.EQUAL:
                    if node not in merges:
                        phase = (outcome.pair.lit_a ^ outcome.pair.lit_b) & 1
                        merges[node] = (outcome.pair.lit_a >> 1, phase)
                    if bound is not None and outcome.window is not None:
                        bound.record_equivalent(
                            outcome.pair.lit_a,
                            outcome.pair.lit_b,
                            context="SCHED",
                            cut_size=len(outcome.window.inputs),
                        )
                elif bound is not None and outcome.window is not None:
                    bound.record_local_mismatch(
                        outcome.pair.lit_a,
                        outcome.pair.lit_b,
                        outcome.window.inputs,
                    )

        buffer = CommonCutBuffer(cfg.buffer_capacity, flush)
        for _level, nodes in enumerator.run(repr_of, only=needed):
            batch: List[Window] = []
            for node in nodes:
                info = pair_info.get(node)
                if info is None or node in merges:
                    continue
                repr_node, phase = info
                priority_r = (
                    enumerator.priority_cuts(repr_node)
                    if repr_node != 0
                    else []
                )
                cuts = common_cuts(
                    priority_r,
                    enumerator.priority_cuts(node),
                    cfg.k_l,
                    cfg.max_common_cuts_per_pair,
                )
                pair = Pair(lit(repr_node), lit(node, phase), tag=node)
                for cut in cuts:
                    if bound is not None and bound.local_mismatch_seen(
                        pair.lit_a, pair.lit_b, cut
                    ):
                        continue
                    batch.append(
                        build_pair_window(
                            miter, cut, pair.lit_a, pair.lit_b, node
                        )
                    )
            buffer.insert(batch)
        buffer.drain()
        get_tracer().metrics.counter_add(
            "cuts.expansions", enumerator.expansions
        )
        per_pair = (time.perf_counter() - start) / len(attempted)
        # An unproved pair is NOT a routing mistake here: a local
        # mismatch may be an SDC and the next pass rotation may still
        # prove it (the fixed engine's L phase needs many rounds too).
        # Record latencies neutrally and penalise once per empty batch,
        # or the per-pair penalty caps out in one chunk and the lane —
        # the scheduler's only way to prove wide-support pairs cheaply —
        # goes dark for the rest of the run.
        for rp in attempted:
            resolved = rp.node in merges
            model.record(
                self.name, rp.features, per_pair,
                resolved=resolved, neutral=not resolved,
            )
            if resolved:
                out.merges[rp.node] = merges[rp.node]
            else:
                out.unresolved.append(rp)
        if not merges:
            model.mispredict(self.name)
        return out


class BddLane:
    """Size-limited global BDDs (Kuehlmann-style): identical ids prove,
    a non-zero XOR disproves with a counter-example, node-budget blowout
    leaves the pair (and the rest of the batch) unresolved."""

    name = "bdd"

    def __init__(self, node_limit: int = 100_000) -> None:
        self.node_limit = node_limit

    def run(
        self, ctx: RoundContext, pairs: List[RoutedPair], model: CostModel
    ) -> LaneOutcome:
        out = LaneOutcome()
        miter = ctx.miter
        manager = BddManager(node_limit=self.node_limit)
        node_bdds: Dict[int, int] = {0: ZERO}
        blown = False
        for rp in pairs:
            if blown:
                # The manager saturated earlier in this batch: these
                # pairs were routed here and never got their answer, so
                # they are mispredictions too — this drives the lane
                # penalty to its cap after one blown batch, which is
                # exactly right for BDD-hostile structures (multipliers).
                model.mispredict(self.name)
                out.unresolved.append(rp)
                continue
            if _expired(ctx.deadline):
                out.unresolved.append(rp)
                continue
            start = time.perf_counter()
            try:
                bdd_r = node_bdd(miter, manager, node_bdds, rp.repr_node)
                bdd_n = node_bdd(miter, manager, node_bdds, rp.node)
                if rp.phase:
                    bdd_n = manager.apply_not(bdd_n)
                if bdd_r == bdd_n:
                    equal, assignment = True, None
                else:
                    diff = manager.apply_xor(bdd_r, bdd_n)
                    assignment = manager.any_sat(diff)
                    equal = False
            except BddLimitExceeded:
                # The shared manager is saturated: this pair failed and
                # the rest of the batch cannot build BDDs either.
                model.record(
                    self.name,
                    rp.features,
                    time.perf_counter() - start,
                    resolved=False,
                )
                out.unresolved.append(rp)
                blown = True
                continue
            seconds = time.perf_counter() - start
            model.record(self.name, rp.features, seconds, resolved=True)
            if equal:
                out.merges[rp.node] = (rp.repr_node, rp.phase)
                if ctx.bound is not None:
                    ctx.bound.record_equivalent(
                        rp.lit_r, rp.lit_n, context="SCHED"
                    )
            else:
                assert assignment is not None
                pattern = [
                    assignment.get(i, 0) for i in range(miter.num_pis)
                ]
                out.cex_patterns.append(pattern)
                if ctx.bound is not None:
                    ctx.bound.record_nonequivalent(
                        rp.lit_r, rp.lit_n, pattern, context="SCHED"
                    )
        return out


class SatBatchLane:
    """Batched incremental SAT: one shared solver per round.

    All routed pairs (including every other lane's rerouted leftovers)
    are assumption-guarded queries against a single lazily-encoded CNF;
    proved equivalences are asserted into the shared instance so later
    queries in the batch solve against an already-reduced search space.
    Each pair gets its own conflict budget, scaled with cone depth.
    """

    name = "sat"

    def __init__(self, conflict_budget: int = 1_000) -> None:
        self.conflict_budget = conflict_budget

    def budget_for(self, f: PairFeatures) -> int:
        """Per-pair conflict budget: deeper cones earn more conflicts.

        Kept small on purpose — a pair this budget cannot settle stays
        in its class for the next refinement round, and the final PO
        proof runs at the full limit regardless, so a generous in-round
        budget only buys stalls (the CDCL solver here is interpreted
        Python: ~1k conflicts is already a noticeable pause).
        """
        return int(self.conflict_budget * (1.0 + min(f.level, 96) / 48.0))

    def run(
        self, ctx: RoundContext, pairs: List[RoutedPair], model: CostModel
    ) -> LaneOutcome:
        out = LaneOutcome()
        if not pairs:
            return out
        metrics = get_tracer().metrics
        metrics.counter_add("sat.batch.pairs", len(pairs))
        metrics.counter_add("sat.batch.solves", 1)
        solver = SatSolver()
        cnf = CnfBuilder(ctx.miter, solver)
        bound = ctx.bound
        for rp in pairs:
            if _expired(ctx.deadline):
                out.unresolved.append(rp)
                continue
            budget = self.budget_for(rp.features)
            start = time.perf_counter()
            sel, sol_a, sol_b = cnf.open_pair_query(rp.lit_r, rp.lit_n)
            status = solver.solve(
                assumptions=[sel],
                conflict_limit=budget,
                deadline=ctx.deadline,
            )
            cnf.retire_query(sel)
            seconds = time.perf_counter() - start
            if status is SolveStatus.UNSAT:
                cnf.assert_equal(sol_a, sol_b)
                out.merges[rp.node] = (rp.repr_node, rp.phase)
                model.record(self.name, rp.features, seconds, resolved=True)
                if bound is not None:
                    bound.record_equivalent(
                        rp.lit_r, rp.lit_n, engine="sat", context="SCHED",
                        seconds=seconds,
                    )
            elif status is SolveStatus.SAT:
                pattern = cnf.pi_pattern_from_model()
                out.cex_patterns.append(pattern)
                model.record(self.name, rp.features, seconds, resolved=True)
                if bound is not None:
                    bound.record_nonequivalent(
                        rp.lit_r, rp.lit_n, pattern, engine="sat",
                        context="SCHED", seconds=seconds,
                    )
            else:
                out.unresolved.append(rp)
                model.record(self.name, rp.features, seconds, resolved=False)
                if bound is not None and not _expired(ctx.deadline):
                    bound.record_inconclusive(
                        rp.lit_r, rp.lit_n, engine="sat", context="SCHED",
                        conflict_limit=budget, seconds=seconds,
                    )
        return out


def prove_pos_batched(
    sweep: SweepState,
    cache,
    conflict_limit: int,
    deadline: Optional[float],
    record: PhaseRecord,
) -> CecResult:
    """Prove (or refute) the remaining miter POs on one shared solver.

    The completeness backstop of the adaptive flow: it always runs at
    the *full* conflict limit, so an adaptive run concludes exactly when
    the fixed pipeline's final SAT stage would — lane choices affect
    speed, never the verdict.  POs share the solver the same way batch
    pairs do (``sat.batch.*`` counters included).
    """
    miter = sweep.network()
    bound = sweep.bound_cache(cache)
    tracer = get_tracer()
    solver = SatSolver()
    cnf = CnfBuilder(miter, solver)
    new_pos = list(miter.pos)
    any_unknown = False
    queried = 0
    for i, po in enumerate(miter.pos):
        if po == CONST0:
            continue
        if _expired(deadline):
            any_unknown = True
            break
        record.candidates += 1
        if bound is not None:
            known = bound.lookup_pair(po, CONST0, want_inconclusive=True)
            if known is not None:
                if known.is_equivalent:
                    new_pos[i] = CONST0
                    record.proved += 1
                    continue
                if known.is_nonequivalent:
                    return CecResult(CecStatus.NONEQUIVALENT, cex=known.cex)
                if known.conflict_limit >= conflict_limit:
                    any_unknown = True
                    continue
        po_start = time.perf_counter()
        with tracer.span("sat.po", category="sat", po_index=i):
            sol_po = cnf.literal(po)
            sel = solver.new_var() << 1
            solver.add_clause([sel ^ 1, sol_po])
            status = solver.solve(
                assumptions=[sel],
                conflict_limit=conflict_limit,
                deadline=deadline,
            )
            solver.add_clause([sel ^ 1])
        queried += 1
        po_seconds = time.perf_counter() - po_start
        tracer.metrics.observe("sat.po_seconds", po_seconds)
        if status is SolveStatus.SAT:
            pattern = cnf.pi_pattern_from_model()
            if bound is not None:
                bound.record_nonequivalent(
                    po, CONST0, pattern, engine="sat", context="PO",
                    seconds=po_seconds,
                )
            return CecResult(CecStatus.NONEQUIVALENT, cex=pattern)
        if status is SolveStatus.UNSAT:
            new_pos[i] = CONST0
            solver.add_clause([sol_po ^ 1])
            record.proved += 1
            if bound is not None:
                bound.record_equivalent(
                    po, CONST0, engine="sat", context="PO",
                    seconds=po_seconds,
                )
        else:
            any_unknown = True
            if bound is not None and not _expired(deadline):
                bound.record_inconclusive(
                    po, CONST0, engine="sat", context="PO",
                    conflict_limit=conflict_limit, seconds=po_seconds,
                )
    if queried:
        metrics = tracer.metrics
        metrics.counter_add("sat.batch.pairs", queried)
        metrics.counter_add("sat.batch.solves", 1)
    reduced = sweep.set_pos(new_pos)
    if not any_unknown and miter_is_trivially_unsat(reduced):
        return CecResult(CecStatus.EQUIVALENT)
    return CecResult(
        CecStatus.UNDECIDED, reduced_miter=reduced, sim_state=sweep
    )
