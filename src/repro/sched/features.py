"""Cheap per-pair features off the live :class:`~repro.sweep.state.SweepState`.

The dispatcher needs to predict, *before* running anything, how much
each lane would cost on a candidate pair.  Everything here is either a
per-round linear pass (capped supports, levels — memoised on the state
against the current network) or an O(1) per-pair lookup, so feature
extraction never competes with the engines it is scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.sweep.state import SweepState


@dataclass(frozen=True)
class PairFeatures:
    """Dispatch features of one candidate pair.

    ``union_size`` is ``-1`` when either side's structural support blew
    the extraction cap (the pair is then infeasible for the exhaustive
    simulation lane).  ``agreement_words`` is the signature agreement
    depth: the number of 64-bit pool words on which the pair's class has
    survived refinement so far — deeper agreement means the pair is more
    likely equivalent, which favours proving lanes over refuting ones.
    """

    support_a: int
    support_b: int
    union_size: int
    level: int
    class_size: int
    agreement_words: int
    node_is_and: bool
    #: The actual union support, carried so the sim lane can build its
    #: window without recomputing it (``None`` when capped).
    union_support: Optional[FrozenSet[int]] = None


class FeatureExtractor:
    """Per-round feature tables for one dispatch round.

    Construct once per round (the support/level arrays are memoised on
    the state, so even that is usually a dictionary hit), then call
    :meth:`pair` per candidate pair.
    """

    def __init__(self, state: SweepState, cap: int) -> None:
        self.state = state
        self.cap = cap
        self.miter = state.network()
        self.supports = state.support_sets(cap)
        self.levels = state.levels().tolist()
        self.agreement_words = state.agreement_words

    def class_sizes(self, classes) -> Dict[int, int]:
        """Map every class member to its class size (one pass)."""
        sizes: Dict[int, int] = {}
        for eq_class in classes:
            size = len(eq_class.members)
            for member in eq_class.members:
                sizes[member] = size
        return sizes

    def pair(
        self,
        repr_node: int,
        node: int,
        class_size: int,
    ) -> PairFeatures:
        """Features of one ``(representative, node)`` candidate pair."""
        supp_r = self.supports[repr_node]
        supp_n = self.supports[node]
        union: Optional[FrozenSet[int]] = None
        if supp_r is not None and supp_n is not None:
            union = frozenset(supp_r | supp_n)
        level_r = self.levels[repr_node]
        level_n = self.levels[node]
        return PairFeatures(
            support_a=len(supp_r) if supp_r is not None else -1,
            support_b=len(supp_n) if supp_n is not None else -1,
            union_size=len(union) if union is not None else -1,
            level=max(level_r, level_n),
            class_size=class_size,
            agreement_words=self.agreement_words,
            node_is_and=self.miter.is_and(node),
            union_support=union,
        )
