"""The lane cost model: static seeds corrected by live latency histograms.

Each of the four lanes gets a hand-seeded analytic cost estimate (how
exhaustive simulation scales with support-union size, how SAT setup
amortises with cone depth, …).  The seeds only need to get the *relative*
ordering right on a cold start: every dispatched pair feeds its observed
latency back into a per-lane :class:`~repro.obs.metrics.Histogram`, and
the model rescales its static estimate by the observed-vs-predicted p50
ratio — so a lane that is systematically slower than its seed claims
loses candidates within a few dozen dispatches.  Misprediction (a lane
that fails to resolve a pair it was chosen for — budget blown, support
escaped, BDD exploded) multiplies a per-lane penalty that decays again
on later successes.

Selection is ε-greedy over the predicted costs: with small probability a
random feasible lane is explored, which keeps the histograms of
out-of-favour lanes fresh enough to notice when the workload shifts.

``REPRO_SCHED_FORCE=sim|cut|bdd|sat`` pins every choice to one lane (the
correctness-isolation knob of the property tests); unresolved pairs
still fall through to the batched SAT backstop, so a forced run stays
sound and complete.
"""

from __future__ import annotations

import math
import os
import random
from typing import Dict, Optional

from repro.obs import get_tracer
from repro.obs.metrics import Histogram
from repro.sched.features import PairFeatures

#: The five dispatch lanes, in reroute order (SAT last: it is the
#: completeness backstop every unresolved pair falls through to).
#: ``"cube"`` is gated behind ``REPRO_CUBE_THRESHOLD`` — without the
#: knob its static cost is infeasible and it never wins a dispatch.
LANES = ("sim", "cut", "bdd", "cube", "sat")

#: Mirror of :data:`repro.cubes.lane.THRESHOLD_ENV` (kept literal here:
#: the cost model must stay importable without the cubes package).
CUBE_ENV = "REPRO_CUBE_THRESHOLD"

#: Environment variable forcing every dispatch onto a single lane.
FORCE_ENV = "REPRO_SCHED_FORCE"

INFEASIBLE = math.inf


class CostModel:
    """Per-lane cost prediction with online histogram feedback.

    One instance learns across rounds of one check — or, in the serve
    daemon, across every job of one tenant (the pool keeps the model
    resident per tenant, so the hundredth query dispatches with a
    well-calibrated model).
    """

    def __init__(
        self,
        seed: int = 2025,
        epsilon: float = 0.05,
        sim_cap: int = 14,
        bdd_cap: int = 32,
        min_observations: int = 8,
    ) -> None:
        self.epsilon = epsilon
        self.sim_cap = sim_cap
        self.bdd_cap = bdd_cap
        self.min_observations = min_observations
        self._rng = random.Random(seed)
        #: Observed per-pair latency per lane (log₂ buckets, mergeable).
        self.histograms: Dict[str, Histogram] = {
            lane: Histogram() for lane in LANES
        }
        #: Sum of the static estimates at observation time — the
        #: denominator of the observed/predicted correction ratio.
        self._static_sums: Dict[str, float] = {lane: 0.0 for lane in LANES}
        #: Misprediction penalty multiplier (≥ 1, decays on success).
        self.penalty: Dict[str, float] = {lane: 1.0 for lane in LANES}
        self.dispatched: Dict[str, int] = {lane: 0 for lane in LANES}
        self.mispredicts = 0

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def static_cost(self, lane: str, f: PairFeatures) -> float:
        """Hand-seeded per-pair cost estimate, in (nominal) seconds."""
        if lane == "sim":
            if f.union_size < 0 or f.union_size > self.sim_cap:
                return INFEASIBLE
            # Window simulation is vectorised but exponential in the
            # union support: ~2^(u-6) words per window node.  It is also
            # a *complete* prover below the cap — the paper's core bet —
            # so the seed keeps it cheapest whenever it is feasible.
            words = 1 << max(0, f.union_size - 6)
            return 2e-4 + 5e-8 * (f.level + f.union_size) * words
        if lane == "cut":
            if not f.node_is_and:
                return INFEASIBLE  # PI-class pairs have no cuts
            # Cut enumeration is a pure-Python pass over the pair cones;
            # it amortises well over big classes, badly over singletons.
            return 1.5e-3 + 2e-5 * f.level / max(1, f.class_size - 1)
        if lane == "bdd":
            # Unknown (capped) support keeps BDD feasible at the cap's
            # cost: blowout penalties demote the lane quickly on
            # BDD-hostile structures, while control/majority logic —
            # where wide support is harmless — stays eligible.
            support = f.union_size if f.union_size >= 0 else self.bdd_cap
            if support > self.bdd_cap:
                return INFEASIBLE
            return 4e-4 + 3e-5 * support * (1.0 + f.level / 8.0)
        if lane == "cube":
            # Assumption-split SAT: the same backstop query sliced into
            # 2^k cofactor solves.  Splitting only pays on deep cones
            # (shallow queries UNSAT before the split amortises), so the
            # seed undercuts the SAT lane past ~20 levels — and the lane
            # stays out of the race entirely unless the cube knob is on.
            if os.environ.get(CUBE_ENV) is None:
                return INFEASIBLE
            return 4e-3 + 1.0e-4 * f.level
        if lane == "sat":
            # Always feasible, but CDCL on a non-trivially-equivalent
            # pair is milliseconds even when it wins — seed it as the
            # expensive backstop so cheaper certificates go first.
            return 3e-3 + 1.5e-4 * f.level
        raise ValueError(f"unknown lane {lane!r}")

    def predicted_cost(self, lane: str, f: PairFeatures) -> float:
        """Static seed × online correction × misprediction penalty."""
        base = self.static_cost(lane, f)
        if not math.isfinite(base):
            return base
        hist = self.histograms[lane]
        if hist.count >= self.min_observations:
            predicted_mean = self._static_sums[lane] / hist.count
            observed_p50 = hist.quantile(0.5)
            if predicted_mean > 0 and observed_p50 > 0:
                ratio = observed_p50 / predicted_mean
                base *= min(8.0, max(0.125, ratio))
        return base * self.penalty[lane]

    def forced_lane(self) -> Optional[str]:
        """The ``REPRO_SCHED_FORCE`` lane, if set and valid."""
        forced = os.environ.get(FORCE_ENV)
        return forced if forced in LANES else None

    def choose(self, f: PairFeatures) -> str:
        """Pick the lane for one pair (ε-greedy over predicted cost)."""
        forced = self.forced_lane()
        if forced is not None:
            self.dispatched[forced] += 1
            return forced
        costs = {lane: self.predicted_cost(lane, f) for lane in LANES}
        feasible = [lane for lane in LANES if math.isfinite(costs[lane])]
        # "sat" is always finite, so feasible is never empty.
        if len(feasible) > 1 and self._rng.random() < self.epsilon:
            choice = self._rng.choice(feasible)
        else:
            choice = min(feasible, key=lambda lane: costs[lane])
        self.dispatched[choice] += 1
        return choice

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------

    def record(
        self,
        lane: str,
        f: PairFeatures,
        seconds: float,
        resolved: bool,
        neutral: bool = False,
    ) -> None:
        """Feed one dispatch outcome back into the model.

        ``resolved=False`` is a misprediction: the lane was chosen but
        could not settle the pair (conflict budget blown, BDD node limit
        hit, support escaped the window cap under forcing) — the pair is
        reroute to SAT and the lane's penalty grows.  ``neutral=True``
        observes the latency without touching the penalty, for lanes
        where an unresolved pair is an expected outcome rather than a
        routing mistake (the cut lane: a local mismatch may be an SDC,
        and a later pass may still prove the pair).
        """
        static = self.static_cost(lane, f)
        self._static_sums[lane] += static if math.isfinite(static) else seconds
        self.histograms[lane].observe(seconds)
        metrics = get_tracer().metrics
        metrics.observe(f"sched.lane_seconds.{lane}", seconds)
        if neutral:
            return
        if resolved:
            self.penalty[lane] = max(1.0, self.penalty[lane] * 0.9)
        else:
            self.mispredict(lane)

    def mispredict(self, lane: str) -> None:
        """Penalise a lane that failed a pair without a latency sample
        (batch-level failures: saturated BDD manager, force-routed
        infeasible pairs)."""
        self.mispredicts += 1
        self.penalty[lane] = min(16.0, self.penalty[lane] * 1.5)
        get_tracer().metrics.counter_add("sched.mispredict")

    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Snapshot for stats endpoints and bench payloads."""
        return {
            "dispatched": dict(self.dispatched),
            "mispredicts": self.mispredicts,
            "penalty": {k: round(v, 3) for k, v in self.penalty.items()},
            "observed_p50": {
                lane: self.histograms[lane].quantile(0.5) for lane in LANES
            },
        }
