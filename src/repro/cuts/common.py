"""Common cuts of candidate pairs and the bounded cut buffer.

The common cuts of a pair ``(a, b)`` are Eq. 1 evaluated on the pair's
priority cut sets (without the trivial cuts): every ``u ∪ v`` with
``u ∈ P(a)``, ``v ∈ P(b)`` and ``|u ∪ v| ≤ k_l``.  A cut of ``a`` union a
cut of ``b`` cuts every PI path of both nodes, so each result is a valid
common cut.

:class:`CommonCutBuffer` is the constant-size buffer of Algorithm 2: the
engine inserts the common-cut windows produced at each enumeration level
and flushes a checking batch whenever the next insertion would not fit,
bounding the memory held between exhaustive-simulation calls.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.cuts.cut import Cut
from repro.simulation.window import Window


def common_cuts(
    priority_a: Sequence[Cut],
    priority_b: Sequence[Cut],
    k_l: int,
    max_cuts: int = 0,
) -> List[Cut]:
    """Valid common cuts of a pair from its priority cut sets.

    When the pair's representative is the constant node, callers pass its
    priority set as empty and the member's own cuts act as the common
    cuts (a constant-zero local function proves constant-zero globally);
    this is handled by treating an empty ``priority_a`` as the neutral
    element.

    ``max_cuts`` optionally truncates the result (0 = unlimited); cuts
    are returned smallest-first so truncation keeps the cheapest checks.
    """
    if not priority_a:
        unions = {tuple(c) for c in priority_b if len(c) <= k_l}
    elif not priority_b:
        unions = {tuple(c) for c in priority_a if len(c) <= k_l}
    else:
        unions = set()
        for u in priority_a:
            u_set = set(u)
            for v in priority_b:
                merged = u_set | set(v)
                if len(merged) <= k_l:
                    unions.add(tuple(sorted(merged)))
    ordered = sorted(unions, key=lambda c: (len(c), c))
    if max_cuts and len(ordered) > max_cuts:
        ordered = ordered[:max_cuts]
    return ordered


class CommonCutBuffer:
    """Constant-capacity buffer of local-checking windows (Algorithm 2).

    Parameters
    ----------
    capacity:
        Maximum number of buffered windows.
    flush:
        Callback invoked with the buffered windows when space runs out
        (and by :meth:`drain` for the final partial batch).
    """

    def __init__(
        self, capacity: int, flush: Callable[[List[Window]], None]
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self._flush = flush
        self._windows: List[Window] = []
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._windows)

    def insert(self, windows: Sequence[Window]) -> None:
        """Insert a batch, flushing first if it would not fit.

        A batch larger than the whole capacity is flushed immediately in
        one oversized call rather than dropped — correctness over strict
        memory bounds, matching the spirit of Algorithm 2 line 13.
        """
        windows = list(windows)
        if not windows:
            return
        if len(windows) > self.capacity - len(self._windows):
            self.drain()
        self._windows.extend(windows)
        if len(self._windows) >= self.capacity:
            self.drain()

    def drain(self) -> None:
        """Flush whatever is buffered (Algorithm 2 lines 17-18)."""
        if not self._windows:
            return
        batch = self._windows
        self._windows = []
        self.flushes += 1
        self._flush(batch)
