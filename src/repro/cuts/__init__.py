"""Priority-cut generation for local function checking (§III-C).

- :mod:`repro.cuts.cut` — cut representation and metrics;
- :mod:`repro.cuts.selection` — the Table I criteria passes and the
  similarity metric used for non-representative nodes;
- :mod:`repro.cuts.enumeration` — cut enumeration (Eq. 1) with priority
  cut selection, scheduled by enumeration levels (Eq. 2);
- :mod:`repro.cuts.common` — common cuts of candidate pairs and the
  bounded common-cut buffer of Algorithm 2.
"""

from repro.cuts.cut import Cut, cut_metrics
from repro.cuts.selection import (
    PASS_CRITERIA,
    CutSelector,
    similarity,
)
from repro.cuts.enumeration import CutEnumerator, enumeration_levels
from repro.cuts.common import CommonCutBuffer, common_cuts

__all__ = [
    "PASS_CRITERIA",
    "CommonCutBuffer",
    "Cut",
    "CutEnumerator",
    "CutSelector",
    "common_cuts",
    "cut_metrics",
    "enumeration_levels",
    "similarity",
]
