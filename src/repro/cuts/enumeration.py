"""Cut enumeration with priority cuts (Eq. 1) and enumeration levels (Eq. 2).

For each AND node ``n`` with fanins ``n0, n1`` the candidate cuts are

    E(n) = { u ∪ v : u ∈ P(n0) ∪ {{n0}}, v ∈ P(n1) ∪ {{n1}}, |u ∪ v| ≤ k_l }

and the priority cuts ``P(n)`` are the best ``C`` candidates under the
active :class:`~repro.cuts.selection.CutSelector`.  PIs get their trivial
cut as the sole priority cut.

Enumeration is scheduled by *enumeration levels* rather than plain
topological levels: a non-representative node additionally depends on its
class representative (Eq. 2), because similarity-driven selection needs
the representative's priority cuts to exist first.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.aig.network import Aig
from repro.cuts.cut import Cut
from repro.cuts.selection import CutSelector


def enumeration_levels(aig: Aig, repr_of: Dict[int, int]) -> np.ndarray:
    """Per-node enumeration levels (Eq. 2).

    ``repr_of`` maps each classed node to its class representative; nodes
    absent from the map are treated as representatives.  Representatives
    always have smaller ids than their class members, so a single pass in
    id order computes the recurrence.
    """
    levels = np.zeros(aig.num_nodes, dtype=np.int64)
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for i in range(aig.num_ands):
        node = base + i
        level = max(levels[f0s[i] >> 1], levels[f1s[i] >> 1])
        repr_node = repr_of.get(node, node)
        if repr_node != node:
            level = max(level, levels[repr_node])
        levels[node] = level + 1
    return levels


class CutEnumerator:
    """Single-pass priority-cut enumeration over a network.

    Parameters
    ----------
    aig:
        The network (usually the current miter).
    k_l:
        Maximum cut size; oversized unions are dropped during
        enumeration, bounding the truth-table work of local checking.
    num_priority:
        The ``C`` parameter: how many priority cuts each node keeps.
    selector:
        The criteria of the active pass (Table I) plus the similarity
        preference for non-representatives.
    """

    def __init__(
        self,
        aig: Aig,
        k_l: int,
        num_priority: int,
        selector: CutSelector,
    ) -> None:
        if k_l < 2:
            raise ValueError("k_l must be at least 2")
        if num_priority < 1:
            raise ValueError("need at least one priority cut per node")
        self.aig = aig
        self.k_l = k_l
        self.num_priority = num_priority
        self.selector = selector
        self._priority: List[List[Cut]] = [[] for _ in range(aig.num_nodes)]
        for pi in aig.pis():
            self._priority[pi] = [(pi,)]
        #: Candidate cuts produced by Eq. 1 merges across the whole run
        #: (before priority selection) — the work metric of enumeration.
        self.expansions = 0

    def priority_cuts(self, node: int) -> List[Cut]:
        """Priority cuts computed so far for ``node`` (empty for const)."""
        return self._priority[node]

    def run(
        self,
        repr_of: Dict[int, int],
        only: Optional[set] = None,
    ) -> Iterator[Tuple[int, List[int]]]:
        """Enumerate nodes, yielding ``(level, nodes)`` per level.

        After a level is yielded, the priority cuts of every node up to
        and including that enumeration level are available — in
        particular the representative/non-representative ordering of
        Eq. 2 holds, so callers can generate common cuts for the pairs
        completed at this level (Algorithm 2 lines 6-16).

        ``only`` optionally restricts enumeration to a TFI-closed node
        set (every fanin of a member is a member, a PI, or the constant).
        The engine passes the fanin cones of the surviving candidate
        pairs, which makes late local phases — where few candidates
        remain — much cheaper than enumerating the whole miter.
        """
        levels = enumeration_levels(self.aig, repr_of)
        if only is not None:
            and_nodes = np.asarray(
                sorted(n for n in only if self.aig.is_and(n)), dtype=np.int64
            )
        else:
            and_nodes = np.arange(self.aig.first_and, self.aig.num_nodes)
        if and_nodes.size == 0:
            return
        order = np.argsort(levels[and_nodes], kind="stable")
        sorted_nodes = and_nodes[order]
        sorted_levels = levels[and_nodes][order]
        start = 0
        while start < sorted_nodes.size:
            level = int(sorted_levels[start])
            end = start
            while end < sorted_nodes.size and sorted_levels[end] == level:
                end += 1
            batch = [int(n) for n in sorted_nodes[start:end]]
            for node in batch:
                reference = None
                repr_node = repr_of.get(node, node)
                if repr_node != node and repr_node != 0:
                    reference = self._priority[repr_node]
                self._priority[node] = self._enumerate_node(node, reference)
            yield level, batch
            start = end

    # ------------------------------------------------------------------

    def _enumerate_node(
        self, node: int, reference: Optional[List[Cut]]
    ) -> List[Cut]:
        f0l, f1l = self.aig.fanin_lists()
        f0, f1 = f0l[node], f1l[node]
        candidates = _merge_cut_sets(
            self._cut_choices(f0 >> 1),
            self._cut_choices(f1 >> 1),
            self.k_l,
        )
        self.expansions += len(candidates)
        if not candidates:
            return []
        return self.selector.select(candidates, self.num_priority, reference)

    def _cut_choices(self, node: int) -> List[Cut]:
        """``P(node) ∪ {{node}}`` — the ``u``/``v`` domain of Eq. 1."""
        if node == 0:
            # The constant node never occurs as a fanin of a strashed AND,
            # but stay safe: its only cut is empty.
            return [()]
        return self._priority[node] + [(node,)]


def _merge_cut_sets(
    cuts_a: List[Cut], cuts_b: List[Cut], k_l: int
) -> List[Cut]:
    """All pairwise unions of two cut families, bounded by ``k_l``."""
    result = set()
    for u in cuts_a:
        u_set = set(u)
        for v in cuts_b:
            union = u_set | set(v)
            if len(union) <= k_l:
                result.add(tuple(sorted(union)))
    return list(result)
