"""Priority-cut selection criteria (Table I) and the similarity metric.

The three cut-generation passes rank cuts with different priorities to
diversify the cuts the checker sees:

====  ===========  ===================  ===================
Pass  Main metric  Tie-breaker 1        Tie-breaker 2
====  ===========  ===================  ===================
1     fanout ↑     cut size ↓           level ↓
2     level ↓      cut size ↓           fanout ↑
3     level ↑      cut size ↓           fanout ↑
====  ===========  ===================  ===================

Non-representative nodes additionally prefer cuts *similar* to the
priority cuts of their class representative (§III-C1), which maximises
the number of usable (≤ k_l) common cuts of the pair; the Table I
criteria then break similarity ties.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cuts.cut import Cut, cut_metrics

#: Criteria of Table I: pass id → ordered metric names.  ``fanout`` and
#: ``large level`` are maximised, ``cut size`` and ``small level`` are
#: minimised.
PASS_CRITERIA: Dict[int, Tuple[str, str, str]] = {
    1: ("fanout", "size", "small_level"),
    2: ("small_level", "size", "fanout"),
    3: ("large_level", "size", "fanout"),
}


def similarity(cut: Cut, priority_cuts: Sequence[Cut]) -> float:
    """Jaccard-sum similarity ``s(c, P) = Σ_{c'∈P} |c∩c'| / |c∪c'|``."""
    cut_set = set(cut)
    score = 0.0
    for other in priority_cuts:
        other_set = set(other)
        union = len(cut_set | other_set)
        if union:
            score += len(cut_set & other_set) / union
    return score


class CutSelector:
    """Ranks candidate cuts for one enumeration pass.

    Parameters
    ----------
    pass_id:
        Which Table I pass (1, 2 or 3) supplies the criteria.
    fanout_counts, levels:
        Per-node arrays of the network being enumerated.
    use_similarity:
        When False the similarity preference for non-representatives is
        disabled (the ablation knob for the §III-C1 design choice).
    """

    def __init__(
        self,
        pass_id: int,
        fanout_counts: np.ndarray,
        levels: np.ndarray,
        use_similarity: bool = True,
    ) -> None:
        if pass_id not in PASS_CRITERIA:
            raise ValueError(f"unknown pass id {pass_id}")
        self.pass_id = pass_id
        self.criteria = PASS_CRITERIA[pass_id]
        # Plain lists: scalar indexing into numpy arrays dominates the
        # profile otherwise (millions of metric lookups per sweep).
        self.fanout_counts = (
            fanout_counts.tolist()
            if hasattr(fanout_counts, "tolist")
            else list(fanout_counts)
        )
        self.levels = (
            levels.tolist() if hasattr(levels, "tolist") else list(levels)
        )
        self.use_similarity = use_similarity

    @classmethod
    def for_network(
        cls, aig, pass_id: int = 1, use_similarity: bool = True
    ):
        """Selector over a whole network's metric arrays.

        Convenience constructor for callers that do not already hold the
        fanout/level arrays (the scheduler's cut lane builds one selector
        per dispatch round).
        """
        return cls(pass_id, aig.fanout_counts(), aig.levels(), use_similarity)

    def sort_key(self, cut: Cut) -> Tuple[float, ...]:
        """Ascending sort key implementing the pass criteria.

        Lower keys are better, so maximised metrics are negated.
        """
        avg_fanout, size, avg_level = cut_metrics(
            cut, self.fanout_counts, self.levels
        )
        key: List[float] = []
        for criterion in self.criteria:
            if criterion == "fanout":
                key.append(-avg_fanout)
            elif criterion == "size":
                key.append(float(size))
            elif criterion == "small_level":
                key.append(avg_level)
            elif criterion == "large_level":
                key.append(-avg_level)
            else:  # pragma: no cover - guarded by PASS_CRITERIA
                raise AssertionError(criterion)
        return tuple(key)

    def select(
        self,
        candidates: Sequence[Cut],
        count: int,
        reference_cuts: Optional[Sequence[Cut]] = None,
    ) -> List[Cut]:
        """Pick the best ``count`` cuts.

        ``reference_cuts`` are the representative's priority cuts when the
        node being enumerated is a non-representative: similarity to them
        becomes the primary criterion (ties broken by the pass criteria).
        """
        if reference_cuts is not None and self.use_similarity:
            def key(cut: Cut):
                return (-similarity(cut, reference_cuts),) + self.sort_key(cut)
        else:
            key = self.sort_key
        ranked = sorted(set(candidates), key=key)
        return ranked[:count]
