"""Cut representation.

A cut of a node ``n`` is a set of nodes such that every path from a PI to
``n`` passes through the set (§II-A).  Cuts are stored as sorted tuples of
node ids — hashable (for dedup), ordered (truth-table variable order is
increasing node id, §III-B1) and cheap to merge.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: A cut: sorted tuple of node ids.
Cut = Tuple[int, ...]


def merge_cuts(u: Cut, v: Cut) -> Cut:
    """Sorted union of two cuts."""
    if u == v:
        return u
    return tuple(sorted(set(u) | set(v)))


def cut_metrics(cut: Cut, fanout_counts, levels) -> Tuple[float, int, float]:
    """Return the (avg_fanout, size, avg_level) metric triple of §III-C1.

    - *avg_fanout*: average fanout count of the cut nodes; large values
      mark good cut points (highly observed signals);
    - *size*: cut cardinality; small cuts keep enumeration bounded and
      pull more reconvergence inside the cone (fewer SDCs);
    - *avg_level*: average node level; low levels widen the cone, high
      levels shrink the cut.

    ``fanout_counts``/``levels`` may be any indexable sequence; hot
    callers pass plain lists (see :class:`repro.cuts.selection.CutSelector`).
    """
    size = len(cut)
    if size == 0:
        return 0.0, 0, 0.0
    total_fanout = 0
    total_level = 0
    for node in cut:
        total_fanout += fanout_counts[node]
        total_level += levels[node]
    return total_fanout / size, size, total_level / size
