"""Satisfiability don't-care measurement at cuts.

An SDC of a cut is a combination of cut-node values that no primary
input assignment can produce (§II-A).  The fraction of SDC patterns at a
cut bounds how often local function checking can be fooled: with zero
SDCs, local equality is equivalent to global equality on the cone.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

import numpy as np

from repro.aig.network import Aig
from repro.aig.traversal import support
from repro.simulation.bitops import projection_segment, random_words
from repro.simulation.partial import simulate_words


def cut_support(aig: Aig, cut: Sequence[int]) -> Tuple[int, ...]:
    """Union of the structural supports of the cut nodes (sorted PI ids)."""
    pis: Set[int] = set()
    for node in cut:
        pis.update(support(aig, node))
    return tuple(sorted(pis))


def observed_cut_patterns(
    aig: Aig, cut: Sequence[int], pi_words: np.ndarray
) -> Set[int]:
    """Cut patterns occurring under the given simulation words.

    Patterns are encoded as integers: bit ``i`` is the value of
    ``cut[i]``.  This is the *statistical* view — a subset of the truly
    producible patterns.
    """
    tables = simulate_words(aig, pi_words)
    return _pattern_set(tables, cut)


def exact_cut_patterns(
    aig: Aig, cut: Sequence[int], max_support: int = 20
) -> Tuple[Set[int], int]:
    """All producible cut patterns, by exhaustive simulation.

    Returns ``(observed, total)`` where ``total = 2**len(cut)``; the
    SDCs are the ``total - len(observed)`` missing patterns.  Requires
    the cut's global support to be at most ``max_support`` (the pattern
    space is ``2**support`` — the same exponential wall that motivates
    the paper's local function checking in the first place).
    """
    supp = cut_support(aig, cut)
    if len(supp) > max_support:
        raise ValueError(
            f"cut support {len(supp)} exceeds max_support={max_support}"
        )
    total_patterns = 1 << len(supp)
    num_words = max(1, total_patterns // 64)
    pi_words = np.zeros((aig.num_pis, num_words), dtype=np.uint64)
    for position, pi in enumerate(supp):
        pi_words[pi - 1] = projection_segment(position, 0, num_words)
    tables = simulate_words(aig, pi_words)
    return _pattern_set(tables, cut), 1 << len(cut)


def sdc_ratio(aig: Aig, cut: Sequence[int], max_support: int = 20) -> float:
    """Fraction of cut patterns that are SDCs (0.0 = none, ideal cut)."""
    observed, total = exact_cut_patterns(aig, cut, max_support=max_support)
    return 1.0 - len(observed) / total


def reconvergent_node_count(aig: Aig, root: int, cut: Sequence[int]) -> int:
    """Nodes in the cone of ``root`` (w.r.t. ``cut``) with reconvergence.

    A cone node is *reconvergent* when both of its fanin cones reach a
    common cut leaf — the structure the paper blames for SDCs (§II-A,
    [17], [18]).  More reconvergence inside the cone (rather than across
    the cut) means fewer SDCs at the cut, which is what the "small cut
    size" criterion of Table I is chasing.
    """
    cut_set = set(cut)
    reach = {leaf: frozenset((leaf,)) for leaf in cut_set}
    cone = []
    stack = [root]
    seen = set()
    while stack:
        node = stack.pop()
        if node in seen or node in cut_set or not aig.is_and(node):
            continue
        seen.add(node)
        f0, f1 = aig.fanins(node)
        stack.append(f0 >> 1)
        stack.append(f1 >> 1)
    count = 0
    for node in sorted(seen):
        f0, f1 = aig.fanins(node)
        r0 = _leaves_reached(f0 >> 1, reach)
        r1 = _leaves_reached(f1 >> 1, reach)
        reach[node] = r0 | r1
        if r0 & r1:
            count += 1
    return count


def _leaves_reached(node: int, reach) -> frozenset:
    return reach.get(node, frozenset())


def _pattern_set(tables: np.ndarray, cut: Sequence[int]) -> Set[int]:
    """Distinct cut patterns present in a simulation table."""
    rows = tables[list(cut)]  # (k, W) uint64
    bits = np.unpackbits(
        rows.view(np.uint8), axis=1, bitorder="little"
    )  # (k, W*64)
    weights = (1 << np.arange(len(cut), dtype=np.int64))[:, None]
    indices = (bits.astype(np.int64) * weights).sum(axis=0)
    return set(np.unique(indices).tolist())
