"""Analysis utilities: satisfiability don't-cares and cut quality.

Local function checking (§III-C) is inconclusive exactly when a cut
carries satisfiability don't-cares (SDCs) that make equal global
functions look locally different.  This subpackage measures those SDCs —
exactly, when the cut's global support is small, or statistically via
random simulation otherwise — and quantifies the reconvergence the paper
identifies as their main cause, which is what motivates the cut
selection criteria of Table I.
"""

from repro.analysis.brute import (
    exhaustive_equivalent,
    exhaustive_po_signatures,
)
from repro.analysis.cex_min import (
    care_count,
    distinguishes,
    format_care_pattern,
    minimize_cex,
)
from repro.analysis.sdc import (
    cut_support,
    exact_cut_patterns,
    observed_cut_patterns,
    reconvergent_node_count,
    sdc_ratio,
)

__all__ = [
    "care_count",
    "cut_support",
    "distinguishes",
    "exact_cut_patterns",
    "exhaustive_equivalent",
    "exhaustive_po_signatures",
    "format_care_pattern",
    "minimize_cex",
    "observed_cut_patterns",
    "reconvergent_node_count",
    "sdc_ratio",
]
