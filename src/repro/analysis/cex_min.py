"""Counter-example minimisation.

A raw CEX from a checker assigns every PI, but usually only a handful of
values matter.  Reporting the *care set* makes debugging a disproved
netlist much faster: the don't-care inputs can be struck from the
failure report, and the care pattern often points straight at the buggy
cone.

``minimize_cex`` greedily tests each input against the reference
pattern: an input is a *don't-care* when flipping it alone (all other
inputs at their reference values) preserves the mismatch.  This
single-flip semantics is well-defined and linear in PI count; true
minimum care-set extraction is NP-hard and rarely needed for debugging.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.aig.network import Aig


def distinguishes(aig_a: Aig, aig_b: Aig, pattern: Sequence[int]) -> bool:
    """True when the two circuits differ on the pattern."""
    return aig_a.evaluate(list(pattern)) != aig_b.evaluate(list(pattern))


def minimize_cex(
    aig_a: Aig, aig_b: Aig, pattern: Sequence[int]
) -> List[Optional[int]]:
    """Return the care pattern: 0/1 for required values, None for
    don't-cares.

    Raises ``ValueError`` if ``pattern`` is not actually a
    counter-example for the pair.
    """
    pattern = list(pattern)
    if len(pattern) != aig_a.num_pis:
        raise ValueError(
            f"pattern has {len(pattern)} values, expected {aig_a.num_pis}"
        )
    if not distinguishes(aig_a, aig_b, pattern):
        raise ValueError("pattern is not a counter-example for this pair")
    care: List[Optional[int]] = list(pattern)
    for i in range(len(pattern)):
        flipped = list(pattern)
        flipped[i] ^= 1
        if distinguishes(aig_a, aig_b, flipped):
            # The mismatch survives either value of input i (with every
            # other input at its reference value) → i is a don't-care.
            care[i] = None
    return care


def care_count(care: Sequence[Optional[int]]) -> int:
    """Number of inputs whose value actually matters."""
    return sum(1 for v in care if v is not None)


def format_care_pattern(care: Sequence[Optional[int]]) -> str:
    """Render like ``1--0---1`` (MSB-agnostic, PI order)."""
    return "".join("-" if v is None else str(v) for v in care)
