"""Vectorised exhaustive equivalence checking (reference oracle).

For networks of up to ~20 PIs, simulating *all* input patterns with the
word-parallel simulator is fast (2^20 patterns = 16384 words per node).
This gives an independent, assumption-free oracle the tests use to
validate every other engine — it shares no prover logic with any of
them, only the partial simulator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.aig.network import Aig
from repro.simulation.bitops import projection_segment
from repro.simulation.partial import po_words, simulate_words

#: Practical PI bound: 2^24 patterns = 256 Ki words per node.
MAX_PIS = 24


def exhaustive_equivalent(
    aig_a: Aig, aig_b: Aig
) -> Tuple[bool, Optional[List[int]]]:
    """Exhaustively compare two networks; returns ``(equal, cex)``.

    Requires matching interfaces and at most :data:`MAX_PIS` PIs.
    """
    if aig_a.num_pis != aig_b.num_pis:
        raise ValueError("PI counts differ")
    if aig_a.num_pos != aig_b.num_pos:
        raise ValueError("PO counts differ")
    if aig_a.num_pis > MAX_PIS:
        raise ValueError(
            f"exhaustive check supports at most {MAX_PIS} PIs "
            f"(got {aig_a.num_pis})"
        )
    num_pis = aig_a.num_pis
    num_words = max(1, (1 << num_pis) // 64)
    pi_words = np.zeros((num_pis, num_words), dtype=np.uint64)
    for position in range(num_pis):
        pi_words[position] = projection_segment(position, 0, num_words)
    outs_a = po_words(aig_a, simulate_words(aig_a, pi_words))
    outs_b = po_words(aig_b, simulate_words(aig_b, pi_words))
    diff = outs_a ^ outs_b
    rows, cols = np.nonzero(diff)
    if rows.size == 0:
        return True, None
    word = int(cols[0])
    bits = int(diff[int(rows[0]), word])
    bit = (bits & -bits).bit_length() - 1
    index = word * 64 + bit
    pattern = [(index >> i) & 1 for i in range(num_pis)]
    return False, pattern


def exhaustive_po_signatures(aig: Aig) -> List[int]:
    """Exact global truth tables of every PO, as Python ints.

    Two networks are equivalent iff these lists are equal — a convenient
    canonical form for small-interface regression tests.
    """
    if aig.num_pis > MAX_PIS:
        raise ValueError(f"supports at most {MAX_PIS} PIs")
    num_pis = aig.num_pis
    num_words = max(1, (1 << num_pis) // 64)
    pi_words = np.zeros((num_pis, num_words), dtype=np.uint64)
    for position in range(num_pis):
        pi_words[position] = projection_segment(position, 0, num_words)
    outs = po_words(aig, simulate_words(aig, pi_words))
    mask = (1 << (1 << num_pis)) - 1
    signatures = []
    for row in outs:
        value = 0
        for w, word in enumerate(row.tolist()):
            value |= int(word) << (64 * w)
        signatures.append(value & mask)
    return signatures
