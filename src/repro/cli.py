"""Command-line interface.

Subcommands
-----------
``cec A.aig B.aig``
    Check two AIGER files for equivalence.  ``--engine`` selects the
    checker: ``combined`` (default, the paper's flow), ``sim`` (the
    simulation engine alone), ``sat``, ``bdd``, ``cube`` (distributed
    cube-and-conquer racing every miter PO), ``portfolio`` (staged
    engines) or ``parallel`` (process-per-engine portfolio racing).
``stats X.aig``
    Print size/depth/interface statistics of a network.
``opt IN.aig OUT.aig``
    Optimise with a synthesis script (``--script resyn2|compress2|balance``).
``gen FAMILY WIDTH OUT.aig``
    Generate a benchmark circuit (``multiplier``, ``square``, ``sqrt``,
    ``log2``, ``sin``, ``hyp``, ``voter``, ``adder``).
``miter A.aig B.aig OUT.aig``
    Write the miter of two networks.
``serve --socket PATH``
    Run the CEC-as-a-service daemon: a persistent warm worker pool
    behind a Unix socket (see ``docs/serving.md``).
``submit A.aig B.aig --socket PATH``
    Check a pair against a running daemon.  Repeatable pairs: pass
    ``--pair C.aig D.aig`` for each extra job in the batch.
``top --socket PATH``
    Live terminal view of a running daemon: worker health, per-tenant
    SLO burn rates, admission totals.  ``--once`` for a single frame.

Exit status for ``cec``: 0 equivalent, 1 nonequivalent, 2 undecided,
3 when every portfolio engine failed.  ``submit`` uses the same codes
(a batch exits with the worst verdict across its jobs).

Stream contract: the machine-readable payload (``verdict:``, ``cex:``,
``residue:``, ``time:``, ``cache:``, ``metrics``) goes to *stdout*;
diagnostics — phase progress, portfolio summaries, failures — go
through the :mod:`repro.obs.logging` structured logger on *stderr*, so
``cec … > out.txt`` captures exactly the payload.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional

from repro.aig.aiger import read_aiger, write_aiger
from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.bdd.cec import BddChecker
from repro.bench import generators as gen
from repro.cache.config import CacheConfig
from repro.cache.knowledge import SweepCache
from repro.cubes.lane import THRESHOLD_ENV, WORKERS_ENV
from repro.obs import (
    Tracer,
    configure_logging,
    get_logger,
    get_tracer,
    set_tracer,
)
from repro.obs.logging import LEVELS
from repro.portfolio.checker import CombinedChecker, PortfolioChecker
from repro.portfolio.parallel import ParallelPortfolioChecker, PortfolioError
from repro.sat.sweeping import SatSweepChecker
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecStatus, SimSweepEngine
from repro.sweep.report import PortfolioReport
from repro.synth.balance import balance
from repro.synth.resyn import compress2, resyn2

_GENERATORS: Dict[str, Callable[[int], Aig]] = {
    "adder": gen.adder,
    "bar": gen.barrel_shifter,
    "csel_adder": gen.carry_select_adder,
    "dec": gen.decoder,
    "div": gen.divider,
    "hyp": gen.hyp,
    "int2float": gen.int2float,
    "ks_adder": gen.kogge_stone_adder,
    "log2": gen.log2,
    "max": gen.max_circuit,
    "multiplier": gen.multiplier,
    "priority": gen.priority_encoder,
    "sin": gen.sin_cordic,
    "sqrt": gen.sqrt,
    "square": gen.square,
    "voter": gen.voter,
    "wallace": gen.wallace_multiplier,
}

_SCRIPTS: Dict[str, Callable[[Aig], Aig]] = {
    "resyn2": resyn2,
    "compress2": compress2,
    "balance": balance,
}


def _phase_printer(record) -> None:
    get_logger("cli").info(
        f"phase {record.kind}: {record.seconds:.2f}s, "
        f"{record.proved}/{record.candidates} proved, "
        f"miter -> {record.miter_ands_after} ANDs"
    )


def _make_checker(
    engine: str,
    time_limit: Optional[float],
    verbose: bool = False,
    cache_dir: Optional[str] = None,
    use_shm: Optional[bool] = None,
    sched: str = "auto",
):
    on_phase = _phase_printer if verbose else None

    def knowledge_cache() -> Optional[SweepCache]:
        if cache_dir is None:
            return None
        return SweepCache(CacheConfig(directory=cache_dir))

    if engine == "combined":
        checker = CombinedChecker(
            sat_checker=SatSweepChecker(time_limit=time_limit),
            cache=knowledge_cache(),
            sched=sched,
        )
        checker.engine.on_phase = on_phase
        return checker
    if engine == "sim":
        return SimSweepEngine(
            EngineConfig(), on_phase=on_phase, cache=knowledge_cache()
        )
    if engine == "sat":
        return SatSweepChecker(time_limit=time_limit, cache=knowledge_cache())
    if engine == "bdd":
        return BddChecker(time_limit=time_limit)
    if engine == "cube":
        from repro.cubes.checker import CubeChecker

        return CubeChecker(time_limit=time_limit, cache=knowledge_cache())
    if engine == "portfolio":
        cache = knowledge_cache()
        return PortfolioChecker(
            sat_checker=SatSweepChecker(time_limit=time_limit, cache=cache),
            cache=cache,
        )
    if engine == "parallel":
        return ParallelPortfolioChecker(
            time_limit=time_limit, cache_dir=cache_dir, use_shm=use_shm
        )
    raise ValueError(f"unknown engine {engine!r}")


def cmd_cec(args: argparse.Namespace) -> int:
    log = get_logger("cli")
    # The cube knobs travel by environment so they reach the dispatcher
    # through every engine path (combined residue, sched, serve).
    if getattr(args, "cube_threshold", None) is not None:
        os.environ[THRESHOLD_ENV] = str(args.cube_threshold)
    if getattr(args, "cube_workers", None) is not None:
        os.environ[WORKERS_ENV] = str(args.cube_workers)
    aig_a = read_aiger(args.a)
    aig_b = read_aiger(args.b)
    checker = _make_checker(
        args.engine,
        args.time_limit,
        args.verbose,
        cache_dir=args.cache,
        use_shm=False if args.no_shm else None,
        sched=args.sched,
    )
    tracer: Optional[Tracer] = None
    if args.trace or args.metrics or args.prom:
        tracer = Tracer(process_name="cec")
        set_tracer(tracer)
    try:
        try:
            with get_tracer().span("cec", category="cli", engine=args.engine):
                result = checker.check_miter(build_miter(aig_a, aig_b))
        except PortfolioError as error:
            log.error(str(error))
            for line in error.report.summary_lines():
                log.info(line)
            return 3
        print(f"verdict: {result.status.value}")
        if result.status is CecStatus.NONEQUIVALENT and result.cex is not None:
            print("cex:", "".join(str(b) for b in result.cex))
        if result.status is CecStatus.UNDECIDED and result.reduced_miter:
            print(f"residue: {result.reduced_miter.num_ands} AND gates")
        report = result.report
        if isinstance(report, PortfolioReport):
            if args.verbose:
                for line in report.summary_lines():
                    log.info(line.strip())
        elif report.phases:
            print(
                f"time: {report.total_seconds:.2f}s, "
                f"reduction: {report.reduction_percent:.1f}%"
            )
        if args.cache is not None and getattr(report, "cache", None) is not None:
            print(f"cache: {report.cache.summary()}")
        if args.metrics and tracer is not None:
            print("metrics:")
            for line in tracer.metrics.summary_lines():
                print(line)
        return {
            CecStatus.EQUIVALENT: 0,
            CecStatus.NONEQUIVALENT: 1,
            CecStatus.UNDECIDED: 2,
        }[result.status]
    finally:
        if tracer is not None:
            if args.trace:
                tracer.write(args.trace)
                log.info(f"trace written to {args.trace}")
            if args.prom:
                from repro.obs import encode_prometheus

                with open(args.prom, "w", encoding="utf-8") as handle:
                    handle.write(encode_prometheus(tracer.metrics))
                log.info(f"prometheus metrics written to {args.prom}")
            set_tracer(None)


def cmd_stats(args: argparse.Namespace) -> int:
    aig = read_aiger(args.input)
    print(f"pis:    {aig.num_pis}")
    print(f"pos:    {aig.num_pos}")
    print(f"ands:   {aig.num_ands}")
    print(f"levels: {aig.depth()}")
    return 0


def cmd_opt(args: argparse.Namespace) -> int:
    aig = read_aiger(args.input)
    optimized = _SCRIPTS[args.script](aig)
    write_aiger(optimized, args.output)
    print(
        f"{args.script}: {aig.num_ands} -> {optimized.num_ands} ANDs, "
        f"depth {aig.depth()} -> {optimized.depth()}"
    )
    return 0


def cmd_gen(args: argparse.Namespace) -> int:
    factory = _GENERATORS[args.family]
    aig = factory(args.width)
    write_aiger(aig, args.output)
    print(f"{aig.name}: {aig.num_pis} PIs, {aig.num_pos} POs, {aig.num_ands} ANDs")
    return 0


def cmd_miter(args: argparse.Namespace) -> int:
    miter = build_miter(read_aiger(args.a), read_aiger(args.b))
    write_aiger(miter, args.output)
    print(f"miter: {miter.num_ands} ANDs, {miter.num_pos} POs")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve.server import CecServer

    log = get_logger("serve")
    server = CecServer(
        args.socket,
        workers=args.workers,
        cache_root=args.cache_root,
        shards=args.shards,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        tenant_quota=args.tenant_quota,
        job_deadline=args.job_deadline,
        trace=args.trace is not None,
        use_shm=False if args.no_shm else None,
        metrics_port=args.metrics_port,
        slo=args.slo,
        postmortem_dir=args.postmortem_dir,
    )

    async def run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        log.info(
            f"serving on {args.socket} with {args.workers} warm workers "
            f"(cache root: {args.cache_root or 'none'})"
        )
        if server.metrics_port is not None:
            log.info(
                "prometheus scrape endpoint on "
                f"http://127.0.0.1:{server.metrics_port}/metrics"
            )
        await server.serve_forever()

    asyncio.run(run())
    if args.trace is not None:
        server.write_trace(args.trace)
        log.info(f"trace written to {args.trace}")
    log.info("daemon stopped")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    log = get_logger("submit")
    pairs = [(args.a, args.b)] + [tuple(extra) for extra in args.pair or []]
    miters = []
    names = []
    for path_a, path_b in pairs:
        miters.append(build_miter(read_aiger(path_a), read_aiger(path_b)))
        names.append(f"{path_a}:{path_b}")
    try:
        with ServeClient(
            args.socket, timeout=args.timeout, connect_retries=args.connect_retries
        ) as client:
            if args.stats_only:
                import json

                print(json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            results = client.submit_batch(
                miters,
                tenant=args.tenant,
                engine=args.engine,
                deadline=args.job_deadline,
                names=names,
            )
            if args.do_shutdown:
                client.shutdown()
    except (ConnectionError, ServeError) as error:
        log.error(str(error))
        return 3
    worst = 0
    ranks = {"equivalent": 0, "nonequivalent": 1, "undecided": 2, "error": 3}
    for record in results:
        print(
            f"{record['name']}: {record['status']} "
            f"({record['seconds']:.3f}s engine, "
            f"{record['latency']:.3f}s latency, "
            f"{record['cache_hits']} cache hits)"
        )
        if record["status"] == "nonequivalent" and record.get("cex"):
            print("cex:", "".join(str(b) for b in record["cex"]))
        if record.get("error"):
            log.error(f"{record['name']}: {record['error']}")
        worst = max(worst, ranks.get(record["status"], 3))
    return worst


def cmd_top(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.serve.client import ServeClient, ServeError
    from repro.serve.telemetry import format_top

    log = get_logger("top")
    iterations = 1 if args.once else args.iterations
    count = 0
    try:
        with ServeClient(
            args.socket,
            timeout=args.timeout,
            connect_retries=args.connect_retries,
        ) as client:
            while iterations is None or count < iterations:
                frame = format_top(client.stats())
                if not args.raw:
                    # ANSI clear + home — a plain repaint loop, no curses.
                    sys.stdout.write("\x1b[2J\x1b[H")
                sys.stdout.write(frame)
                sys.stdout.flush()
                count += 1
                if iterations is not None and count >= iterations:
                    break
                time_module.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, ServeError) as error:
        log.error(str(error))
        return 3
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="simulation-based parallel sweeping CEC"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cec = sub.add_parser("cec", help="check two AIGER files for equivalence")
    cec.add_argument("a")
    cec.add_argument("b")
    cec.add_argument(
        "--engine",
        default="combined",
        choices=[
            "combined", "sim", "sat", "bdd", "cube", "portfolio", "parallel",
        ],
    )
    cec.add_argument("--time-limit", type=float, default=None)
    cec.add_argument(
        "--sched", default="auto", choices=["auto", "fixed"],
        help="combined-engine residue scheduling: 'auto' dispatches each "
        "candidate pair to the predicted-cheapest engine lane "
        "(sim/cuts/BDD/batched SAT); 'fixed' is the kill switch for the "
        "original P-G-L-SAT pipeline",
    )
    cec.add_argument(
        "--cube-threshold", type=float, default=None, metavar="SECONDS",
        help="enable the cube lane: final residue POs whose predicted "
        "SAT latency is at or above SECONDS are cofactor-split and "
        "raced on a cancellable worker fan-out (0 races every final "
        "PO; default: off; equivalent to REPRO_CUBE_THRESHOLD)",
    )
    cec.add_argument(
        "--cube-workers", type=int, default=None, metavar="N",
        help="worker count of the cube race pool (default 3; "
        "equivalent to REPRO_CUBE_WORKERS)",
    )
    cec.add_argument(
        "--cache", metavar="DIR", default=None,
        help="functional-knowledge cache directory (warm-starts reruns)",
    )
    cec.add_argument(
        "--verbose", action="store_true",
        help="log engine phases as they complete (stderr)",
    )
    cec.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a Chrome trace_event timeline of the run to FILE "
        "(open in chrome://tracing or ui.perfetto.dev); covers all "
        "worker processes of a parallel run",
    )
    cec.add_argument(
        "--metrics", action="store_true",
        help="print counters and histograms of the run to stdout",
    )
    cec.add_argument(
        "--prom", metavar="FILE", default=None,
        help="write the run's counters and histograms as Prometheus "
        "text exposition to FILE (for textfile collectors / CI "
        "artifacts)",
    )
    cec.add_argument(
        "--no-shm", action="store_true",
        help="disable the shared-memory data plane of the parallel "
        "engine (payloads cross the result queues pickled instead; "
        "equivalent to REPRO_SHM=0)",
    )
    cec.add_argument(
        "--log-level", default=None, choices=list(LEVELS),
        help="stderr diagnostic verbosity (default: info with "
        "--verbose, warning otherwise)",
    )
    cec.add_argument(
        "--log-json", action="store_true",
        help="emit stderr diagnostics as one JSON object per line",
    )
    cec.set_defaults(func=cmd_cec)

    stats = sub.add_parser("stats", help="print network statistics")
    stats.add_argument("input")
    stats.set_defaults(func=cmd_stats)

    opt = sub.add_parser("opt", help="optimise a network")
    opt.add_argument("input")
    opt.add_argument("output")
    opt.add_argument("--script", default="resyn2", choices=sorted(_SCRIPTS))
    opt.set_defaults(func=cmd_opt)

    genp = sub.add_parser("gen", help="generate a benchmark circuit")
    genp.add_argument("family", choices=sorted(_GENERATORS))
    genp.add_argument("width", type=int)
    genp.add_argument("output")
    genp.set_defaults(func=cmd_gen)

    miter = sub.add_parser("miter", help="build a miter of two networks")
    miter.add_argument("a")
    miter.add_argument("b")
    miter.add_argument("output")
    miter.set_defaults(func=cmd_miter)

    serve = sub.add_parser(
        "serve", help="run the CEC-as-a-service daemon (warm worker pool)"
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket to listen on",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="persistent worker processes (default: 2)",
    )
    serve.add_argument(
        "--cache-root", metavar="DIR", default=None,
        help="root directory for per-tenant knowledge caches "
        "(omit for in-memory only)",
    )
    serve.add_argument(
        "--shards", type=int, default=4,
        help="proof-store shards per tenant (default: 4; keep constant "
        "for the lifetime of the cache root)",
    )
    serve.add_argument("--max-pending", type=int, default=64)
    serve.add_argument("--max-batch", type=int, default=16)
    serve.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="cap one tenant's in-flight jobs at N; excess submissions "
        "are rejected with a structured 'quota' error while other "
        "tenants keep flowing (default: no per-tenant cap)",
    )
    serve.add_argument(
        "--job-deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock deadline; over-deadline workers are "
        "killed and respawned warm",
    )
    serve.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a merged daemon+worker Chrome trace on shutdown",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text on http://127.0.0.1:PORT/metrics "
        "(0 binds an ephemeral port; omit to disable HTTP — the socket "
        "'metrics' op is always available)",
    )
    serve.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="per-tenant latency objective, e.g. 'p99=5s' or "
        "'p95=500ms' (repeatable); enables SLO burn-rate accounting "
        "in stats, the scrape output, and 'top'",
    )
    serve.add_argument(
        "--postmortem-dir", metavar="DIR", default=None,
        help="dump a flight-recorder postmortem JSON here whenever a "
        "worker is killed for a crash or deadline",
    )
    serve.add_argument("--no-shm", action="store_true")
    serve.add_argument("--log-level", default=None, choices=list(LEVELS))
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit stderr diagnostics as one JSON object per line",
    )
    serve.set_defaults(func=cmd_serve, verbose=True)

    submit = sub.add_parser(
        "submit", help="check AIG pairs against a running serve daemon"
    )
    submit.add_argument("a")
    submit.add_argument("b")
    submit.add_argument(
        "--pair", nargs=2, action="append", metavar=("A", "B"),
        help="additional pair for the same batch (repeatable)",
    )
    submit.add_argument("--socket", required=True, metavar="PATH")
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--engine", default="combined",
        choices=["combined", "sim", "sat", "bdd"],
    )
    submit.add_argument("--job-deadline", type=float, default=None)
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="socket timeout per response (default: 300s)",
    )
    submit.add_argument(
        "--connect-retries", type=int, default=25,
        help="connection attempts while the daemon starts up",
    )
    submit.add_argument(
        "--stats-only", action="store_true",
        help="print the daemon's stats snapshot as JSON and exit",
    )
    submit.add_argument(
        "--shutdown", dest="do_shutdown", action="store_true",
        help="ask the daemon to drain and exit after this batch",
    )
    submit.add_argument("--log-level", default=None, choices=list(LEVELS))
    submit.add_argument(
        "--log-json", action="store_true",
        help="emit stderr diagnostics as one JSON object per line",
    )
    submit.set_defaults(func=cmd_submit)

    top = sub.add_parser(
        "top", help="live terminal view of a running serve daemon"
    )
    top.add_argument("--socket", required=True, metavar="PATH")
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (implies --raw-friendly use)",
    )
    top.add_argument(
        "--raw", action="store_true",
        help="no ANSI screen clearing — frames append (for pipes/logs)",
    )
    top.add_argument(
        "--timeout", type=float, default=10.0,
        help="socket timeout per stats poll (default: 10s)",
    )
    top.add_argument(
        "--connect-retries", type=int, default=5,
        help="connection attempts while the daemon starts up",
    )
    top.add_argument("--log-level", default=None, choices=list(LEVELS))
    top.add_argument(
        "--log-json", action="store_true",
        help="emit stderr diagnostics as one JSON object per line",
    )
    top.set_defaults(func=cmd_top)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    level = getattr(args, "log_level", None)
    if level is None:
        level = "info" if getattr(args, "verbose", False) else "warning"
    configure_logging(level, json_format=getattr(args, "log_json", False))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
