"""Length-prefixed JSON framing and wire codecs for the serve daemon.

The wire format is deliberately minimal: every message is one JSON
object preceded by a 4-byte big-endian length.  JSON (not pickle)
because the socket is a trust boundary — a daemon must never unpickle
client bytes — and because it keeps the protocol inspectable with
``socat`` and implementable from any language.

Messages are dicts with an ``op`` (requests) or ``ok`` (responses)
field; AIGs travel as flat literal arrays (the exact representation
:class:`~repro.aig.network.Aig` uses internally), so encode/decode is a
``tolist``/``asarray`` pair, not a graph walk.

Request ops: ``ping``, ``stats``, ``metrics`` (Prometheus text
exposition in the response's ``text`` field), ``submit``, ``shutdown``
— see :mod:`repro.serve.server` for semantics.

Both sync (blocking socket, used by :class:`~repro.serve.client.ServeClient`)
and asyncio (``StreamReader``/``StreamWriter``, used by the server)
variants of the framing are provided.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

import numpy as np

from repro.aig.network import Aig

__all__ = [
    "MAX_FRAME",
    "ProtocolError",
    "pack_frame",
    "read_frame_sync",
    "write_frame_sync",
    "read_frame",
    "write_frame",
    "aig_to_wire",
    "aig_from_wire",
]

#: Hard ceiling on one frame's JSON payload.  Big enough for the paper's
#: largest benchmark miters as literal arrays, small enough that a
#: corrupt length prefix cannot make the daemon allocate gigabytes.
MAX_FRAME = 256 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame, oversized payload, or invalid wire object."""


def pack_frame(obj: Dict[str, Any]) -> bytes:
    """Serialise one message: 4-byte length prefix + compact JSON."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _LEN.pack(len(payload)) + payload


def _decode(payload: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return obj


def _check_length(raw: bytes) -> int:
    (length,) = _LEN.unpack(raw)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds MAX_FRAME"
        )
    return length


# ----------------------------------------------------------------------
# Blocking variants (client side)
# ----------------------------------------------------------------------


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None  # peer closed
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sync(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one message; ``None`` on orderly peer close."""
    raw = _recv_exact(sock, _LEN.size)
    if raw is None:
        return None
    payload = _recv_exact(sock, _check_length(raw))
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode(payload)


def write_frame_sync(sock: socket.socket, obj: Dict[str, Any]) -> None:
    sock.sendall(pack_frame(obj))


# ----------------------------------------------------------------------
# Asyncio variants (server side)
# ----------------------------------------------------------------------


async def read_frame(reader) -> Optional[Dict[str, Any]]:
    """Read one message from a StreamReader; ``None`` on peer close."""
    import asyncio

    try:
        raw = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    try:
        payload = await reader.readexactly(_check_length(raw))
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid-frame") from error
    return _decode(payload)


async def write_frame(writer, obj: Dict[str, Any]) -> None:
    writer.write(pack_frame(obj))
    await writer.drain()


# ----------------------------------------------------------------------
# AIG wire codec
# ----------------------------------------------------------------------


def aig_to_wire(aig: Aig) -> Dict[str, Any]:
    """Flatten a network into JSON-serialisable literal arrays."""
    fanin0, fanin1 = aig.fanin_literals()
    return {
        "num_pis": int(aig.num_pis),
        "fanin0": [int(x) for x in fanin0],
        "fanin1": [int(x) for x in fanin1],
        "pos": [int(po) for po in aig.pos],
        "name": str(aig.name),
    }


def aig_from_wire(payload: Dict[str, Any]) -> Aig:
    """Rebuild a network from its wire form; validates shapes."""
    try:
        num_pis = int(payload["num_pis"])
        fanin0 = np.asarray(payload["fanin0"], dtype=np.int64)
        fanin1 = np.asarray(payload["fanin1"], dtype=np.int64)
        pos = [int(po) for po in payload["pos"]]
        name = str(payload.get("name", "wire"))
    except (KeyError, TypeError, ValueError, OverflowError) as error:
        raise ProtocolError(f"malformed AIG payload: {error}") from error
    if num_pis < 0 or fanin0.shape != fanin1.shape or fanin0.ndim != 1:
        raise ProtocolError("malformed AIG payload: inconsistent shapes")
    try:
        return Aig(num_pis, fanin0, fanin1, pos, name=name)
    except (ValueError, IndexError) as error:
        raise ProtocolError(f"invalid AIG: {error}") from error
