"""Synchronous client library for the serve daemon.

:class:`ServeClient` wraps the Unix-socket protocol in a blocking API:
one socket, framed JSON requests, framed JSON responses.  It is what
``cec submit`` and the bench harness's serve mode use, and the shape
library users embed::

    with ServeClient("/tmp/cec.sock") as client:
        client.ping()
        results = client.submit_pair(aig_a, aig_b)

The client is intentionally synchronous — callers that want concurrency
submit batches (the daemon parallelises across its worker pool) rather
than juggling many sockets.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.serve.protocol import (
    ProtocolError,
    aig_to_wire,
    read_frame_sync,
    write_frame_sync,
)
from repro.serve.tenants import DEFAULT_TENANT

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A structured error response from the daemon; ``code`` is its tag."""

    def __init__(self, code: str, detail: str) -> None:
        self.code = code
        super().__init__(f"{code}: {detail}")


class ServeClient:
    """Blocking client for a :class:`~repro.serve.server.CecServer`.

    Parameters
    ----------
    socket_path:
        The daemon's Unix socket.
    timeout:
        Socket timeout in seconds for each response (``None`` → block
        forever; batches of slow miters need either a generous value or
        ``None``).  A response that blows the timeout surfaces as a
        structured ``ServeError`` with code ``timeout`` (and the
        connection is dropped — the late reply cannot be re-framed).
    connect_timeout:
        Timeout for the connect handshake alone (defaults to
        ``timeout``) — lets a caller fail fast on a wedged daemon while
        still waiting minutes for slow batches.
    connect_retries / connect_interval:
        Connection attempts before giving up — covers the window where
        the daemon process exists but has not bound its socket yet.
    """

    def __init__(
        self,
        socket_path: str,
        timeout: Optional[float] = 300.0,
        connect_retries: int = 1,
        connect_interval: float = 0.2,
        connect_timeout: Optional[float] = None,
    ) -> None:
        self.socket_path = socket_path
        self.timeout = timeout
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self._sock: Optional[socket.socket] = None
        self._connect_retries = max(1, connect_retries)
        self._connect_interval = connect_interval

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        last_error: Optional[Exception] = None
        for attempt in range(self._connect_retries):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            try:
                sock.connect(self.socket_path)
            except OSError as error:
                sock.close()
                last_error = error
                if attempt + 1 < self._connect_retries:
                    time.sleep(self._connect_interval)
                continue
            sock.settimeout(self.timeout)
            self._sock = sock
            return self
        raise ConnectionError(
            f"cannot connect to serve daemon at {self.socket_path}: "
            f"{last_error}"
        )

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        assert self._sock is not None
        try:
            write_frame_sync(self._sock, payload)
            response = read_frame_sync(self._sock)
        except socket.timeout:
            # The frame stream is now mid-message; the connection cannot
            # be reused.  Surface a structured error the caller can
            # branch on instead of a raw socket exception.
            self.close()
            raise ServeError(
                "timeout",
                f"no response from {self.socket_path} within "
                f"{self.timeout}s",
            ) from None
        if response is None:
            self.close()
            raise ConnectionError("serve daemon closed the connection")
        if not response.get("ok", False):
            raise ServeError(
                str(response.get("error", "unknown")),
                str(response.get("detail", "")),
            )
        return response

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> int:
        """Liveness probe; returns the daemon's pid."""
        return int(self._request({"op": "ping"})["pid"])

    def stats(self) -> Dict[str, Any]:
        """The daemon's ``/metrics``-style stats snapshot."""
        return self._request({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The daemon's Prometheus text exposition (the scrape body)."""
        return str(self._request({"op": "metrics"})["text"])

    def submit_batch(
        self,
        miters: List[Aig],
        tenant: str = DEFAULT_TENANT,
        engine: str = "combined",
        engine_kwargs: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
        names: Optional[List[str]] = None,
    ) -> List[Dict[str, Any]]:
        """Check a batch of miters; returns result records in order.

        Each record carries ``status`` (``equivalent``/``nonequivalent``/
        ``undecided``/``error``), ``cex``, worker-side ``seconds``,
        queue-inclusive ``latency``, and the job's warm-cache
        ``cache_hits``/``cache_lookups``.
        """
        if names is not None and len(names) != len(miters):
            raise ValueError("names must match miters one-to-one")
        jobs = []
        for index, miter in enumerate(miters):
            job: Dict[str, Any] = {
                "miter": aig_to_wire(miter),
                "engine": engine,
            }
            if engine_kwargs:
                job["engine_kwargs"] = dict(engine_kwargs)
            if deadline is not None:
                job["deadline"] = deadline
            if names is not None:
                job["name"] = names[index]
            jobs.append(job)
        response = self._request(
            {"op": "submit", "tenant": tenant, "jobs": jobs}
        )
        results = response.get("results")
        if not isinstance(results, list) or len(results) != len(miters):
            raise ProtocolError("malformed submit response")
        return results

    def submit_pair(
        self, left: Aig, right: Aig, **kwargs: Any
    ) -> Dict[str, Any]:
        """Build the miter of two AIGs client-side and check it."""
        miter = build_miter(left, right)
        return self.submit_batch([miter], **kwargs)[0]

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit."""
        self._request({"op": "shutdown"})
        self.close()
