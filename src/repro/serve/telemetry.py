"""Daemon-side telemetry: SLO accounting, the scrape endpoint, ``cec top``.

Builds on the process-agnostic primitives in :mod:`repro.obs.telemetry`
(the Prometheus encoder, flight recorder, resource sampler) and adds
the parts that only make sense inside a long-lived serve daemon:

- :class:`SloRegistry` — per-tenant latency objectives (``p99=5s``),
  error budgets, and rolling multi-window burn rates.  Every completed
  job is scored against each objective; deadline misses and hard
  failures consume budget unconditionally; crash respawns are tracked
  daemon-wide.  Burn rate is the classic SRE ratio: *(bad fraction in
  window) / (budget fraction)* — 1.0 means "spending exactly the
  budget", sustained >1 means the objective will be violated.
- :class:`MetricsHttpServer` — a stdlib ``http.server`` thread serving
  ``GET /metrics`` so off-the-shelf Prometheus scrapers work without
  speaking the Unix-socket protocol.
- :func:`format_top` — renders a daemon ``stats`` payload as a live
  terminal view for ``cec top``.
"""

from __future__ import annotations

import http.server
import re
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.telemetry import GaugeSample

__all__ = [
    "SloObjective",
    "parse_slo_spec",
    "SloRegistry",
    "MetricsHttpServer",
    "format_top",
    "DEFAULT_BURN_WINDOWS",
]

#: Rolling burn-rate windows in seconds (5 minutes / 1 hour) — the short
#: window catches fast burns, the long one slow leaks.
DEFAULT_BURN_WINDOWS: Tuple[float, ...] = (300.0, 3600.0)

_SLO_SPEC = re.compile(
    r"^p(?P<pct>\d{1,2}(?:\.\d+)?)\s*=\s*(?P<value>\d+(?:\.\d+)?)\s*"
    r"(?P<unit>ms|s|m)?$"
)

_UNIT_SECONDS = {"ms": 1e-3, "s": 1.0, "m": 60.0, None: 1.0}


class SloObjective:
    """One latency objective: ``quantile`` of jobs must finish ≤ ``target``.

    The error budget is the complement of the quantile — a ``p99``
    objective tolerates 1% bad events.
    """

    __slots__ = ("quantile", "target_seconds")

    def __init__(self, quantile: float, target_seconds: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        if target_seconds <= 0.0:
            raise ValueError("target must be positive")
        self.quantile = quantile
        self.target_seconds = target_seconds

    @property
    def budget_fraction(self) -> float:
        return 1.0 - self.quantile

    @property
    def name(self) -> str:
        pct = self.quantile * 100.0
        text = f"{pct:.4f}".rstrip("0").rstrip(".")
        return f"p{text}"

    def spec(self) -> str:
        return f"{self.name}={self.target_seconds:g}s"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SloObjective({self.spec()})"


def parse_slo_spec(spec: str) -> SloObjective:
    """Parse an ``--slo`` spec like ``p99=5s``, ``p95=500ms``, ``p50=1``.

    The quantile is a percentile (``p99`` → 0.99); the target accepts
    ``ms``/``s``/``m`` suffixes and defaults to seconds.
    """
    match = _SLO_SPEC.match(spec.strip())
    if not match:
        raise ValueError(
            f"bad SLO spec {spec!r} (expected e.g. 'p99=5s', 'p95=500ms')"
        )
    pct = float(match.group("pct"))
    if not 0.0 < pct < 100.0:
        raise ValueError(f"bad SLO percentile in {spec!r}")
    seconds = float(match.group("value")) * _UNIT_SECONDS[match.group("unit")]
    return SloObjective(pct / 100.0, seconds)


class _TenantWindow:
    """Bounded event ring for one tenant: ``(ts, latency, hard_failure)``."""

    __slots__ = ("events", "total", "failures", "deadline_misses", "bad")

    def __init__(self, capacity: int, objectives: int) -> None:
        self.events: Deque[Tuple[float, float, bool]] = deque(maxlen=capacity)
        self.total = 0
        self.failures = 0
        self.deadline_misses = 0
        #: Lifetime bad-event count per objective index.
        self.bad = [0] * objectives


class SloRegistry:
    """Per-tenant SLO accounting for the serve daemon.

    Thread-safe; called from the pool's poll loop (job completions,
    deadline kills, respawns) and read from the asyncio ``stats``/
    ``metrics`` handlers.

    An event is *bad for an objective* when its latency exceeds the
    objective's target, or when it was a hard failure (worker crash,
    deadline kill) — a job the caller never got a verdict for can't
    count as "within SLO" at any latency.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective],
        windows: Sequence[float] = DEFAULT_BURN_WINDOWS,
        capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.objectives = list(objectives)
        self.windows = tuple(sorted(float(w) for w in windows))
        if not self.windows:
            raise ValueError("need at least one burn-rate window")
        self.capacity = capacity
        self._clock = clock
        self._tenants: Dict[str, _TenantWindow] = {}
        self._respawns = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return bool(self.objectives)

    def _tenant(self, tenant: str) -> _TenantWindow:
        window = self._tenants.get(tenant)
        if window is None:
            window = _TenantWindow(self.capacity, len(self.objectives))
            self._tenants[tenant] = window
        return window

    def record_job(
        self, tenant: str, latency_seconds: float, failed: bool = False
    ) -> None:
        """Score one completed (or failed) job against every objective."""
        with self._lock:
            window = self._tenant(tenant)
            window.events.append(
                (self._clock(), float(latency_seconds), bool(failed))
            )
            window.total += 1
            if failed:
                window.failures += 1
            for index, objective in enumerate(self.objectives):
                if failed or latency_seconds > objective.target_seconds:
                    window.bad[index] += 1

    def record_deadline_miss(self, tenant: str) -> None:
        """A job killed at its deadline: a hard failure plus its own tally."""
        with self._lock:
            self._tenant(tenant).deadline_misses += 1
        self.record_job(tenant, float("inf"), failed=True)

    def record_respawn(self) -> None:
        """A worker crash-respawn (daemon-wide, not attributable to a tenant)."""
        with self._lock:
            self._respawns += 1

    def _burn_rates(
        self, window: _TenantWindow, now: float
    ) -> Dict[str, Dict[str, float]]:
        """``{objective: {window_seconds: burn_rate}}`` over the event ring."""
        rates: Dict[str, Dict[str, float]] = {}
        for index, objective in enumerate(self.objectives):
            per_window: Dict[str, float] = {}
            for span in self.windows:
                cutoff = now - span
                total = bad = 0
                for ts, latency, failed in window.events:
                    if ts < cutoff:
                        continue
                    total += 1
                    if failed or latency > objective.target_seconds:
                        bad += 1
                if total == 0:
                    per_window[f"{int(span)}s"] = 0.0
                else:
                    bad_fraction = bad / total
                    per_window[f"{int(span)}s"] = (
                        bad_fraction / objective.budget_fraction
                    )
            rates[objective.name] = per_window
        return rates

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state for the daemon ``stats`` op and ``cec top``."""
        now = self._clock()
        with self._lock:
            tenants: Dict[str, Any] = {}
            for tenant, window in sorted(self._tenants.items()):
                objectives: Dict[str, Any] = {}
                burn = self._burn_rates(window, now)
                for index, objective in enumerate(self.objectives):
                    bad = window.bad[index]
                    budget = objective.budget_fraction * window.total
                    objectives[objective.name] = {
                        "target_seconds": objective.target_seconds,
                        "bad_events": bad,
                        # >0 means budget left, <0 means blown (lifetime).
                        "budget_remaining": round(budget - bad, 6),
                        "burn_rates": burn[objective.name],
                    }
                tenants[tenant] = {
                    "jobs": window.total,
                    "failures": window.failures,
                    "deadline_misses": window.deadline_misses,
                    "objectives": objectives,
                }
            return {
                "objectives": [o.spec() for o in self.objectives],
                "windows_seconds": list(self.windows),
                "respawns": self._respawns,
                "tenants": tenants,
            }

    def gauges(self) -> List[GaugeSample]:
        """Per-tenant SLO state as labelled Prometheus gauge samples."""
        samples: List[GaugeSample] = []
        snapshot = self.snapshot()
        samples.append(
            ("slo.worker_respawns", {}, float(snapshot["respawns"]))
        )
        for tenant, state in snapshot["tenants"].items():
            base = {"tenant": tenant}
            samples.append(("slo.jobs", dict(base), float(state["jobs"])))
            samples.append(
                ("slo.failures", dict(base), float(state["failures"]))
            )
            samples.append(
                (
                    "slo.deadline_misses",
                    dict(base),
                    float(state["deadline_misses"]),
                )
            )
            for name, objective in state["objectives"].items():
                labels = {"tenant": tenant, "objective": name}
                samples.append(
                    (
                        "slo.bad_events",
                        dict(labels),
                        float(objective["bad_events"]),
                    )
                )
                samples.append(
                    (
                        "slo.error_budget_remaining",
                        dict(labels),
                        float(objective["budget_remaining"]),
                    )
                )
                for window, rate in objective["burn_rates"].items():
                    samples.append(
                        (
                            "slo.burn_rate",
                            {**labels, "window": window},
                            float(rate),
                        )
                    )
        return samples


# ----------------------------------------------------------------------
# HTTP scrape endpoint
# ----------------------------------------------------------------------


class _MetricsHandler(http.server.BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"
    render: Callable[[], str] = staticmethod(lambda: "")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "only /metrics is served here")
            return
        # The registries mutate concurrently (pool poll loop, sampler
        # thread); dict iteration can race.  Retry a few times rather
        # than lock every hot-path counter bump.
        text = ""
        for _ in range(5):
            try:
                text = type(self).render()
                break
            except RuntimeError:
                continue
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: Any) -> None:  # noqa: D102 - silence stderr
        pass


class MetricsHttpServer:
    """A stdlib HTTP thread serving Prometheus text on ``GET /metrics``.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`) — the form every test uses.  The render callable is
    invoked per scrape, so the output always reflects live registries.
    """

    def __init__(
        self,
        render: Callable[[], str],
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self._render = render
        self._requested = (host, port)
        self._httpd: Optional[http.server.ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        return self._httpd.server_address[1] if self._httpd else None

    def start(self) -> "MetricsHttpServer":
        if self._httpd is not None:
            return self
        handler = type(
            "BoundMetricsHandler",
            (_MetricsHandler,),
            {"render": staticmethod(self._render)},
        )
        self._httpd = http.server.ThreadingHTTPServer(self._requested, handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(2.0)
        self._httpd = None
        self._thread = None


# ----------------------------------------------------------------------
# `cec top` rendering
# ----------------------------------------------------------------------


def _human_bytes(value: Optional[float]) -> str:
    if not value:
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _human_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    seconds = int(value)
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def format_top(stats: Dict[str, Any]) -> str:
    """Render a daemon ``stats`` payload as a ``cec top`` screen.

    Pure function of the payload: the CLI polls ``ServeClient.stats()``
    and reprints.  Degrades gracefully when optional blocks (SLO,
    resources) are absent — old daemons still render.
    """
    lines: List[str] = []
    pool = stats.get("pool", {})
    admission = stats.get("admission", {})
    uptime = _human_seconds(stats.get("uptime_seconds"))
    rss = _human_bytes(stats.get("rss_bytes"))
    lines.append(
        f"cec daemon pid={stats.get('pid', '-')} "
        f"uptime={uptime} rss={rss} state={admission.get('state', '-')}"
    )
    lines.append(
        f"jobs: submitted={pool.get('jobs_submitted', 0)} "
        f"completed={pool.get('jobs_completed', 0)} "
        f"inflight={pool.get('inflight', 0)} "
        f"pending={admission.get('pending', 0)}"
        f"/{admission.get('max_pending', '-')} "
        f"respawns={pool.get('respawns', 0)} "
        f"deadline_kills={pool.get('deadline_kills', 0)}"
    )
    workers = pool.get("per_worker", [])
    if workers:
        lines.append("")
        lines.append(
            f"{'WORKER':>6} {'PID':>8} {'BUSY':>5} {'DONE':>7} "
            f"{'RESPAWNS':>8} {'RSS':>10}"
        )
        for worker in workers:
            lines.append(
                f"{worker.get('index', '-'):>6} "
                f"{worker.get('pid', '-') or '-':>8} "
                f"{worker.get('assigned', 0):>5} "
                f"{worker.get('jobs_done', 0):>7} "
                f"{worker.get('respawns', 0):>8} "
                f"{_human_bytes(worker.get('rss_bytes')):>10}"
            )
    slo = stats.get("slo")
    if slo and slo.get("tenants"):
        window_names: List[str] = [
            f"{int(w)}s" for w in slo.get("windows_seconds", [])
        ]
        lines.append("")
        header = f"{'TENANT':<16} {'OBJECTIVE':<12} {'JOBS':>6} {'BAD':>5} "
        header += f"{'BUDGET':>8} " + " ".join(
            f"{'burn/' + name:>10}" for name in window_names
        )
        lines.append(header)
        for tenant, state in sorted(slo["tenants"].items()):
            for name, objective in state["objectives"].items():
                row = (
                    f"{tenant:<16} "
                    f"{name + '<' + format(objective['target_seconds'], 'g') + 's':<12} "
                    f"{state['jobs']:>6} {objective['bad_events']:>5} "
                    f"{objective['budget_remaining']:>8.2f} "
                )
                row += " ".join(
                    f"{objective['burn_rates'].get(name_, 0.0):>10.2f}"
                    for name_ in window_names
                )
                lines.append(row)
    per_tenant = (
        admission.get("per_tenant") if isinstance(admission, dict) else None
    )
    if per_tenant:
        lines.append("")
        lines.append(f"{'TENANT':<16} {'ADMITTED':>9} {'REJECTED':>9}")
        for tenant, counts in sorted(per_tenant.items()):
            lines.append(
                f"{tenant:<16} {counts.get('admitted', 0):>9} "
                f"{counts.get('rejected', 0):>9}"
            )
    return "\n".join(lines) + "\n"
