"""The persistent warm worker pool behind the serve daemon.

One-shot portfolio runs pay fork/spawn, module import, cache load and
pattern-pool generation on *every* query.  The pool amortises all four:
worker processes are spawned once (loop mode of
:func:`repro.exec.worker.exec_worker_main`) and stay resident, keeping
per-tenant knowledge caches, engine structures and PI pattern pools hot
across queries.  Miters travel to workers zero-copy through the
:mod:`repro.shm` data plane (one published segment per job, unpublished
as soon as its result lands), and verdict deltas travel back on the
result queue for the parent to merge into the tenant caches and persist
— exactly the parent-merges ownership model of the parallel portfolio.

Process lifecycle, flight rings and queue plumbing live in
:mod:`repro.exec`; this module is the serving *policy*.  Jobs queue on
a parent-side work-stealing :class:`~repro.exec.board.JobBoard` and
commit to a worker's inbox only when it goes idle, so an idle worker
steals backlog from a busy sibling and a cancelled queued job (a losing
cube, an expired deadline) costs a list removal, never a kill.  A
worker that crashes or blows its per-job deadline is stopped with the
staged SIGTERM → SIGKILL machinery and respawned; the respawn starts
*warm* because it reloads the merged tenant caches from disk.  The
in-flight job is reported as an error — the daemon never hangs on a
wedged engine.

:class:`WorkerPool` is deliberately synchronous (blocking queue I/O,
explicit :meth:`poll`); the asyncio front end in
:mod:`repro.serve.server` drives it from an executor thread.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.aig.network import Aig
from repro.cache.config import CacheConfig
from repro.cache.knowledge import SweepCache
from repro.cubes.runner import MONOLITH, run_cube_job
from repro.cubes.split import Cube, choose_split_pis, enumerate_cubes
from repro.exec import (
    CancelGroup,
    CancelToken,
    ExecRuntime,
    JobBoard,
    WorkerHandle,
    pool_from_adoption,
)
from repro.obs import MetricsRegistry, ResourceSampler, get_tracer
from repro.portfolio.parallel import build_checker
from repro.shm import adopt_aig
from repro.sweep.classes import SharedPool
from repro.sweep.config import EngineConfig
from repro.serve.tenants import DEFAULT_TENANT, TenantManager

__all__ = ["ServeJob", "ServeResult", "WorkerPool"]


@dataclass
class ServeJob:
    """One miter to check, with its tenancy and engine choice."""

    miter: Aig
    tenant: str = DEFAULT_TENANT
    engine: str = "combined"
    engine_kwargs: Dict = field(default_factory=dict)
    #: Per-job wall-clock deadline in seconds (None → pool default).
    deadline: Optional[float] = None
    name: str = ""


@dataclass
class ServeResult:
    """Outcome of one served job."""

    job_id: int
    name: str
    tenant: str
    status: str
    cex: Optional[List[int]] = None
    #: Worker-side check seconds (engine time only).
    seconds: float = 0.0
    #: Parent-stamped submit→result seconds (queueing included) — the
    #: number the bench harness turns into latency percentiles.
    latency: float = 0.0
    worker: int = -1
    error: str = ""
    cache_hits: int = 0
    cache_lookups: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("equivalent", "nonequivalent", "undecided")

    def as_dict(self) -> Dict[str, object]:
        return {
            "job": self.job_id,
            "name": self.name,
            "tenant": self.tenant,
            "status": self.status,
            "cex": self.cex,
            "seconds": round(self.seconds, 6),
            "latency": round(self.latency, 6),
            "worker": self.worker,
            "error": self.error,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
        }


# ----------------------------------------------------------------------
# Worker-side policy (runs inside repro.exec loop workers)
# ----------------------------------------------------------------------


def _load_worker_cache(
    caches: Dict[Tuple[str, int], SweepCache],
    spec: Optional[Tuple[str, int]],
) -> Optional[SweepCache]:
    """The worker-resident readonly cache for one tenant (lazy-loaded)."""
    if spec is None:
        return None
    directory, shards = str(spec[0]), int(spec[1])
    key = (directory, shards)
    cached = caches.get(key)
    if cached is None:
        cached = SweepCache(
            CacheConfig(directory=directory, readonly=True, shards=shards)
        )
        caches[key] = cached
    return cached


def _resident_pool(
    pools: Dict[Tuple, SharedPool],
    adopted: Optional[SharedPool],
    spec: Tuple[str, Dict],
    num_pis: int,
) -> Optional[SharedPool]:
    """The worker-resident pattern pool for one miter shape.

    First preference is the pool already resident from an earlier query
    (fully warm).  Otherwise the pool shipped in the job's segment is
    copied once off the mapping and kept — the segment is unpublished
    after the job, so the resident copy must own its words.  Workers
    never regenerate patterns a parent already generated.
    """
    if spec[0] not in ("sim", "combined"):
        return None
    try:
        config = EngineConfig(**spec[1]) if spec[1] else EngineConfig()
    except Exception:
        return None
    key = (
        num_pis,
        int(config.num_random_words),
        int(config.seed),
        str(config.pattern_strategy),
    )
    resident = pools.get(key)
    if resident is not None:
        return resident
    if adopted is not None and adopted.compatible(config, num_pis):
        resident = SharedPool(
            pi_words=adopted.pi_words.copy(),
            num_pis=adopted.num_pis,
            num_random_words=adopted.num_random_words,
            seed=adopted.seed,
            strategy=adopted.strategy,
            num_cex=adopted.num_cex,
        )
    else:
        resident = SharedPool.generate(
            num_pis,
            config.num_random_words,
            config.seed,
            config.pattern_strategy,
        )
    pools[key] = resident
    return resident


def run_serve_job(message: Dict, ctx) -> Dict:
    """Loop-mode job handler: adopt, check, report, stay warm.

    Runs inside an :func:`repro.exec.worker.exec_worker_main` loop
    worker.  Resident state (per-tenant caches and cost models, pattern
    pools per miter shape) lives in ``ctx.resident`` and survives across
    jobs — that is what makes a warm worker warm.  Per-job failures
    raise; the worker main reports and survives them: one malformed
    miter must not cost the pool a warm worker.
    """
    if message.get("cube_group") is not None:
        # A cube sub-job of a hard query: same warm worker, but the
        # work is one cofactor solve (see repro.cubes.runner).
        return run_cube_job(message, ctx)
    resident = ctx.resident
    caches: Dict[Tuple[str, int], SweepCache] = resident.setdefault(
        "caches", {}
    )
    pools: Dict[Tuple, SharedPool] = resident.setdefault("pools", {})
    # Per-tenant adaptive-scheduler cost models: lane latency histograms
    # calibrated on one tenant's workload stay warm across its jobs, so
    # repeat submissions dispatch with a trained model from pair one.
    cost_models: Dict[str, object] = resident.setdefault("cost_models", {})
    adoption = None
    registry = ctx.registry
    try:
        ref = message.get("miter_ref")
        if ref is not None:
            if registry is None:
                raise RuntimeError("segment descriptor without a registry")
            adoption = registry.adopt(ref)
            shipped_pool = pool_from_adoption(adoption)
            miter = adopt_aig(adoption)
        else:
            shipped_pool = None
            miter = message["miter"]
        spec = tuple(message["spec"])
        cache = _load_worker_cache(caches, message.get("cache"))
        pool = _resident_pool(pools, shipped_pool, spec, miter.num_pis)
        snapshot = cache.snapshot() if cache is not None else None
        cost_model = None
        if spec[0] == "combined":
            from repro.sched import CostModel

            tenant = message.get("tenant", DEFAULT_TENANT)
            cost_model = cost_models.get(tenant)
            if cost_model is None:
                cost_model = CostModel()
                cost_models[tenant] = cost_model
        checker = build_checker(
            spec, cache=cache, initial_pool=pool, cost_model=cost_model
        )
        with get_tracer().span(
            "serve.job",
            category="serve",
            job=message.get("job"),
            engine=spec[0],
        ):
            result = checker.check_miter(miter)
        reply: Dict[str, object] = {
            "status": result.status.value,
            "cex": result.cex,
        }
        if cache is not None:
            delta = cache.counters.diff(snapshot)
            reply["hits"] = delta.hits
            reply["lookups"] = delta.lookups
            reply["cache_delta"] = list(cache.store.pending)
            # The delta now belongs to the parent; keep only the
            # in-memory entries (they are what makes us warm).
            cache.store.clear_pending()
        return reply
    finally:
        if adoption is not None:
            registry.release(adoption)


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


@dataclass
class _Inflight:
    """One submitted-but-unresolved job."""

    job: ServeJob
    #: Worker index once dispatched off the board (-1 while queued).
    worker: int
    submitted: float
    deadline_at: Optional[float]
    descriptor: Optional[object] = None
    token: Optional[CancelToken] = None


@dataclass
class _CubeGroup:
    """One ``engine="cubes"`` query fanned out as sibling sub-jobs.

    The group owns the published miter segment (sub-jobs share it) and
    the :class:`~repro.exec.cancel.CancelGroup` implementing the
    first-winner protocol: the first conclusive sibling settles the
    parent job, queued losers are revoked off the board for free, and
    busy losers finish into the void (their results are discarded — a
    warm serve worker is never killed over a lost race).
    """

    job_id: int
    job: ServeJob
    submitted: float
    deadline_at: Optional[float]
    descriptor: Optional[object]
    num_cubes: int
    cancel: CancelGroup = field(default_factory=CancelGroup)
    #: Sub-job ids still racing.
    pending: set = field(default_factory=set)
    #: Sub-job id → human label ("monolith" / "pi3=1,pi7=0").
    labels: Dict[int, str] = field(default_factory=dict)
    unsat_cubes: int = 0
    #: Some sibling ended unknown/error — "all cubes UNSAT" is then the
    #: only equivalence path left.
    unknown: bool = False
    settled: bool = False


class WorkerPool:
    """A fixed-size pool of persistent warm CEC workers.

    Parameters
    ----------
    workers:
        Number of worker processes.
    tenants:
        The daemon's :class:`~repro.serve.tenants.TenantManager`; a
        persistence-less manager is built when omitted.
    job_deadline:
        Default per-job wall-clock deadline in seconds (None → no
        deadline).  A worker past it is reaped and respawned warm.
    terminate_grace:
        SIGTERM → SIGKILL escalation grace, as in the portfolio.
    start_method / use_shm / trace:
        As for :class:`~repro.portfolio.parallel.ParallelPortfolioChecker`.
    slo:
        Optional :class:`~repro.serve.telemetry.SloRegistry`; when set,
        every completion/failure/deadline-kill/respawn is scored against
        the configured per-tenant objectives.
    postmortem_dir:
        Directory for flight-recorder postmortem JSON artifacts, written
        whenever a worker is staged-killed for a crash or deadline.
        ``None`` disables the dumps (the in-memory rings still run).
    sample_interval:
        Seconds between resource-sampler ticks (worker RSS/CPU
        histograms); ``0`` disables the sampler thread.
    """

    _POLL_INTERVAL = 0.05
    #: Flight-ring capacity per worker (parent side).
    _FLIGHT_CAPACITY = 256
    #: How many recent postmortem paths `stats()` reports.
    _POSTMORTEM_STATS = 8

    def __init__(
        self,
        workers: int = 2,
        tenants: Optional[TenantManager] = None,
        job_deadline: Optional[float] = None,
        terminate_grace: float = 1.0,
        start_method: Optional[str] = None,
        use_shm: Optional[bool] = None,
        trace: bool = False,
        slo: Optional[Any] = None,
        postmortem_dir: Optional[str] = None,
        sample_interval: float = 0.5,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = workers
        self.tenants = tenants if tenants is not None else TenantManager(None)
        self.job_deadline = job_deadline
        self.terminate_grace = terminate_grace
        self.start_method = start_method
        self.use_shm = use_shm
        self.trace = trace
        # With tracing on, pool counters land in the ambient tracer's
        # registry (one merged timeline+metrics dump).  Without it the
        # ambient registry is the no-op NULL_METRICS — the pool then
        # keeps its own, so the telemetry plane works untraced.
        tracer = get_tracer()
        self.metrics: MetricsRegistry = (
            tracer.metrics if tracer.enabled else MetricsRegistry()
        )
        self.slo = slo
        self.postmortem_dir = postmortem_dir
        self.sample_interval = sample_interval
        self._runtime: Optional[ExecRuntime] = None
        self._board = JobBoard()
        self._workers: List[WorkerHandle] = []
        self._inflight: Dict[int, _Inflight] = {}
        self._results: Dict[int, ServeResult] = {}
        #: Live cube-group races, by parent job id.
        self._cube_groups: Dict[int, _CubeGroup] = {}
        #: Cube sub-job id → parent job id (kept until the sub-job's
        #: result — or corpse — is absorbed, so late losers are
        #: recognised and dropped).
        self._cube_subjobs: Dict[int, int] = {}
        self._next_job_id = 0
        #: Parent-side pools generated once per miter shape and shipped
        #: read-only with every job segment.
        self._pools: Dict[Tuple, SharedPool] = {}
        self._sampler: Optional[ResourceSampler] = None
        #: Paths of postmortem artifacts written this run.
        self.postmortems: List[str] = []
        self.started = False
        #: Set while ``shutdown`` runs: workers exiting on the bye
        #: sentinel are orderly, not crashes to respawn and postmortem.
        self._draining = False

    @property
    def registry(self):
        return self._runtime.registry if self._runtime is not None else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        self._runtime = ExecRuntime(
            start_method=self.start_method,
            use_shm=self.use_shm,
            trace=self.trace,
            terminate_grace=self.terminate_grace,
            flight=True,
            flight_capacity=self._FLIGHT_CAPACITY,
        ).open()
        for index in range(self.num_workers):
            handle = WorkerHandle(index=index, name=f"serve-w{index}")
            self._runtime.spawn(
                handle,
                run_serve_job,
                mode="loop",
                trace_name=f"worker:serve{index}",
            )
            self._workers.append(handle)
        if self.sample_interval > 0:
            self._sampler = ResourceSampler(
                self._worker_pids,
                self.metrics,
                prefix="serve.worker",
                interval=self.sample_interval,
            )
            self._sampler.start()
        self._draining = False
        self.started = True

    def _worker_pids(self) -> List[Optional[int]]:
        return [w.pid for w in self._workers]

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool: optionally drain, then stop every worker.

        With ``drain`` the pool first waits (up to ``timeout``) for
        in-flight jobs; workers then get the sentinel and a join grace
        before the staged SIGTERM → SIGKILL path runs.  The runtime's
        registry reap at the end guarantees zero leaked segments,
        whatever state the workers died in.
        """
        if not self.started:
            return
        self._draining = True
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        deadline = time.monotonic() + timeout
        if drain:
            while self._inflight and time.monotonic() < deadline:
                self.poll(self._POLL_INTERVAL)
        for worker in self._workers:
            try:
                worker.inbox.put(None)
            except BaseException:
                pass
        join_grace = max(0.5, min(5.0, deadline - time.monotonic()))
        for worker in self._workers:
            worker.process.join(join_grace)
        # Collect the byes (worker trace payloads ride on them).
        self.poll(0.2)
        for worker in self._workers:
            self._runtime.stop(worker)
            worker.inbox.close()
            worker.inbox.cancel_join_thread()
        self._runtime.close()
        self._runtime = None
        self.tenants.flush()
        self._workers.clear()
        self.started = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: ServeJob) -> int:
        """Board one job (affinity: least-loaded worker); returns its id.

        The job is dispatched immediately when any worker is idle;
        otherwise it waits on the board, from which the next worker to
        go idle — not necessarily the affinity one — will claim it.
        """
        if not self.started:
            self.start()
        if job.engine in ("cubes", "cube"):
            return self._submit_cube_group(job)
        job_id = self._next_job_id
        self._next_job_id += 1
        worker = min(
            self._workers,
            key=lambda w: len(w.assigned) + self._board.queued_for(w.index),
        )
        payload: Dict[str, object] = {
            "job": job_id,
            "spec": (job.engine, dict(job.engine_kwargs)),
            "cache": self.tenants.worker_config(job.tenant),
            "tenant": job.tenant,
            "meta": {"tenant": job.tenant, "engine": job.engine},
        }
        descriptor = self._runtime.publish_aig(
            job.miter, pool=self._shared_pool(job)
        )
        if descriptor is not None:
            payload["miter_ref"] = descriptor
        else:
            payload["miter"] = job.miter
        deadline = job.deadline if job.deadline is not None else self.job_deadline
        token = CancelToken(f"job{job_id}")
        self._inflight[job_id] = _Inflight(
            job=job,
            worker=-1,
            submitted=time.monotonic(),
            deadline_at=(
                time.monotonic() + deadline if deadline is not None else None
            ),
            descriptor=descriptor,
            token=token,
        )
        self._board.add(job_id, payload, token=token, affinity=worker.index)
        self.metrics.counter_add("serve.jobs_submitted")
        self._runtime.flight_ring(worker.index).record(
            "job",
            "submitted",
            job=job_id,
            tenant=job.tenant,
            engine=job.engine,
            name=job.name or None,
        )
        self._dispatch()
        return job_id

    def _submit_cube_group(self, job: ServeJob) -> int:
        """Fan one hard query out as a monolith + 2^k cube siblings.

        One published segment serves every sibling; the sub-jobs spread
        across the pool round-robin, so a single hard query occupies
        multiple warm workers at once.  ``engine_kwargs``: ``split_k``
        (split width, default 2) and ``conflict_limit``.
        """
        parent_id = self._next_job_id
        self._next_job_id += 1
        kwargs = dict(job.engine_kwargs)
        split_k = int(kwargs.get("split_k", 2))
        conflict_limit = kwargs.get("conflict_limit")
        cubes = enumerate_cubes(choose_split_pis(job.miter, split_k))
        deadline = (
            job.deadline if job.deadline is not None else self.job_deadline
        )
        now = time.monotonic()
        descriptor = self._runtime.publish_aig(job.miter)
        group = _CubeGroup(
            job_id=parent_id,
            job=job,
            submitted=now,
            deadline_at=(now + deadline if deadline is not None else None),
            descriptor=descriptor,
            num_cubes=len(cubes),
        )
        self._cube_groups[parent_id] = group
        self.metrics.counter_add("serve.jobs_submitted")
        self.metrics.counter_add("serve.cube_groups")
        self.metrics.counter_add("cubes.split", len(cubes))
        base: Dict[str, object] = {"cube_group": parent_id}
        if descriptor is not None:
            base["aig_ref"] = descriptor
        else:
            base["aig"] = job.miter
        if conflict_limit is not None:
            base["conflict_limit"] = int(conflict_limit)
        if deadline is not None:
            base["deadline_epoch"] = time.time() + deadline
        if kwargs.get("cube_delay"):  # test knob: slow cube siblings
            base["cube_delay"] = float(kwargs["cube_delay"])
        siblings: List[Tuple[str, Optional[Cube]]] = [(MONOLITH, None)]
        siblings.extend((str(cube), cube) for cube in cubes)
        for offset, (label, cube) in enumerate(siblings):
            sub_id = self._next_job_id
            self._next_job_id += 1
            token = group.cancel.new_token(label)
            payload = dict(base)
            payload["job"] = sub_id
            payload["meta"] = {
                "tenant": job.tenant, "engine": "cubes", "cube": label,
            }
            if cube is not None:
                payload["cube"] = cube.as_list()
                if "cube_delay" in base:
                    payload["delay"] = base["cube_delay"]
            self._inflight[sub_id] = _Inflight(
                job=job,
                worker=-1,
                submitted=now,
                deadline_at=None,  # the *group* deadline governs
                descriptor=None,  # the group owns the segment
                token=token,
            )
            group.pending.add(sub_id)
            group.labels[sub_id] = label
            affinity = self._workers[offset % len(self._workers)].index
            self._board.add(sub_id, payload, token=token, affinity=affinity)
            self._cube_subjobs[sub_id] = parent_id
        self._dispatch()
        return parent_id

    def _shared_pool(self, job: ServeJob) -> Optional[SharedPool]:
        """The once-generated pattern pool for this job's miter shape."""
        if job.engine not in ("sim", "combined"):
            return None
        try:
            config = (
                EngineConfig(**job.engine_kwargs)
                if job.engine_kwargs
                else EngineConfig()
            )
        except Exception:
            return None
        key = (
            job.miter.num_pis,
            int(config.num_random_words),
            int(config.seed),
            str(config.pattern_strategy),
        )
        pool = self._pools.get(key)
        if pool is None:
            pool = SharedPool.generate(
                job.miter.num_pis,
                config.num_random_words,
                config.seed,
                config.pattern_strategy,
            )
            self._pools[key] = pool
        return pool

    def _dispatch(self) -> None:
        """Commit board jobs to idle workers (own queue, then steal)."""
        for worker in self._workers:
            self._dispatch_worker(worker)

    def _dispatch_worker(self, worker: WorkerHandle) -> None:
        if worker.assigned or not worker.alive or worker.inbox is None:
            return
        while True:
            board_job = self._board.take(worker.index)
            if board_job is None:
                return
            entry = self._inflight.get(board_job.job_id)
            if entry is None:
                continue  # already settled (deadline expiry raced it)
            entry.worker = worker.index
            worker.assigned.append(board_job.job_id)
            try:
                worker.inbox.put(board_job.payload)
            except BaseException:
                pass  # dying worker: the dead-worker reap settles it
            return

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def poll(self, timeout: float = 0.1) -> List[ServeResult]:
        """Advance the pool: absorb results, enforce deadlines, respawn.

        Returns the results that completed during this call.  Safe to
        call from exactly one thread (the server's executor pump).
        """
        completed: List[ServeResult] = []
        if not self.started:
            return completed
        deadline = time.monotonic() + max(timeout, 0.0)
        first = True
        while True:
            wait = deadline - time.monotonic() if first else 0.0
            message = self._runtime.poll(wait)
            if message is None:
                break
            first = False
            result = self._absorb_message(message)
            if result is not None:
                completed.append(result)
        completed.extend(self._enforce_deadlines())
        completed.extend(self._reap_dead_workers())
        self._dispatch()
        return completed

    def _absorb_message(self, message: Dict) -> Optional[ServeResult]:
        kind = message.get("kind")
        self._runtime.fold_flight(message)
        if kind == "bye":
            self._runtime.merge_trace(message)
            return None
        if kind != "result":
            return None
        job_id = message.get("job")
        if job_id in self._cube_subjobs:
            return self._absorb_cube_result(job_id, message)
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            return None  # job already settled (deadline kill raced it)
        worker = self._workers[entry.worker]
        if job_id in worker.assigned:
            worker.assigned.remove(job_id)
        worker.jobs_done += 1
        self._release_segment(entry)
        delta = message.get("cache_delta")
        if delta:
            self.tenants.merge_delta(entry.job.tenant, delta)
        result = ServeResult(
            job_id=job_id,
            name=entry.job.name,
            tenant=entry.job.tenant,
            status=str(message.get("status", "error")),
            cex=message.get("cex"),
            seconds=float(message.get("seconds", 0.0)),
            latency=time.monotonic() - entry.submitted,
            worker=entry.worker,
            error=str(message.get("error", "")),
            cache_hits=int(message.get("hits", 0)),
            cache_lookups=int(message.get("lookups", 0)),
        )
        self.metrics.counter_add("serve.jobs_completed")
        self.metrics.counter_add("cache.hits", result.cache_hits)
        self.metrics.counter_add("cache.lookups", result.cache_lookups)
        self.metrics.observe("serve.job.latency_seconds", result.latency)
        if self.slo is not None:
            self.slo.record_job(
                result.tenant, result.latency, failed=not result.ok
            )
        self._results[job_id] = result
        self._dispatch_worker(worker)
        return result

    def _absorb_cube_result(
        self, sub_id: int, message: Dict
    ) -> Optional[ServeResult]:
        """Fold one cube sibling's result into its race.

        Returns the *parent* job's result when this sibling settles the
        race; late losers of an already-settled race only free their
        worker and bookkeeping.
        """
        entry = self._inflight.pop(sub_id, None)
        parent_id = self._cube_subjobs.pop(sub_id, None)
        worker = (
            self._workers[entry.worker]
            if entry is not None and entry.worker >= 0
            else None
        )
        if worker is not None:
            if sub_id in worker.assigned:
                worker.assigned.remove(sub_id)
            worker.jobs_done += 1
        group = (
            self._cube_groups.get(parent_id)
            if parent_id is not None
            else None
        )
        result: Optional[ServeResult] = None
        if group is not None and not group.settled:
            group.pending.discard(sub_id)
            label = group.labels.get(sub_id, "")
            status = str(message.get("status", "error"))
            seconds = float(message.get("seconds", 0.0))
            if status == "sat":
                result = self._settle_cube_group(
                    group, "nonequivalent", message.get("cex"),
                    winner=label, seconds=seconds,
                )
            elif status == "unsat":
                if label == MONOLITH:
                    result = self._settle_cube_group(
                        group, "equivalent", None,
                        winner=MONOLITH, seconds=seconds,
                    )
                else:
                    group.unsat_cubes += 1
                    if group.unsat_cubes == group.num_cubes:
                        result = self._settle_cube_group(
                            group, "equivalent", None,
                            winner="all-cubes", seconds=seconds,
                        )
            else:
                group.unknown = True
            if result is None and not group.pending:
                # Every sibling reported, none conclusive.
                result = self._settle_cube_group(
                    group, "undecided", None, winner=None, seconds=seconds,
                )
        if worker is not None:
            self._dispatch_worker(worker)
        return result

    def _settle_cube_group(
        self,
        group: _CubeGroup,
        status: str,
        cex: Optional[List[int]],
        winner: Optional[str],
        seconds: float = 0.0,
        error: str = "",
    ) -> ServeResult:
        """First-winner resolution: settle the parent, cancel the rest.

        Siblings still queued on the board are revoked for free; busy
        losers keep their warm worker and report into the void (the
        ``settled`` flag plus the sub-job map drop their results).
        """
        group.settled = True
        self._cube_groups.pop(group.job_id, None)
        group.cancel.cancel_rest(reason="cancelled")
        revoked = self._board.revoke_cancelled()
        cancelled = 0
        for board_job in revoked:
            if board_job.job_id in group.pending:
                group.pending.discard(board_job.job_id)
                self._inflight.pop(board_job.job_id, None)
                self._cube_subjobs.pop(board_job.job_id, None)
                cancelled += 1
        # Whatever is still pending is running on a worker: a discarded
        # (but not killed) loser.
        cancelled += len(group.pending)
        if cancelled:
            self.metrics.counter_add("cubes.cancelled", cancelled)
        if group.descriptor is not None and self.registry is not None:
            try:
                self.registry.unpublish(group.descriptor)
            except Exception:
                pass
            group.descriptor = None
        result = ServeResult(
            job_id=group.job_id,
            name=group.job.name,
            tenant=group.job.tenant,
            status=status,
            cex=cex,
            seconds=seconds,
            latency=time.monotonic() - group.submitted,
            worker=-1,
            error=error,
        )
        self.metrics.counter_add("serve.jobs_completed")
        self.metrics.observe("serve.job.latency_seconds", result.latency)
        if self.slo is not None:
            if error == "job deadline exceeded":
                self.slo.record_deadline_miss(result.tenant)
            else:
                self.slo.record_job(
                    result.tenant, result.latency, failed=not result.ok
                )
        if winner is not None:
            self.metrics.counter_add("cubes.races")
        self._results[group.job_id] = result
        return result

    def _cube_subjob_failed(self, sub_id: int, reason: str) -> Optional[ServeResult]:
        """A cube sibling died with its worker: treat it as unknown."""
        return self._absorb_cube_result(
            sub_id, {"job": sub_id, "status": "error", "error": reason}
        )

    def _release_segment(self, entry: _Inflight) -> None:
        if entry.descriptor is not None and self.registry is not None:
            try:
                self.registry.unpublish(entry.descriptor)
            except Exception:
                pass
            entry.descriptor = None

    def _settle_error(
        self,
        job_id: int,
        entry: _Inflight,
        reason: str,
        worker_index: int,
        deadline_miss: bool = False,
    ) -> ServeResult:
        """Resolve one job as an error result (kill, crash, expiry)."""
        self._release_segment(entry)
        if entry.token is not None:
            entry.token.cancel(reason)
        result = ServeResult(
            job_id=job_id,
            name=entry.job.name,
            tenant=entry.job.tenant,
            status="error",
            latency=time.monotonic() - entry.submitted,
            worker=worker_index,
            error=reason,
        )
        if self.slo is not None:
            if deadline_miss:
                self.slo.record_deadline_miss(result.tenant)
            else:
                self.slo.record_job(
                    result.tenant, result.latency, failed=True
                )
        self._results[job_id] = result
        return result

    def _fail_worker_jobs(
        self, worker: WorkerHandle, reason: str, deadline_job: int = -1
    ) -> List[ServeResult]:
        """Settle every job dispatched to a dead worker as an error.

        ``deadline_job`` marks the job whose deadline triggered the kill
        — its tenant is charged a deadline miss in the SLO ledger; the
        rest of the dispatched jobs are collateral hard failures.
        """
        failed: List[ServeResult] = []
        for job_id in list(worker.assigned):
            if job_id in self._cube_subjobs:
                settled = self._cube_subjob_failed(job_id, reason)
                if settled is not None:
                    failed.append(settled)
                continue
            entry = self._inflight.pop(job_id, None)
            if entry is None:
                continue
            failed.append(
                self._settle_error(
                    job_id,
                    entry,
                    reason,
                    worker.index,
                    deadline_miss=(job_id == deadline_job),
                )
            )
        worker.assigned.clear()
        return failed

    def _write_postmortem(
        self,
        worker: WorkerHandle,
        reason: str,
        failed: List[ServeResult],
    ) -> Optional[str]:
        """Dump the worker's flight ring as a postmortem JSON artifact."""
        ring = self._runtime.flight_ring(worker.index)
        ring.record(
            "kill",
            reason,
            worker=worker.index,
            pid=worker.pid,
            exitcode=worker.process.exitcode,
            failed_jobs=[r.job_id for r in failed],
        )
        if self.postmortem_dir is None:
            return None
        try:
            os.makedirs(self.postmortem_dir, exist_ok=True)
            payload = {
                "worker": worker.index,
                "pid": worker.pid,
                "reason": reason,
                "exitcode": worker.process.exitcode,
                "respawns": worker.respawns,
                "ts": round(time.time(), 6),
                "failed_jobs": [r.as_dict() for r in failed],
                "events": ring.to_json(),
            }
            name = (
                f"postmortem_w{worker.index}_"
                f"{int(time.time() * 1000)}_{len(self.postmortems)}.json"
            )
            path = os.path.join(self.postmortem_dir, name)
            fd, tmp = tempfile.mkstemp(
                dir=self.postmortem_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=1, sort_keys=True)
                os.replace(tmp, path)  # atomic: readers never see a torso
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.postmortems.append(path)
            self.metrics.counter_add("serve.postmortems_written")
            return path
        except Exception:
            # Telemetry failure must never stop the respawn.
            return None

    def _respawn(
        self,
        worker: WorkerHandle,
        reason: str = "crash",
        failed: Optional[List[ServeResult]] = None,
    ) -> None:
        """Replace a dead worker in place (same index, fresh process)."""
        self._write_postmortem(worker, reason, failed or [])
        self._runtime.stop(worker, reason)
        # Persist merged knowledge first so the replacement loads it and
        # comes up warm, not cold.  (The runtime respawn gives it a
        # fresh inbox, token, process and flight ring — the old ring is
        # in the postmortem, or gone with nothing to tell.)
        self.tenants.flush()
        self._runtime.respawn(
            worker,
            run_serve_job,
            trace_name=f"worker:serve{worker.index}",
        )
        self.metrics.counter_add("serve.workers_respawned")
        if self.slo is not None:
            self.slo.record_respawn()
        self._dispatch_worker(worker)

    def _enforce_deadlines(self) -> List[ServeResult]:
        now = time.monotonic()
        completed: List[ServeResult] = []
        for worker in list(self._workers):
            if not worker.assigned:
                continue
            head = worker.assigned[0]
            entry = self._inflight.get(head)
            if (
                entry is None
                or entry.deadline_at is None
                or now < entry.deadline_at
            ):
                continue
            self.metrics.counter_add("serve.deadline_kills")
            failed = self._fail_worker_jobs(
                worker, "job deadline exceeded", deadline_job=head
            )
            completed.extend(failed)
            self._respawn(worker, reason="deadline", failed=failed)
        # Cube races run under a *group* deadline (the sub-jobs carry
        # none of their own): an expired race settles as one error and
        # revokes its queued siblings — busy ones stay on their warm
        # workers, their late results are dropped.
        for group in list(self._cube_groups.values()):
            if group.deadline_at is None or now < group.deadline_at:
                continue
            completed.append(
                self._settle_cube_group(
                    group, "error", None, winner=None,
                    error="job deadline exceeded",
                )
            )
        # Jobs whose deadline expired while still queued on the board
        # settle for free: cancel the token, no worker to kill.
        for job_id, entry in list(self._inflight.items()):
            if (
                entry.worker >= 0
                or entry.deadline_at is None
                or now < entry.deadline_at
            ):
                continue
            del self._inflight[job_id]
            completed.append(
                self._settle_error(
                    job_id,
                    entry,
                    "job deadline exceeded",
                    -1,
                    deadline_miss=True,
                )
            )
        self._board.revoke_cancelled()
        return completed

    def _reap_dead_workers(self) -> List[ServeResult]:
        completed: List[ServeResult] = []
        for worker in list(self._workers):
            if worker.alive:
                continue
            failed: List[ServeResult] = []
            if worker.assigned:
                failed = self._fail_worker_jobs(
                    worker,
                    "worker died "
                    f"(exit code {worker.process.exitcode})",
                )
                completed.extend(failed)
            if self._draining:
                # Workers exit on the bye sentinel during shutdown;
                # that is orderly, not a crash to postmortem and
                # respawn (a replacement would outlive the pool).
                continue
            self._respawn(worker, reason="crash", failed=failed)
        return completed

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run_batch(
        self, jobs: List[ServeJob], timeout: Optional[float] = None
    ) -> List[ServeResult]:
        """Submit a batch and wait for every result (submission order)."""
        ids = [self.submit(job) for job in jobs]
        wanted = set(ids)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while wanted - set(self._results):
            if deadline is not None and time.monotonic() >= deadline:
                break
            self.poll(self._POLL_INTERVAL)
        self.tenants.flush()
        results = []
        for job_id in ids:
            result = self._results.pop(job_id, None)
            if result is None:
                result = ServeResult(
                    job_id=job_id,
                    name="",
                    tenant="",
                    status="error",
                    error="batch timeout",
                )
            results.append(result)
        return results

    def take_result(self, job_id: int) -> Optional[ServeResult]:
        """Pop a completed result by id (server-side future resolution)."""
        return self._results.pop(job_id, None)

    def stats(self) -> Dict[str, object]:
        sampled_rss = self._sampler.last_rss if self._sampler else {}
        runtime = self._runtime
        return {
            "workers": self.num_workers,
            "inflight": len(self._inflight),
            "board": len(self._board),
            "cube_groups": len(self._cube_groups),
            "jobs_done": sum(w.jobs_done for w in self._workers),
            "respawns": sum(w.respawns for w in self._workers),
            "jobs_submitted": int(
                self.metrics.counter_value("serve.jobs_submitted")
            ),
            "jobs_completed": int(
                self.metrics.counter_value("serve.jobs_completed")
            ),
            "deadline_kills": int(
                self.metrics.counter_value("serve.deadline_kills")
            ),
            "shm": self.registry is not None,
            "postmortems": self.postmortems[-self._POSTMORTEM_STATS:],
            "per_worker": [
                {
                    "index": w.index,
                    "pid": w.pid,
                    "alive": w.alive,
                    "queued": len(w.assigned)
                    + self._board.queued_for(w.index),
                    "assigned": len(w.assigned),
                    "jobs_done": w.jobs_done,
                    "respawns": w.respawns,
                    "rss_bytes": sampled_rss.get(w.pid),
                    "flight_events": (
                        len(runtime.flight_ring(w.index))
                        if runtime is not None
                        else 0
                    ),
                }
                for w in self._workers
            ],
        }
