"""The persistent warm worker pool behind the serve daemon.

One-shot portfolio runs pay fork/spawn, module import, cache load and
pattern-pool generation on *every* query.  The pool amortises all four:
worker processes are spawned once and stay resident, keeping per-tenant
knowledge caches, engine structures and PI pattern pools hot across
queries.  Miters travel to workers zero-copy through the
:mod:`repro.shm` data plane (one published segment per job, unpublished
as soon as its result lands), and verdict deltas travel back on the
result queue for the parent to merge into the tenant caches and persist
— exactly the parent-merges ownership model of the parallel portfolio.

Fault tolerance mirrors PR 1's orchestration layer: a worker that
crashes or blows its per-job deadline is stopped with the staged
SIGTERM → SIGKILL machinery (:func:`repro.portfolio.parallel.stop_process_staged`)
and respawned; the respawn starts *warm* because it reloads the merged
tenant caches from disk.  The in-flight job is reported as an error —
the daemon never hangs on a wedged engine.

:class:`WorkerPool` is deliberately synchronous (blocking queue I/O,
explicit :meth:`poll`); the asyncio front end in
:mod:`repro.serve.server` drives it from an executor thread.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue as queue_module
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.aig.network import Aig
from repro.cache.config import CacheConfig
from repro.cache.knowledge import SweepCache
from repro.obs import (
    FlightRecorder,
    FlightRecorderHandler,
    MetricsRegistry,
    ResourceSampler,
    Tracer,
    get_logger,
    get_tracer,
    set_tracer,
)
from repro.portfolio.parallel import (
    build_checker,
    pool_from_adoption,
    resolve_start_method,
    resolve_use_shm,
    stop_process_staged,
)
from repro.shm import (
    SegmentDescriptor,
    SegmentRegistry,
    adopt_aig,
    aig_shm_arrays,
    reap_orphans,
    shm_available,
)
from repro.sweep.classes import SharedPool
from repro.sweep.config import EngineConfig
from repro.serve.tenants import DEFAULT_TENANT, TenantManager

__all__ = ["ServeJob", "ServeResult", "WorkerPool"]


@dataclass
class ServeJob:
    """One miter to check, with its tenancy and engine choice."""

    miter: Aig
    tenant: str = DEFAULT_TENANT
    engine: str = "combined"
    engine_kwargs: Dict = field(default_factory=dict)
    #: Per-job wall-clock deadline in seconds (None → pool default).
    deadline: Optional[float] = None
    name: str = ""


@dataclass
class ServeResult:
    """Outcome of one served job."""

    job_id: int
    name: str
    tenant: str
    status: str
    cex: Optional[List[int]] = None
    #: Worker-side check seconds (engine time only).
    seconds: float = 0.0
    #: Parent-stamped submit→result seconds (queueing included) — the
    #: number the bench harness turns into latency percentiles.
    latency: float = 0.0
    worker: int = -1
    error: str = ""
    cache_hits: int = 0
    cache_lookups: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("equivalent", "nonequivalent", "undecided")

    def as_dict(self) -> Dict[str, object]:
        return {
            "job": self.job_id,
            "name": self.name,
            "tenant": self.tenant,
            "status": self.status,
            "cex": self.cex,
            "seconds": round(self.seconds, 6),
            "latency": round(self.latency, 6),
            "worker": self.worker,
            "error": self.error,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
        }


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _load_worker_cache(
    caches: Dict[Tuple[str, int], SweepCache],
    spec: Optional[Tuple[str, int]],
) -> Optional[SweepCache]:
    """The worker-resident readonly cache for one tenant (lazy-loaded)."""
    if spec is None:
        return None
    directory, shards = str(spec[0]), int(spec[1])
    key = (directory, shards)
    cached = caches.get(key)
    if cached is None:
        cached = SweepCache(
            CacheConfig(directory=directory, readonly=True, shards=shards)
        )
        caches[key] = cached
    return cached


def _resident_pool(
    pools: Dict[Tuple, SharedPool],
    adopted: Optional[SharedPool],
    spec: Tuple[str, Dict],
    num_pis: int,
) -> Optional[SharedPool]:
    """The worker-resident pattern pool for one miter shape.

    First preference is the pool already resident from an earlier query
    (fully warm).  Otherwise the pool shipped in the job's segment is
    copied once off the mapping and kept — the segment is unpublished
    after the job, so the resident copy must own its words.  Workers
    never regenerate patterns a parent already generated.
    """
    if spec[0] not in ("sim", "combined"):
        return None
    try:
        config = EngineConfig(**spec[1]) if spec[1] else EngineConfig()
    except Exception:
        return None
    key = (
        num_pis,
        int(config.num_random_words),
        int(config.seed),
        str(config.pattern_strategy),
    )
    resident = pools.get(key)
    if resident is not None:
        return resident
    if adopted is not None and adopted.compatible(config, num_pis):
        resident = SharedPool(
            pi_words=adopted.pi_words.copy(),
            num_pis=adopted.num_pis,
            num_random_words=adopted.num_random_words,
            seed=adopted.seed,
            strategy=adopted.strategy,
            num_cex=adopted.num_cex,
        )
    else:
        resident = SharedPool.generate(
            num_pis,
            config.num_random_words,
            config.seed,
            config.pattern_strategy,
        )
    pools[key] = resident
    return resident


def _serve_worker_main(
    index: int,
    job_queue: "mp.Queue",
    result_queue: "mp.Queue",
    shm_token: Optional[str],
    run_pid: int,
    trace: bool,
) -> None:
    """Long-lived worker loop: adopt, check, report, stay warm.

    The process exits only on the ``None`` sentinel (drain) or a kill
    signal.  Per-job failures are reported and survived — one malformed
    miter must not cost the pool a warm worker.  Every segment the
    worker creates (none today, but the active registry makes engine
    internals free to publish) is stamped with the daemon's pid, so a
    foreign daemon's orphan sweep leaves this run alone.
    """
    tracer: Optional[Tracer] = None
    if trace:
        # The "worker:" prefix matches the portfolio convention and is
        # what tools/check_trace.py --require-workers keys on.
        tracer = Tracer(process_name=f"worker:serve{index}")
        set_tracer(tracer)
    # The worker's half of the flight recorder: job milestones plus any
    # repro.* log lines, shipped incrementally on every result so the
    # parent's ring stays current even if this process is SIGKILLed next.
    recorder = FlightRecorder(capacity=128)
    flight_handler = FlightRecorderHandler(recorder)
    get_logger().addHandler(flight_handler)
    registry = None
    if shm_token is not None and shm_available():
        registry = SegmentRegistry(
            token=shm_token, suffix=f"w{index}", owner_pid=run_pid
        )
    caches: Dict[Tuple[str, int], SweepCache] = {}
    pools: Dict[Tuple, SharedPool] = {}
    # Per-tenant adaptive-scheduler cost models: lane latency histograms
    # calibrated on one tenant's workload stay warm across its jobs, so
    # repeat submissions dispatch with a trained model from pair one.
    cost_models: Dict[str, object] = {}
    jobs_done = 0
    try:
        while True:
            message = job_queue.get()
            if message is None:
                break
            job_id = message.get("job")
            started = time.perf_counter()
            adoption = None
            recorder.record(
                "job",
                "start",
                job=job_id,
                tenant=message.get("tenant"),
                engine=(message.get("spec") or ["?"])[0],
            )
            try:
                ref = message.get("miter_ref")
                if ref is not None:
                    if registry is None:
                        raise RuntimeError(
                            "segment descriptor without a registry"
                        )
                    adoption = registry.adopt(ref)
                    shipped_pool = pool_from_adoption(adoption)
                    miter = adopt_aig(adoption)
                else:
                    shipped_pool = None
                    miter = message["miter"]
                spec = tuple(message["spec"])
                cache = _load_worker_cache(caches, message.get("cache"))
                pool = _resident_pool(
                    pools, shipped_pool, spec, miter.num_pis
                )
                snapshot = cache.snapshot() if cache is not None else None
                cost_model = None
                if spec[0] == "combined":
                    from repro.sched import CostModel

                    tenant = message.get("tenant", DEFAULT_TENANT)
                    cost_model = cost_models.get(tenant)
                    if cost_model is None:
                        cost_model = CostModel()
                        cost_models[tenant] = cost_model
                checker = build_checker(
                    spec, cache=cache, initial_pool=pool,
                    cost_model=cost_model,
                )
                with get_tracer().span(
                    "serve.job", category="serve", job=job_id, engine=spec[0]
                ):
                    result = checker.check_miter(miter)
                reply = {
                    "kind": "result",
                    "job": job_id,
                    "index": index,
                    "status": result.status.value,
                    "cex": result.cex,
                    "seconds": time.perf_counter() - started,
                }
                if cache is not None:
                    delta = cache.counters.diff(snapshot)
                    reply["hits"] = delta.hits
                    reply["lookups"] = delta.lookups
                    reply["cache_delta"] = list(cache.store.pending)
                    # The delta now belongs to the parent; keep only the
                    # in-memory entries (they are what makes us warm).
                    cache.store.clear_pending()
                recorder.record(
                    "job",
                    "done",
                    job=job_id,
                    status=reply["status"],
                    seconds=round(reply["seconds"], 6),
                )
                reply["flight"] = recorder.take_new()
                result_queue.put(reply)
                jobs_done += 1
            except Exception as error:
                recorder.record(
                    "job", "error", job=job_id, error=repr(error)
                )
                result_queue.put(
                    {
                        "kind": "result",
                        "job": job_id,
                        "index": index,
                        "status": "error",
                        "error": repr(error),
                        "seconds": time.perf_counter() - started,
                        "flight": recorder.take_new(),
                    }
                )
            finally:
                if adoption is not None:
                    registry.release(adoption)
    finally:
        bye = {
            "kind": "bye",
            "index": index,
            "jobs_done": jobs_done,
            "flight": recorder.take_new(),
        }
        if tracer is not None:
            bye["trace"] = tracer.export_payload()
        get_logger().removeHandler(flight_handler)
        try:
            result_queue.put(bye)
        except BaseException:
            pass
        if registry is not None:
            registry.close()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one persistent worker."""

    index: int
    process: "mp.process.BaseProcess"
    job_queue: "mp.Queue"
    #: Job ids queued on this worker, oldest first (the head is the one
    #: the worker is executing).
    assigned: List[int] = field(default_factory=list)
    jobs_done: int = 0
    respawns: int = 0


@dataclass
class _Inflight:
    """One submitted-but-unresolved job."""

    job: ServeJob
    worker: int
    submitted: float
    deadline_at: Optional[float]
    descriptor: Optional[SegmentDescriptor] = None


class WorkerPool:
    """A fixed-size pool of persistent warm CEC workers.

    Parameters
    ----------
    workers:
        Number of worker processes.
    tenants:
        The daemon's :class:`~repro.serve.tenants.TenantManager`; a
        persistence-less manager is built when omitted.
    job_deadline:
        Default per-job wall-clock deadline in seconds (None → no
        deadline).  A worker past it is reaped and respawned warm.
    terminate_grace:
        SIGTERM → SIGKILL escalation grace, as in the portfolio.
    start_method / use_shm / trace:
        As for :class:`~repro.portfolio.parallel.ParallelPortfolioChecker`.
    slo:
        Optional :class:`~repro.serve.telemetry.SloRegistry`; when set,
        every completion/failure/deadline-kill/respawn is scored against
        the configured per-tenant objectives.
    postmortem_dir:
        Directory for flight-recorder postmortem JSON artifacts, written
        whenever a worker is staged-killed for a crash or deadline.
        ``None`` disables the dumps (the in-memory rings still run).
    sample_interval:
        Seconds between resource-sampler ticks (worker RSS/CPU
        histograms); ``0`` disables the sampler thread.
    """

    _POLL_INTERVAL = 0.05
    #: Flight-ring capacity per worker (parent side).
    _FLIGHT_CAPACITY = 256
    #: How many recent postmortem paths `stats()` reports.
    _POSTMORTEM_STATS = 8

    def __init__(
        self,
        workers: int = 2,
        tenants: Optional[TenantManager] = None,
        job_deadline: Optional[float] = None,
        terminate_grace: float = 1.0,
        start_method: Optional[str] = None,
        use_shm: Optional[bool] = None,
        trace: bool = False,
        slo: Optional[Any] = None,
        postmortem_dir: Optional[str] = None,
        sample_interval: float = 0.5,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = workers
        self.tenants = tenants if tenants is not None else TenantManager(None)
        self.job_deadline = job_deadline
        self.terminate_grace = terminate_grace
        self._context = mp.get_context(resolve_start_method(start_method))
        self.use_shm = resolve_use_shm(use_shm)
        self.trace = trace
        # With tracing on, pool counters land in the ambient tracer's
        # registry (one merged timeline+metrics dump).  Without it the
        # ambient registry is the no-op NULL_METRICS — the pool then
        # keeps its own, so the telemetry plane works untraced.
        tracer = get_tracer()
        self.metrics: MetricsRegistry = (
            tracer.metrics if tracer.enabled else MetricsRegistry()
        )
        self.slo = slo
        self.postmortem_dir = postmortem_dir
        self.sample_interval = sample_interval
        self.registry: Optional[SegmentRegistry] = None
        self._result_queue: Optional[mp.Queue] = None
        self._workers: List[_WorkerHandle] = []
        self._inflight: Dict[int, _Inflight] = {}
        self._results: Dict[int, ServeResult] = {}
        self._next_job_id = 0
        #: Parent-side pools generated once per miter shape and shipped
        #: read-only with every job segment.
        self._pools: Dict[Tuple, SharedPool] = {}
        #: Parent-side flight ring per worker index: shipped worker
        #: events folded in with parent milestones (submit, kill).
        self._flight: Dict[int, FlightRecorder] = {}
        self._sampler: Optional[ResourceSampler] = None
        #: Paths of postmortem artifacts written this run.
        self.postmortems: List[str] = []
        self.started = False
        #: Set while ``shutdown`` runs: workers exiting on the bye
        #: sentinel are orderly, not crashes to respawn and postmortem.
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        if self.use_shm:
            try:
                reap_orphans()
            except Exception:
                pass
            try:
                self.registry = SegmentRegistry()
            except Exception:
                self.registry = None
        self._result_queue = self._context.Queue()
        for index in range(self.num_workers):
            self._workers.append(self._spawn(index))
        if self.sample_interval > 0:
            self._sampler = ResourceSampler(
                self._worker_pids,
                self.metrics,
                prefix="serve.worker",
                interval=self.sample_interval,
            )
            self._sampler.start()
        self._draining = False
        self.started = True

    def _worker_pids(self) -> List[Optional[int]]:
        return [w.process.pid for w in self._workers]

    def _flight_ring(self, index: int) -> FlightRecorder:
        ring = self._flight.get(index)
        if ring is None:
            ring = FlightRecorder(capacity=self._FLIGHT_CAPACITY)
            self._flight[index] = ring
        return ring

    def _spawn(self, index: int, respawns: int = 0) -> _WorkerHandle:
        job_queue: "mp.Queue" = self._context.Queue()
        process = self._context.Process(
            target=_serve_worker_main,
            args=(
                index,
                job_queue,
                self._result_queue,
                self.registry.token if self.registry is not None else None,
                os.getpid(),
                self.trace,
            ),
            daemon=False,
        )
        process.start()
        return _WorkerHandle(
            index=index,
            process=process,
            job_queue=job_queue,
            respawns=respawns,
        )

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool: optionally drain, then stop every worker.

        With ``drain`` the pool first waits (up to ``timeout``) for
        in-flight jobs; workers then get the sentinel and a join grace
        before the staged SIGTERM → SIGKILL path runs.  The registry
        reap at the end guarantees zero leaked segments, whatever state
        the workers died in.
        """
        if not self.started:
            return
        self._draining = True
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        deadline = time.monotonic() + timeout
        if drain:
            while self._inflight and time.monotonic() < deadline:
                self.poll(self._POLL_INTERVAL)
        for worker in self._workers:
            try:
                worker.job_queue.put(None)
            except BaseException:
                pass
        join_grace = max(0.5, min(5.0, deadline - time.monotonic()))
        for worker in self._workers:
            worker.process.join(join_grace)
        # Collect the byes (worker trace payloads ride on them).
        self.poll(0.2)
        for worker in self._workers:
            stop_process_staged(
                worker.process,
                self.terminate_grace,
                engine=f"serve-w{worker.index}",
            )
            worker.job_queue.close()
            worker.job_queue.cancel_join_thread()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
        if self.registry is not None:
            self.registry.reap()
            self.registry = None
        self.tenants.flush()
        self._workers.clear()
        self.started = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: ServeJob) -> int:
        """Queue one job on the least-loaded worker; returns its id."""
        if not self.started:
            self.start()
        job_id = self._next_job_id
        self._next_job_id += 1
        worker = min(self._workers, key=lambda w: len(w.assigned))
        payload: Dict[str, object] = {
            "job": job_id,
            "spec": (job.engine, dict(job.engine_kwargs)),
            "cache": self.tenants.worker_config(job.tenant),
            "tenant": job.tenant,
        }
        descriptor = None
        if self.registry is not None:
            try:
                arrays, meta = aig_shm_arrays(job.miter)
                pool = self._shared_pool(job)
                if pool is not None:
                    arrays["pi_words"] = pool.pi_words
                    meta["pool"] = {
                        "num_random_words": pool.num_random_words,
                        "seed": pool.seed,
                        "strategy": pool.strategy,
                        "num_cex": pool.num_cex,
                    }
                descriptor = self.registry.publish(arrays=arrays, meta=meta)
                payload["miter_ref"] = descriptor
            except Exception:
                descriptor = None
        if descriptor is None:
            payload["miter"] = job.miter
        deadline = job.deadline if job.deadline is not None else self.job_deadline
        self._inflight[job_id] = _Inflight(
            job=job,
            worker=worker.index,
            submitted=time.monotonic(),
            deadline_at=(
                time.monotonic() + deadline if deadline is not None else None
            ),
            descriptor=descriptor,
        )
        worker.assigned.append(job_id)
        worker.job_queue.put(payload)
        self.metrics.counter_add("serve.jobs_submitted")
        self._flight_ring(worker.index).record(
            "job",
            "submitted",
            job=job_id,
            tenant=job.tenant,
            engine=job.engine,
            name=job.name or None,
        )
        return job_id

    def _shared_pool(self, job: ServeJob) -> Optional[SharedPool]:
        """The once-generated pattern pool for this job's miter shape."""
        if job.engine not in ("sim", "combined"):
            return None
        try:
            config = (
                EngineConfig(**job.engine_kwargs)
                if job.engine_kwargs
                else EngineConfig()
            )
        except Exception:
            return None
        key = (
            job.miter.num_pis,
            int(config.num_random_words),
            int(config.seed),
            str(config.pattern_strategy),
        )
        pool = self._pools.get(key)
        if pool is None:
            pool = SharedPool.generate(
                job.miter.num_pis,
                config.num_random_words,
                config.seed,
                config.pattern_strategy,
            )
            self._pools[key] = pool
        return pool

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def poll(self, timeout: float = 0.1) -> List[ServeResult]:
        """Advance the pool: absorb results, enforce deadlines, respawn.

        Returns the results that completed during this call.  Safe to
        call from exactly one thread (the server's executor pump).
        """
        completed: List[ServeResult] = []
        if not self.started:
            return completed
        deadline = time.monotonic() + max(timeout, 0.0)
        first = True
        while True:
            wait = deadline - time.monotonic()
            if not first:
                wait = 0.0
            if wait < 0:
                wait = 0.0
            try:
                message = self._result_queue.get(timeout=wait)
            except (queue_module.Empty, OSError, ValueError):
                break
            first = False
            result = self._absorb_message(message)
            if result is not None:
                completed.append(result)
        completed.extend(self._enforce_deadlines())
        completed.extend(self._reap_dead_workers())
        return completed

    def _absorb_message(self, message: Dict) -> Optional[ServeResult]:
        kind = message.get("kind")
        shipped_flight = message.get("flight")
        if shipped_flight and "index" in message:
            self._flight_ring(int(message["index"])).extend(shipped_flight)
        if kind == "bye":
            trace_payload = message.get("trace")
            tracer = get_tracer()
            if trace_payload is not None and tracer.enabled:
                tracer.merge_child(trace_payload)
            return None
        if kind != "result":
            return None
        job_id = message.get("job")
        entry = self._inflight.pop(job_id, None)
        if entry is None:
            return None  # job already settled (deadline kill raced it)
        worker = self._workers[entry.worker]
        if job_id in worker.assigned:
            worker.assigned.remove(job_id)
        worker.jobs_done += 1
        self._release_segment(entry)
        delta = message.get("cache_delta")
        if delta:
            self.tenants.merge_delta(entry.job.tenant, delta)
        result = ServeResult(
            job_id=job_id,
            name=entry.job.name,
            tenant=entry.job.tenant,
            status=str(message.get("status", "error")),
            cex=message.get("cex"),
            seconds=float(message.get("seconds", 0.0)),
            latency=time.monotonic() - entry.submitted,
            worker=entry.worker,
            error=str(message.get("error", "")),
            cache_hits=int(message.get("hits", 0)),
            cache_lookups=int(message.get("lookups", 0)),
        )
        self.metrics.counter_add("serve.jobs_completed")
        self.metrics.counter_add("cache.hits", result.cache_hits)
        self.metrics.counter_add("cache.lookups", result.cache_lookups)
        self.metrics.observe("serve.job.latency_seconds", result.latency)
        if self.slo is not None:
            self.slo.record_job(
                result.tenant, result.latency, failed=not result.ok
            )
        self._results[job_id] = result
        return result

    def _release_segment(self, entry: _Inflight) -> None:
        if entry.descriptor is not None and self.registry is not None:
            try:
                self.registry.unpublish(entry.descriptor)
            except Exception:
                pass
            entry.descriptor = None

    def _fail_worker_jobs(
        self, worker: _WorkerHandle, reason: str, deadline_job: int = -1
    ) -> List[ServeResult]:
        """Settle every job assigned to a dead worker as an error.

        ``deadline_job`` marks the job whose deadline triggered the kill
        — its tenant is charged a deadline miss in the SLO ledger; the
        rest of the assigned jobs are collateral hard failures.
        """
        failed: List[ServeResult] = []
        for job_id in list(worker.assigned):
            entry = self._inflight.pop(job_id, None)
            if entry is None:
                continue
            self._release_segment(entry)
            result = ServeResult(
                job_id=job_id,
                name=entry.job.name,
                tenant=entry.job.tenant,
                status="error",
                latency=time.monotonic() - entry.submitted,
                worker=worker.index,
                error=reason,
            )
            if self.slo is not None:
                if job_id == deadline_job:
                    self.slo.record_deadline_miss(result.tenant)
                else:
                    self.slo.record_job(
                        result.tenant, result.latency, failed=True
                    )
            self._results[job_id] = result
            failed.append(result)
        worker.assigned.clear()
        return failed

    def _write_postmortem(
        self,
        worker: _WorkerHandle,
        reason: str,
        failed: List[ServeResult],
    ) -> Optional[str]:
        """Dump the worker's flight ring as a postmortem JSON artifact."""
        ring = self._flight_ring(worker.index)
        ring.record(
            "kill",
            reason,
            worker=worker.index,
            pid=worker.process.pid,
            exitcode=worker.process.exitcode,
            failed_jobs=[r.job_id for r in failed],
        )
        if self.postmortem_dir is None:
            return None
        try:
            os.makedirs(self.postmortem_dir, exist_ok=True)
            payload = {
                "worker": worker.index,
                "pid": worker.process.pid,
                "reason": reason,
                "exitcode": worker.process.exitcode,
                "respawns": worker.respawns,
                "ts": round(time.time(), 6),
                "failed_jobs": [r.as_dict() for r in failed],
                "events": ring.to_json(),
            }
            name = (
                f"postmortem_w{worker.index}_"
                f"{int(time.time() * 1000)}_{len(self.postmortems)}.json"
            )
            path = os.path.join(self.postmortem_dir, name)
            fd, tmp = tempfile.mkstemp(
                dir=self.postmortem_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=1, sort_keys=True)
                os.replace(tmp, path)  # atomic: readers never see a torso
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.postmortems.append(path)
            self.metrics.counter_add("serve.postmortems_written")
            return path
        except Exception:
            # Telemetry failure must never stop the respawn.
            return None

    def _respawn(
        self,
        worker: _WorkerHandle,
        reason: str = "crash",
        failed: Optional[List[ServeResult]] = None,
    ) -> None:
        """Replace a dead worker in place (same index, fresh process)."""
        self._write_postmortem(worker, reason, failed or [])
        stop_process_staged(
            worker.process,
            self.terminate_grace,
            engine=f"serve-w{worker.index}",
        )
        try:
            worker.job_queue.close()
            worker.job_queue.cancel_join_thread()
        except BaseException:
            pass
        # Persist merged knowledge first so the replacement loads it and
        # comes up warm, not cold.
        self.tenants.flush()
        fresh = self._spawn(worker.index, respawns=worker.respawns + 1)
        fresh.jobs_done = worker.jobs_done
        self._workers[worker.index] = fresh
        # Fresh process, fresh black box — the old ring is in the
        # postmortem (or gone with nothing to tell).
        self._flight[worker.index] = FlightRecorder(
            capacity=self._FLIGHT_CAPACITY
        )
        self.metrics.counter_add("serve.workers_respawned")
        if self.slo is not None:
            self.slo.record_respawn()

    def _enforce_deadlines(self) -> List[ServeResult]:
        now = time.monotonic()
        completed: List[ServeResult] = []
        for worker in list(self._workers):
            if not worker.assigned:
                continue
            head = worker.assigned[0]
            entry = self._inflight.get(head)
            if (
                entry is None
                or entry.deadline_at is None
                or now < entry.deadline_at
            ):
                continue
            self.metrics.counter_add("serve.deadline_kills")
            failed = self._fail_worker_jobs(
                worker, "job deadline exceeded", deadline_job=head
            )
            completed.extend(failed)
            self._respawn(worker, reason="deadline", failed=failed)
        return completed

    def _reap_dead_workers(self) -> List[ServeResult]:
        completed: List[ServeResult] = []
        for worker in list(self._workers):
            if worker.process.is_alive():
                continue
            failed: List[ServeResult] = []
            if worker.assigned:
                failed = self._fail_worker_jobs(
                    worker,
                    "worker died "
                    f"(exit code {worker.process.exitcode})",
                )
                completed.extend(failed)
            if self._draining:
                # Workers exit on the bye sentinel during shutdown;
                # that is orderly, not a crash to postmortem and
                # respawn (a replacement would outlive the pool).
                continue
            self._respawn(worker, reason="crash", failed=failed)
        return completed

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def run_batch(
        self, jobs: List[ServeJob], timeout: Optional[float] = None
    ) -> List[ServeResult]:
        """Submit a batch and wait for every result (submission order)."""
        ids = [self.submit(job) for job in jobs]
        wanted = set(ids)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while wanted - set(self._results):
            if deadline is not None and time.monotonic() >= deadline:
                break
            self.poll(self._POLL_INTERVAL)
        self.tenants.flush()
        results = []
        for job_id in ids:
            result = self._results.pop(job_id, None)
            if result is None:
                result = ServeResult(
                    job_id=job_id,
                    name="",
                    tenant="",
                    status="error",
                    error="batch timeout",
                )
            results.append(result)
        return results

    def take_result(self, job_id: int) -> Optional[ServeResult]:
        """Pop a completed result by id (server-side future resolution)."""
        return self._results.pop(job_id, None)

    def stats(self) -> Dict[str, object]:
        sampled_rss = self._sampler.last_rss if self._sampler else {}
        return {
            "workers": self.num_workers,
            "inflight": len(self._inflight),
            "jobs_done": sum(w.jobs_done for w in self._workers),
            "respawns": sum(w.respawns for w in self._workers),
            "jobs_submitted": int(
                self.metrics.counter_value("serve.jobs_submitted")
            ),
            "jobs_completed": int(
                self.metrics.counter_value("serve.jobs_completed")
            ),
            "deadline_kills": int(
                self.metrics.counter_value("serve.deadline_kills")
            ),
            "shm": self.registry is not None,
            "postmortems": self.postmortems[-self._POSTMORTEM_STATS:],
            "per_worker": [
                {
                    "index": w.index,
                    "pid": w.process.pid,
                    "alive": w.process.is_alive(),
                    "queued": len(w.assigned),
                    "assigned": len(w.assigned),
                    "jobs_done": w.jobs_done,
                    "respawns": w.respawns,
                    "rss_bytes": sampled_rss.get(w.process.pid),
                    "flight_events": len(self._flight.get(w.index) or ()),
                }
                for w in self._workers
            ],
        }
