"""Multi-tenant cache namespaces for the serve daemon.

Every tenant gets its own subdirectory of the daemon's cache root, with
a sharded proof store inside (:class:`~repro.cache.sharding.ShardedProofStore`):
knowledge never leaks between tenants, per-tenant flushes take
per-shard locks instead of one global one, and a tenant can be wiped by
removing one directory.

Ownership mirrors the portfolio's parent/worker split: the daemon (this
manager) holds the only *writable* cache per tenant; workers load
read-only snapshots from the same directories and ship verdict deltas
back on their result messages.  :meth:`TenantManager.merge_delta` folds
those in, and :meth:`flush` persists them — so a worker respawned after
a crash reloads everything its predecessors learned.
"""

from __future__ import annotations

import os
import re
from typing import Dict, Iterable, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.cache.knowledge import SweepCache
from repro.cache.store import Verdict

__all__ = ["TenantManager", "TenantError", "DEFAULT_TENANT"]

DEFAULT_TENANT = "default"

#: Tenant names become directory names: a strict allow-list keeps path
#: traversal (and weird filesystem surprises) impossible by construction.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class TenantError(ValueError):
    """An invalid tenant name (shape, not existence — tenants auto-create)."""


def validate_tenant(name: str) -> str:
    """Return the name when it is a legal tenant id, raise otherwise."""
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise TenantError(
            f"invalid tenant name {name!r} (need [A-Za-z0-9._-], max 64 "
            "chars, not starting with a dot or dash)"
        )
    return name


class TenantManager:
    """The daemon-side registry of per-tenant knowledge caches.

    Parameters
    ----------
    root:
        Cache root directory; each tenant lives in ``<root>/<tenant>/``.
        ``None`` disables persistence entirely — caches are in-memory
        only and workers start cold after every respawn.
    shards:
        Proof-store shard count used for every tenant (must stay
        constant for the lifetime of ``root``).
    """

    def __init__(self, root: Optional[str], shards: int = 4) -> None:
        self.root = root
        self.shards = int(shards)
        self._caches: Dict[str, SweepCache] = {}

    # ------------------------------------------------------------------

    def directory(self, tenant: str) -> Optional[str]:
        """Cache directory of a tenant (``None`` when persistence is off)."""
        validate_tenant(tenant)
        if self.root is None:
            return None
        return os.path.join(self.root, tenant)

    def cache(self, tenant: str) -> SweepCache:
        """The writable daemon-side cache of a tenant (auto-created)."""
        validate_tenant(tenant)
        cached = self._caches.get(tenant)
        if cached is not None:
            return cached
        directory = self.directory(tenant)
        config = CacheConfig(
            directory=directory,
            shards=self.shards if directory is not None else 1,
        )
        cache = SweepCache(config)
        self._caches[tenant] = cache
        return cache

    def worker_config(self, tenant: str) -> Optional[Tuple[str, int]]:
        """Picklable ``(directory, shards)`` for a worker-side snapshot.

        Workers rebuild a read-only :class:`SweepCache` from this —
        shipping the tuple instead of the cache object keeps spawn-safe
        pickling trivial and lets workers (re)load lazily per tenant.
        """
        directory = self.directory(tenant)
        if directory is None:
            return None
        return directory, self.shards

    # ------------------------------------------------------------------

    def merge_delta(
        self, tenant: str, delta: Iterable[Tuple[str, Verdict]]
    ) -> int:
        """Fold a worker's verdict delta into the tenant's cache."""
        cache = self.cache(tenant)
        taken = 0
        for key, verdict in delta:
            if not isinstance(verdict, Verdict):
                continue
            if cache.store.put(key, verdict):
                cache.counters.stores += 1
                taken += 1
        return taken

    def flush(self) -> int:
        """Persist every tenant's pending verdicts; returns records written."""
        return sum(cache.flush() for cache in self._caches.values())

    def compact(self) -> None:
        for cache in self._caches.values():
            cache.compact()

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Names of the tenants touched so far (sorted)."""
        return tuple(sorted(self._caches))

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant store sizes and counter snapshots."""
        return {
            tenant: {
                "entries": len(cache.store),
                "pending": len(cache.store.pending),
                "stores": cache.counters.stores,
            }
            for tenant, cache in sorted(self._caches.items())
        }
