"""CEC-as-a-service: a daemon with a persistent warm worker pool.

One-shot ``cec`` invocations pay process spawn, module import, knowledge
-cache load and PI pattern-pool generation on every query.  For
workloads that check many miters against the same design family —
regression farms, incremental synthesis loops — those fixed costs
dominate.  ``repro.serve`` amortises them:

- :mod:`repro.serve.server` — asyncio front end on a local Unix socket,
  speaking the length-prefixed JSON protocol of
  :mod:`repro.serve.protocol`;
- :mod:`repro.serve.pool` — persistent worker processes that keep
  per-tenant knowledge caches, compiled engine structures and pattern
  pools hot across queries, fed zero-copy through :mod:`repro.shm`;
- :mod:`repro.serve.tenants` — per-tenant cache namespaces backed by
  sharded proof stores (:mod:`repro.cache.sharding`);
- :mod:`repro.serve.admission` — bounded queues, ``busy`` backpressure,
  and draining graceful shutdown;
- :mod:`repro.serve.client` — the blocking :class:`ServeClient` library
  API used by ``cec submit`` and the bench harness;
- :mod:`repro.serve.telemetry` — per-tenant SLO accounting, the
  Prometheus HTTP scrape thread, and the ``cec top`` renderer.

See ``docs/serving.md`` for the architecture and operational guide.
"""

from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.client import ServeClient, ServeError
from repro.serve.pool import ServeJob, ServeResult, WorkerPool
from repro.serve.protocol import (
    ProtocolError,
    aig_from_wire,
    aig_to_wire,
    pack_frame,
    read_frame_sync,
    write_frame_sync,
)
from repro.serve.server import CecServer
from repro.serve.telemetry import (
    MetricsHttpServer,
    SloObjective,
    SloRegistry,
    format_top,
    parse_slo_spec,
)
from repro.serve.tenants import (
    DEFAULT_TENANT,
    TenantError,
    TenantManager,
    validate_tenant,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "CecServer",
    "DEFAULT_TENANT",
    "MetricsHttpServer",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeJob",
    "ServeResult",
    "SloObjective",
    "SloRegistry",
    "TenantError",
    "TenantManager",
    "WorkerPool",
    "aig_from_wire",
    "aig_to_wire",
    "format_top",
    "pack_frame",
    "parse_slo_spec",
    "read_frame_sync",
    "validate_tenant",
    "write_frame_sync",
]
