"""The asyncio front end of the CEC-as-a-service daemon.

:class:`CecServer` listens on a local Unix socket, speaks the
length-prefixed JSON protocol of :mod:`repro.serve.protocol`, and feeds
admitted jobs to a :class:`~repro.serve.pool.WorkerPool` of persistent
warm workers.  The event loop owns all connection state; the only other
thread is the *pump*, which blocks on the pool's result queue in an
executor and resolves per-job futures back on the loop.

Request ops
-----------

``ping``
    Liveness probe; echoes the server pid.
``submit``
    A batch of miter jobs.  Admission control (``busy``/``batch``/
    ``draining`` rejections) happens before any work is queued; the
    response carries one result record per job, in submission order.
``stats``
    The ``/metrics``-style snapshot: admission state, pool and worker
    health, per-tenant cache sizes, and the full
    :class:`~repro.obs.metrics.MetricsRegistry` counter dump.
``shutdown``
    Graceful drain: stop admitting, finish in-flight jobs, stop the
    pool (reaping every shm segment), close the listener.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Dict, List, Optional, Sequence

from repro.obs import Tracer, encode_prometheus, get_tracer, read_rss_bytes, set_tracer
from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.pool import ServeJob, WorkerPool
from repro.serve.protocol import (
    ProtocolError,
    aig_from_wire,
    read_frame,
    write_frame,
)
from repro.serve.telemetry import (
    MetricsHttpServer,
    SloRegistry,
    parse_slo_spec,
)
from repro.serve.tenants import (
    DEFAULT_TENANT,
    TenantError,
    TenantManager,
    validate_tenant,
)

__all__ = ["CecServer"]


class CecServer:
    """A warm-pool CEC daemon on a Unix socket.

    Parameters
    ----------
    socket_path:
        Filesystem path of the Unix socket to listen on.
    workers:
        Size of the persistent worker pool.
    cache_root:
        Root directory for per-tenant knowledge caches (None → caches
        are in-memory only; workers respawn cold).
    shards:
        Proof-store shard count per tenant.
    max_pending / max_batch:
        Admission bounds (see :class:`AdmissionController`).
    job_deadline:
        Default per-job wall-clock deadline in seconds.
    trace:
        Enable tracing in the daemon and its workers; retrieve via the
        ``stats`` op or :meth:`write_trace`.
    metrics_port:
        When not ``None``, serve Prometheus text on
        ``http://127.0.0.1:<port>/metrics`` from a stdlib HTTP thread
        (``0`` binds an ephemeral port — read :attr:`metrics_port`
        after :meth:`start`).  The same text is always available via
        the socket ``metrics`` op.
    slo:
        Latency-objective specs (``["p99=5s", …]``) or a prebuilt
        :class:`~repro.serve.telemetry.SloRegistry`; enables per-tenant
        SLO accounting in ``stats``, the scrape output, and ``cec top``.
    postmortem_dir:
        Directory for flight-recorder postmortem artifacts written when
        a worker is staged-killed (see :class:`WorkerPool`).
    """

    def __init__(
        self,
        socket_path: str,
        workers: int = 2,
        cache_root: Optional[str] = None,
        shards: int = 4,
        max_pending: int = 64,
        max_batch: int = 16,
        tenant_quota: Optional[int] = None,
        job_deadline: Optional[float] = None,
        trace: bool = False,
        use_shm: Optional[bool] = None,
        start_method: Optional[str] = None,
        metrics_port: Optional[int] = None,
        slo: Optional[Sequence[str]] = None,
        postmortem_dir: Optional[str] = None,
    ) -> None:
        self.socket_path = socket_path
        self.trace = trace
        if trace and not get_tracer().enabled:
            set_tracer(Tracer(process_name="cec-serve"))
        self.tenants = TenantManager(cache_root, shards=shards)
        self.admission = AdmissionController(
            max_pending=max_pending,
            max_batch=max_batch,
            tenant_quota=tenant_quota,
        )
        if isinstance(slo, SloRegistry):
            self.slo: Optional[SloRegistry] = slo
        elif slo:
            self.slo = SloRegistry([parse_slo_spec(spec) for spec in slo])
        else:
            self.slo = None
        self.pool = WorkerPool(
            workers=workers,
            tenants=self.tenants,
            job_deadline=job_deadline,
            use_shm=use_shm,
            start_method=start_method,
            trace=trace,
            slo=self.slo,
            postmortem_dir=postmortem_dir,
        )
        self._metrics_port_requested = metrics_port
        self._metrics_http: Optional[MetricsHttpServer] = None
        self._started_at = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._futures: Dict[int, asyncio.Future] = {}
        #: job id → tenant, so completions release the right quota slot.
        self._job_tenants: Dict[int, str] = {}
        self._stopping = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound HTTP scrape port (None when not serving HTTP)."""
        return self._metrics_http.port if self._metrics_http else None

    async def start(self) -> None:
        """Spawn the pool, bind the socket, start the result pump."""
        self._loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        self.pool.start()
        if self._metrics_port_requested is not None:
            self._metrics_http = MetricsHttpServer(
                self.prometheus_text, port=self._metrics_port_requested
            ).start()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead daemon
        parent = os.path.dirname(self.socket_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path
        )
        self._pump_task = asyncio.ensure_future(self._pump())

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self._shutdown_sequence()

    def stop(self) -> None:
        """Request shutdown from outside a connection (signal handler)."""
        self.admission.begin_drain()
        self._stopping.set()

    async def _shutdown_sequence(self) -> None:
        self.admission.begin_drain()
        if self._metrics_http is not None:
            self._metrics_http.stop()
            self._metrics_http = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Let in-flight jobs resolve through the pump before the pool
        # goes down.
        while not self.admission.idle:
            await asyncio.sleep(0.05)
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.shutdown)
        self.admission.stop()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    def write_trace(self, path: str) -> None:
        """Dump the merged daemon+worker trace (after shutdown)."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.write(path)

    # ------------------------------------------------------------------
    # Result pump
    # ------------------------------------------------------------------

    async def _pump(self) -> None:
        """Move pool results onto their asyncio futures, forever.

        ``WorkerPool.poll`` blocks up to its timeout in an executor
        thread — the event loop stays free to accept connections while
        the pump waits on the result queue.
        """
        loop = asyncio.get_running_loop()
        while True:
            results = await loop.run_in_executor(None, self.pool.poll, 0.2)
            for result in results:
                self.admission.release(
                    tenant=self._job_tenants.pop(result.job_id, None)
                )
                future = self._futures.pop(result.job_id, None)
                if future is not None and not future.done():
                    future.set_result(result)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as error:
                    await write_frame(
                        writer,
                        {"ok": False, "error": "protocol", "detail": str(error)},
                    )
                    break
                if request is None:
                    break
                try:
                    response = await self._dispatch(request)
                except Exception as error:  # a bug must not kill the daemon
                    response = {
                        "ok": False,
                        "error": "internal",
                        "detail": repr(error),
                    }
                await write_frame(writer, response)
                if request.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Dict) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping", "pid": os.getpid()}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.stats()}
        if op == "metrics":
            return {
                "ok": True,
                "op": "metrics",
                "text": self.prometheus_text(),
            }
        if op == "submit":
            return await self._handle_submit(request)
        if op == "shutdown":
            self.admission.begin_drain()
            self._stopping.set()
            return {"ok": True, "op": "shutdown", "state": "draining"}
        return {"ok": False, "error": "op", "detail": f"unknown op {op!r}"}

    async def _handle_submit(self, request: Dict) -> Dict:
        jobs_wire = request.get("jobs")
        if not isinstance(jobs_wire, list):
            return {
                "ok": False,
                "error": "batch",
                "detail": "submit needs a 'jobs' list",
            }
        tenant = request.get("tenant", DEFAULT_TENANT)
        try:
            jobs = [self._decode_job(entry, tenant) for entry in jobs_wire]
        except (ProtocolError, TenantError, TypeError, ValueError) as error:
            return {"ok": False, "error": "job", "detail": str(error)}
        tenant_counts: Dict[str, int] = {}
        for job in jobs:
            tenant_counts[job.tenant] = tenant_counts.get(job.tenant, 0) + 1
        try:
            self.admission.try_admit(len(jobs), tenants=tenant_counts)
        except AdmissionError as error:
            return {"ok": False, "error": error.code, "detail": str(error)}
        futures: List[asyncio.Future] = []
        try:
            for job in jobs:
                job_id = self.pool.submit(job)
                self._job_tenants[job_id] = job.tenant
                future = self._loop.create_future()
                self._futures[job_id] = future
                existing = self.pool.take_result(job_id)
                if existing is not None and not future.done():
                    # The pump raced us and already banked the result.
                    self._futures.pop(job_id, None)
                    future.set_result(existing)
                futures.append(future)
        except Exception as error:
            # Give back the admissions that will never produce results —
            # a leaked slot would wedge the shutdown drain.
            for job in jobs[len(futures):]:
                self.admission.release(tenant=job.tenant)
            return {"ok": False, "error": "job", "detail": repr(error)}
        results = await asyncio.gather(*futures)
        return {
            "ok": True,
            "op": "submit",
            "results": [result.as_dict() for result in results],
        }

    def _decode_job(self, entry: Dict, default_tenant: str) -> ServeJob:
        if not isinstance(entry, dict):
            raise ProtocolError("each job must be an object")
        tenant = str(entry.get("tenant", default_tenant))
        validate_tenant(tenant)  # reject before any work is queued
        miter = aig_from_wire(entry.get("miter"))
        engine = entry.get("engine", "combined")
        if not isinstance(engine, str):
            raise ProtocolError("job 'engine' must be a string")
        kwargs = entry.get("engine_kwargs", {})
        if not isinstance(kwargs, dict):
            raise ProtocolError("job 'engine_kwargs' must be an object")
        deadline = entry.get("deadline")
        if deadline is not None:
            deadline = float(deadline)
        return ServeJob(
            miter=miter,
            tenant=tenant,
            engine=engine,
            engine_kwargs=kwargs,
            deadline=deadline,
            name=str(entry.get("name", "")),
        )

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """The ``/metrics``-style snapshot served on the ``stats`` op."""
        payload: Dict[str, object] = {
            "pid": os.getpid(),
            "uptime_seconds": round(
                time.monotonic() - self._started_at, 3
            ),
            "rss_bytes": read_rss_bytes(),
            "admission": self.admission.as_dict(),
            "pool": self.pool.stats(),
            "tenants": self.tenants.stats(),
            "metrics": self.pool.metrics.as_dict(),
        }
        if self.slo is not None:
            payload["slo"] = self.slo.snapshot()
        if self.metrics_port is not None:
            payload["metrics_port"] = self.metrics_port
        return payload

    def prometheus_text(self) -> str:
        """Render the live registries as Prometheus text exposition.

        Served identically on the socket ``metrics`` op and the HTTP
        scrape thread: the pool's counter/histogram registry plus
        computed gauges (uptime, parent RSS, pool health, per-tenant
        admission totals, SLO state).
        """
        gauges = [
            (
                "serve.uptime_seconds",
                {},
                time.monotonic() - self._started_at,
            ),
            ("serve.workers", {}, float(self.pool.num_workers)),
            ("serve.inflight", {}, float(len(self.pool._inflight))),
            (
                "serve.admission_pending",
                {},
                float(self.admission.pending),
            ),
            ("serve.admitted", {}, float(self.admission.admitted)),
            ("serve.rejected", {}, float(self.admission.rejected)),
        ]
        rss = read_rss_bytes()
        if rss is not None:
            gauges.append(("serve.parent_rss_bytes", {}, rss))
        for tenant, totals in sorted(
            self.admission.tenant_totals.items()
        ):
            labels = {"tenant": tenant}
            gauges.append(
                (
                    "serve.tenant_admitted",
                    dict(labels),
                    float(totals.get("admitted", 0)),
                )
            )
            gauges.append(
                (
                    "serve.tenant_rejected",
                    dict(labels),
                    float(totals.get("rejected", 0)),
                )
            )
        if self.slo is not None:
            gauges.extend(self.slo.gauges())
        # The pool's registry mutates concurrently (pump thread, resource
        # sampler); retry the snapshot rather than lock the hot path.
        for attempt in range(5):
            try:
                return encode_prometheus(self.pool.metrics, gauges=gauges)
            except RuntimeError:
                if attempt == 4:
                    raise
        raise AssertionError("unreachable")
