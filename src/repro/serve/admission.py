"""Admission control: bounded queues, backpressure, draining shutdown.

The daemon must degrade predictably under overload: rather than letting
an unbounded queue eat memory and stretch every caller's latency, the
:class:`AdmissionController` caps the number of jobs in flight and
rejects the excess *at the front door* with a structured ``busy``
response the client can retry on.  A per-tenant quota additionally stops
one noisy tenant from monopolising the shared budget: its submissions
are rejected with a ``quota`` code while other tenants keep flowing.
Shutdown is a two-step drain: ``begin_drain`` stops admissions while
in-flight jobs finish, ``stop`` ends the lifecycle once the daemon is
down.

The controller is deliberately synchronous-and-dumb (counters and a
state enum behind the caller's single asyncio thread); the interesting
policy — what to reject and what to queue — stays in one place.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["AdmissionController", "AdmissionError"]

ACCEPTING = "accepting"
DRAINING = "draining"
STOPPED = "stopped"


class AdmissionError(RuntimeError):
    """A rejected admission; ``code`` is the wire-level error tag."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


class AdmissionController:
    """Bounded in-flight job accounting with lifecycle states.

    Parameters
    ----------
    max_pending:
        Upper bound on jobs admitted but not yet completed, across all
        connections.  Admissions beyond it fail with ``busy``.
    max_batch:
        Upper bound on one submission's job count — a single giant batch
        must not monopolise the whole admission budget.
    tenant_quota:
        Optional upper bound on one tenant's in-flight jobs.  ``None``
        (the default) disables per-tenant accounting entirely.
        Admissions that would push any tenant past the quota fail with a
        ``quota`` code — and reject the whole batch, so a submission is
        never half-admitted.
    """

    def __init__(
        self,
        max_pending: int = 64,
        max_batch: int = 16,
        tenant_quota: Optional[int] = None,
    ) -> None:
        if max_pending < 1 or max_batch < 1:
            raise ValueError("max_pending and max_batch must be positive")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be positive (or None)")
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.tenant_quota = tenant_quota
        self.state = ACCEPTING
        self.pending = 0
        #: In-flight jobs per tenant (tracked only with a quota set).
        self.tenant_pending: Dict[str, int] = {}
        #: Totals for the stats endpoint.
        self.admitted = 0
        self.rejected = 0
        #: Lifetime per-tenant admitted/rejected totals (tracked for
        #: every batch that names its tenants) — the labelled series
        #: behind ``repro_serve_tenant_admitted``/``…_rejected``.
        self.tenant_totals: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------

    def try_admit(
        self, count: int, tenants: Optional[Dict[str, int]] = None
    ) -> None:
        """Admit ``count`` jobs or raise :class:`AdmissionError`.

        ``tenants`` maps tenant name → how many of the batch's jobs
        belong to it (required for quota enforcement; ignored when no
        quota is configured).  All checks run before any state is
        committed, so a rejected batch leaves the accounting untouched.

        Raises ``draining``/``stopped`` during shutdown, ``batch`` for
        oversized submissions, ``busy`` when the in-flight budget is
        exhausted (the backpressure signal — clients should retry with
        backoff), and ``quota`` when one tenant would exceed its
        per-tenant allowance (other tenants are unaffected).
        """
        if self.state != ACCEPTING:
            self._reject(count, tenants)
            raise AdmissionError(
                self.state, f"server is {self.state}, not accepting jobs"
            )
        if count < 1:
            raise AdmissionError("batch", "batch must contain at least one job")
        if count > self.max_batch:
            self._reject(count, tenants)
            raise AdmissionError(
                "batch",
                f"batch of {count} exceeds max_batch ({self.max_batch})",
            )
        if self.pending + count > self.max_pending:
            self._reject(count, tenants)
            raise AdmissionError(
                "busy",
                f"{self.pending} jobs in flight, admitting {count} would "
                f"exceed max_pending ({self.max_pending}); retry later",
            )
        if self.tenant_quota is not None and tenants:
            for tenant, tenant_count in tenants.items():
                in_flight = self.tenant_pending.get(tenant, 0)
                if in_flight + tenant_count > self.tenant_quota:
                    self._reject(count, tenants)
                    raise AdmissionError(
                        "quota",
                        f"tenant {tenant!r} has {in_flight} jobs in "
                        f"flight; admitting {tenant_count} more would "
                        f"exceed its quota ({self.tenant_quota})",
                    )
        self.pending += count
        self.admitted += count
        for tenant, tenant_count in (tenants or {}).items():
            self._tenant_total(tenant)["admitted"] += tenant_count
            if self.tenant_quota is not None:
                self.tenant_pending[tenant] = (
                    self.tenant_pending.get(tenant, 0) + tenant_count
                )

    def _tenant_total(self, tenant: str) -> Dict[str, int]:
        totals = self.tenant_totals.get(tenant)
        if totals is None:
            totals = {"admitted": 0, "rejected": 0}
            self.tenant_totals[tenant] = totals
        return totals

    def _reject(
        self, count: int, tenants: Optional[Dict[str, int]]
    ) -> None:
        self.rejected += count
        for tenant, tenant_count in (tenants or {}).items():
            self._tenant_total(tenant)["rejected"] += tenant_count

    def release(self, count: int = 1, tenant: Optional[str] = None) -> None:
        """Return completed (or failed) jobs to the admission budget."""
        self.pending = max(0, self.pending - count)
        if tenant is not None and tenant in self.tenant_pending:
            remaining = self.tenant_pending[tenant] - count
            if remaining > 0:
                self.tenant_pending[tenant] = remaining
            else:
                del self.tenant_pending[tenant]

    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new admissions; in-flight jobs keep running."""
        if self.state == ACCEPTING:
            self.state = DRAINING

    def stop(self) -> None:
        self.state = STOPPED

    @property
    def idle(self) -> bool:
        """True when nothing is in flight (drain can complete)."""
        return self.pending == 0

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "state": self.state,
            "pending": self.pending,
            "max_pending": self.max_pending,
            "max_batch": self.max_batch,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }
        if self.tenant_quota is not None:
            payload["tenant_quota"] = self.tenant_quota
            payload["tenant_pending"] = dict(self.tenant_pending)
        if self.tenant_totals:
            payload["per_tenant"] = {
                tenant: dict(totals)
                for tenant, totals in self.tenant_totals.items()
            }
        return payload
