"""Admission control: bounded queues, backpressure, draining shutdown.

The daemon must degrade predictably under overload: rather than letting
an unbounded queue eat memory and stretch every caller's latency, the
:class:`AdmissionController` caps the number of jobs in flight and
rejects the excess *at the front door* with a structured ``busy``
response the client can retry on.  Shutdown is a two-step drain:
``begin_drain`` stops admissions while in-flight jobs finish, ``stop``
ends the lifecycle once the daemon is down.

The controller is deliberately synchronous-and-dumb (a counter and a
state enum behind the caller's single asyncio thread); the interesting
policy — what to reject and what to queue — stays in one place.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["AdmissionController", "AdmissionError"]

ACCEPTING = "accepting"
DRAINING = "draining"
STOPPED = "stopped"


class AdmissionError(RuntimeError):
    """A rejected admission; ``code`` is the wire-level error tag."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


class AdmissionController:
    """Bounded in-flight job accounting with lifecycle states.

    Parameters
    ----------
    max_pending:
        Upper bound on jobs admitted but not yet completed, across all
        connections.  Admissions beyond it fail with ``busy``.
    max_batch:
        Upper bound on one submission's job count — a single giant batch
        must not monopolise the whole admission budget.
    """

    def __init__(self, max_pending: int = 64, max_batch: int = 16) -> None:
        if max_pending < 1 or max_batch < 1:
            raise ValueError("max_pending and max_batch must be positive")
        self.max_pending = max_pending
        self.max_batch = max_batch
        self.state = ACCEPTING
        self.pending = 0
        #: Totals for the stats endpoint.
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------

    def try_admit(self, count: int) -> None:
        """Admit ``count`` jobs or raise :class:`AdmissionError`.

        Raises ``draining``/``stopped`` during shutdown, ``batch`` for
        oversized submissions, and ``busy`` when the in-flight budget is
        exhausted (the backpressure signal — clients should retry with
        backoff).
        """
        if self.state != ACCEPTING:
            self.rejected += count
            raise AdmissionError(
                self.state, f"server is {self.state}, not accepting jobs"
            )
        if count < 1:
            raise AdmissionError("batch", "batch must contain at least one job")
        if count > self.max_batch:
            self.rejected += count
            raise AdmissionError(
                "batch",
                f"batch of {count} exceeds max_batch ({self.max_batch})",
            )
        if self.pending + count > self.max_pending:
            self.rejected += count
            raise AdmissionError(
                "busy",
                f"{self.pending} jobs in flight, admitting {count} would "
                f"exceed max_pending ({self.max_pending}); retry later",
            )
        self.pending += count
        self.admitted += count

    def release(self, count: int = 1) -> None:
        """Return completed (or failed) jobs to the admission budget."""
        self.pending = max(0, self.pending - count)

    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new admissions; in-flight jobs keep running."""
        if self.state == ACCEPTING:
            self.state = DRAINING

    def stop(self) -> None:
        self.state = STOPPED

    @property
    def idle(self) -> bool:
        """True when nothing is in flight (drain can complete)."""
        return self.pending == 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "pending": self.pending,
            "max_pending": self.max_pending,
            "max_batch": self.max_batch,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }
