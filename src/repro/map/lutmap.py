"""Depth-oriented k-LUT mapping with priority cuts.

The classic FlowMap-style two-phase algorithm on enumerated cuts:

1. **Forward pass** — for every AND node, enumerate k-feasible cuts
   (bounded merge of fanin cuts, as in [26]/[27]) and pick the *best*
   cut minimising mapped depth, breaking ties by estimated area (leaf
   count, then cone size).
2. **Cover extraction** — walk back from the POs; every visited node
   instantiates one LUT over its best cut, and the cut leaves are
   visited in turn.

The result is a :class:`LutNetwork` whose LUT functions are truth-table
integers over the cut leaves (computed exactly, in the convention of
:mod:`repro.synth.isop`).  ``lut_network_to_aig`` re-synthesises each LUT
back into AND gates via ISOP + factoring, which lets the package's own
CEC engines verify the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.builder import AigBuilder
from repro.aig.literals import CONST0, lit, lit_var
from repro.aig.network import Aig
from repro.synth.rewrite import _local_tt, factored_expression
from repro.synth.factor import expr_to_aig

Cut = Tuple[int, ...]


@dataclass
class Lut:
    """One LUT: output node id, input node ids, truth table."""

    output: int
    inputs: Tuple[int, ...]
    table: int


@dataclass
class LutNetwork:
    """A mapped network.

    ``luts`` are in topological order (inputs of a LUT are PIs or
    outputs of earlier LUTs).  ``pos`` are (node id, phase) pairs into
    the original AIG's node space.
    """

    num_pis: int
    luts: List[Lut] = field(default_factory=list)
    pos: List[Tuple[int, int]] = field(default_factory=list)
    name: str = "lutnet"

    @property
    def num_luts(self) -> int:
        """LUT count (the area metric)."""
        return len(self.luts)

    def depth(self) -> int:
        """Mapped depth in LUT levels."""
        level: Dict[int, int] = {}
        best = 0
        for lut in self.luts:
            lvl = 1 + max((level.get(i, 0) for i in lut.inputs), default=0)
            level[lut.output] = lvl
            best = max(best, lvl)
        return best

    def evaluate(self, pattern: Sequence[int]) -> List[int]:
        """Reference evaluation under one input assignment."""
        if len(pattern) != self.num_pis:
            raise ValueError(
                f"expected {self.num_pis} inputs, got {len(pattern)}"
            )
        values: Dict[int, int] = {0: 0}
        for i, bit in enumerate(pattern):
            values[i + 1] = 1 if bit else 0
        for lut in self.luts:
            index = 0
            for pos, node in enumerate(lut.inputs):
                index |= values[node] << pos
            values[lut.output] = (lut.table >> index) & 1
        return [values[node] ^ phase for node, phase in self.pos]


class LutMapper:
    """Configurable mapper (see :func:`map_luts` for the one-call API).

    ``mode="depth"`` minimises mapped depth (FlowMap-style);
    ``mode="area"`` minimises *area flow* — each cut's cost is
    ``(1 + Σ flow(leaf)) / fanout(root)``, the standard shared-cost
    estimate of priority-cut area mapping [27] — breaking ties by depth.
    """

    def __init__(
        self, k: int = 6, cuts_per_node: int = 8, mode: str = "depth"
    ) -> None:
        if k < 2:
            raise ValueError("LUT size must be at least 2")
        if cuts_per_node < 1:
            raise ValueError("need at least one cut per node")
        if mode not in ("depth", "area"):
            raise ValueError(f"unknown mapping mode {mode!r}")
        self.k = k
        self.cuts_per_node = cuts_per_node
        self.mode = mode

    def map(self, aig: Aig) -> LutNetwork:
        """Map a network; returns the LUT cover."""
        best_cut, depth = self._forward_pass(aig)
        return self._extract_cover(aig, best_cut)

    # ------------------------------------------------------------------

    def _forward_pass(self, aig: Aig):
        k = self.k
        cuts: List[List[Cut]] = [[] for _ in range(aig.num_nodes)]
        depth: List[int] = [0] * aig.num_nodes
        flow: List[float] = [0.0] * aig.num_nodes
        best_cut: List[Optional[Cut]] = [None] * aig.num_nodes
        fanout = aig.fanout_counts()
        for pi in aig.pis():
            cuts[pi] = [(pi,)]
        f0l, f1l = aig.fanin_lists()
        for node in aig.ands():
            v0 = f0l[node] >> 1
            v1 = f1l[node] >> 1
            choices0 = cuts[v0] + [(v0,)]
            choices1 = cuts[v1] + [(v1,)]
            merged = set()
            for u in choices0:
                u_set = set(u)
                for v in choices1:
                    union = u_set | set(v)
                    if len(union) <= k:
                        merged.add(tuple(sorted(union)))

            def cut_depth(cut: Cut) -> int:
                return 1 + max((depth[leaf] for leaf in cut), default=0)

            def cut_flow(cut: Cut) -> float:
                total = 1.0 + sum(flow[leaf] for leaf in cut)
                return total / max(1, int(fanout[node]))

            if self.mode == "depth":
                def cost(cut: Cut):
                    return (cut_depth(cut), len(cut), cut)
            else:
                def cost(cut: Cut):
                    return (cut_flow(cut), cut_depth(cut), len(cut), cut)

            ranked = sorted(merged, key=cost)
            cuts[node] = ranked[: self.cuts_per_node]
            chosen = ranked[0]
            best_cut[node] = chosen
            depth[node] = cut_depth(chosen)
            flow[node] = cut_flow(chosen)
        return best_cut, depth

    def _extract_cover(self, aig: Aig, best_cut) -> LutNetwork:
        network = LutNetwork(num_pis=aig.num_pis, name=f"{aig.name}_lut")
        emitted = set()
        order: List[int] = []

        def visit(node: int) -> None:
            stack = [node]
            while stack:
                current = stack[-1]
                if current in emitted or current <= aig.num_pis:
                    stack.pop()
                    continue
                cut = best_cut[current]
                assert cut is not None
                pending = [
                    leaf
                    for leaf in cut
                    if leaf not in emitted and leaf > aig.num_pis
                ]
                if pending:
                    stack.extend(pending)
                    continue
                order.append(current)
                emitted.add(current)
                stack.pop()

        for po in aig.pos:
            var = lit_var(po)
            if var != 0:
                visit(var)
        for node in order:
            cut = best_cut[node]
            table = _local_tt(aig, node, cut)
            network.luts.append(Lut(output=node, inputs=cut, table=table))
        for po in aig.pos:
            network.pos.append((lit_var(po), po & 1))
        return network


def map_luts(
    aig: Aig, k: int = 6, cuts_per_node: int = 8, mode: str = "depth"
) -> LutNetwork:
    """Map ``aig`` onto k-input LUTs (``mode`` = "depth" or "area")."""
    return LutMapper(k=k, cuts_per_node=cuts_per_node, mode=mode).map(aig)


def lut_network_to_aig(network: LutNetwork, name: Optional[str] = None) -> Aig:
    """Re-synthesise a LUT cover into an AIG (ISOP + factoring per LUT).

    The result is functionally equivalent to the mapped network — and
    therefore to the original AIG — which the CEC engines can verify.
    """
    builder = AigBuilder(network.num_pis, name=name or network.name)
    literal_of: Dict[int, int] = {0: CONST0}
    for pi in range(1, network.num_pis + 1):
        literal_of[pi] = lit(pi)
    for lut in network.luts:
        expr = factored_expression(lut.table, len(lut.inputs))
        leaves = [literal_of[node] for node in lut.inputs]
        literal_of[lut.output] = expr_to_aig(expr, builder, leaves)
    for node, phase in network.pos:
        builder.add_po(literal_of[node] ^ phase)
    return builder.build()
