"""K-LUT technology mapping.

The paper's cut generator descends from LUT-mapping technology
([26] cut enumeration, [27] priority cuts, [28] FineMap); this
subpackage closes the loop by implementing a depth-oriented k-LUT mapper
on the same cut machinery.  Mapping also supplies a further realistic
CEC workload: a mapped network re-expressed as an AIG must verify
against the original (see ``examples``/tests).
"""

from repro.map.lutmap import LutMapper, LutNetwork, lut_network_to_aig, map_luts

__all__ = ["LutMapper", "LutNetwork", "lut_network_to_aig", "map_luts"]
