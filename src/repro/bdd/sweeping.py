"""BDD sweeping (Kuehlmann–Krohm style, [6] in the paper).

The original sweeping framework used size-limited BDDs as the prover:
equivalence classes come from random simulation, and a candidate pair is
proved by building both nodes' global BDDs under a node budget —
identical BDD ids prove the pair (canonicity), a non-zero XOR disproves
it with a counter-example, and budget exhaustion leaves it unresolved.

Included as the historical third prover next to SAT sweeping and the
paper's exhaustive-simulation sweeping; the three share the same outer
loop, which makes the provers directly comparable (see
``examples/engine_comparison.py`` and the ablation benchmarks).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.aig.literals import CONST0
from repro.aig.miter import build_miter, miter_is_trivially_unsat
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from repro.bdd.manager import ZERO, BddLimitExceeded, BddManager
from repro.sat.sweeping import _po_disproof
from repro.sweep.classes import SimulationState
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.reduction import reduce_miter
from repro.sweep.report import EngineReport, PhaseRecord, PhaseTimer


class BddSweepChecker:
    """Sweeping with a size-limited BDD prover.

    Parameters
    ----------
    node_limit:
        Total BDD nodes allowed per sweeping round; once exceeded, the
        remaining pairs of the round stay unresolved (classic
        Kuehlmann-style budget).
    num_random_words, seed:
        Class initialisation, as in the other sweepers.
    time_limit:
        Optional wall-clock budget in seconds.
    max_rounds:
        Sweep/refine iterations.
    """

    def __init__(
        self,
        node_limit: int = 200_000,
        num_random_words: int = 32,
        seed: int = 2025,
        time_limit: Optional[float] = None,
        max_rounds: int = 8,
    ) -> None:
        self.node_limit = node_limit
        self.num_random_words = num_random_words
        self.seed = seed
        self.time_limit = time_limit
        self.max_rounds = max_rounds

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Run BDD sweeping on a miter."""
        start = time.perf_counter()
        report = EngineReport(initial_ands=miter.num_ands)
        record = PhaseRecord("BDDSWEEP")
        miter = cleanup(miter)
        deadline = (
            start + self.time_limit if self.time_limit is not None else None
        )
        with PhaseTimer(record):
            result = self._sweep(miter, record, deadline)
        record.miter_ands_after = (
            result.reduced_miter.num_ands if result.reduced_miter else 0
        )
        report.final_ands = record.miter_ands_after
        report.phases.append(record)
        report.total_seconds = time.perf_counter() - start
        result.report = report
        return result

    # ------------------------------------------------------------------

    def _sweep(
        self,
        miter: Aig,
        record: PhaseRecord,
        deadline: Optional[float],
    ) -> CecResult:
        if miter_is_trivially_unsat(miter):
            return CecResult(CecStatus.EQUIVALENT)
        if any(po == 1 for po in miter.pos):
            return CecResult(
                CecStatus.NONEQUIVALENT, cex=[0] * miter.num_pis
            )
        state = SimulationState(
            miter.num_pis, self.num_random_words, self.seed
        )
        for _ in range(self.max_rounds):
            if _expired(deadline):
                return CecResult(CecStatus.UNDECIDED, reduced_miter=miter)
            tables = state.tables(miter)
            disproof = _po_disproof(miter, state, tables)
            if disproof is not None:
                return disproof
            classes = state.classes(miter, tables)
            pairs = list(classes.all_pairs())
            if not pairs:
                break
            record.candidates += len(pairs)
            outcome = self._prove_round(miter, pairs, record, deadline)
            if isinstance(outcome, CecResult):
                return outcome
            merges, cex_patterns, budget_hit = outcome
            if cex_patterns:
                state.add_cex_patterns(cex_patterns)
            if merges:
                miter, _ = reduce_miter(miter, merges)
            if miter_is_trivially_unsat(miter):
                return CecResult(CecStatus.EQUIVALENT)
            if not merges and not cex_patterns:
                break
            if budget_hit and not merges:
                break
        return self._prove_outputs(miter, record)

    def _prove_round(
        self,
        miter: Aig,
        pairs,
        record: PhaseRecord,
        deadline: Optional[float],
    ):
        manager = BddManager(node_limit=self.node_limit)
        node_bdds: Dict[int, int] = {0: ZERO}
        merges: Dict[int, Tuple[int, int]] = {}
        cex_patterns: List[List[int]] = []
        budget_hit = False
        for repr_node, node, phase in pairs:
            if _expired(deadline):
                budget_hit = True
                break
            try:
                bdd_r = self._node_bdd(miter, manager, node_bdds, repr_node)
                bdd_n = self._node_bdd(miter, manager, node_bdds, node)
                if phase:
                    bdd_n = manager.apply_not(bdd_n)
                if bdd_r == bdd_n:
                    merges[node] = (repr_node, phase)
                    record.proved += 1
                else:
                    diff = manager.apply_xor(bdd_r, bdd_n)
                    assignment = manager.any_sat(diff)
                    assert assignment is not None
                    cex_patterns.append(
                        [assignment.get(i, 0) for i in range(miter.num_pis)]
                    )
                    record.cex += 1
            except BddLimitExceeded:
                budget_hit = True
                break
        return merges, cex_patterns, budget_hit

    def _node_bdd(
        self,
        miter: Aig,
        manager: BddManager,
        node_bdds: Dict[int, int],
        node: int,
    ) -> int:
        return node_bdd(miter, manager, node_bdds, node)

    def _prove_outputs(self, miter: Aig, record: PhaseRecord) -> CecResult:
        manager = BddManager(node_limit=self.node_limit)
        node_bdds: Dict[int, int] = {0: ZERO}
        new_pos = list(miter.pos)
        any_unknown = False
        for i, po in enumerate(miter.pos):
            if po == CONST0:
                continue
            try:
                bdd = self._node_bdd(miter, manager, node_bdds, po >> 1)
            except BddLimitExceeded:
                any_unknown = True
                continue
            if po & 1:
                bdd = manager.apply_not(bdd)
            if bdd != ZERO:
                assignment = manager.any_sat(bdd)
                assert assignment is not None
                return CecResult(
                    CecStatus.NONEQUIVALENT,
                    cex=[assignment.get(j, 0) for j in range(miter.num_pis)],
                )
            new_pos[i] = CONST0
            record.proved += 1
        reduced = cleanup(
            Aig(
                miter.num_pis,
                miter.fanin_literals()[0],
                miter.fanin_literals()[1],
                new_pos,
                name=miter.name,
            )
        )
        if not any_unknown and miter_is_trivially_unsat(reduced):
            return CecResult(CecStatus.EQUIVALENT)
        return CecResult(CecStatus.UNDECIDED, reduced_miter=reduced)


def node_bdd(
    miter: Aig,
    manager: BddManager,
    node_bdds: Dict[int, int],
    node: int,
) -> int:
    """Build (and memoise) a node's global BDD, iteratively.

    Shared between the sweeping checker and the scheduler's BDD lane:
    ``node_bdds`` memoises per manager (seed it with ``{0: ZERO}``), and
    :class:`~repro.bdd.manager.BddLimitExceeded` escapes to the caller
    when the manager's node budget blows.
    """
    stack = [node]
    f0l, f1l = miter.fanin_lists()
    num_pis = miter.num_pis
    while stack:
        current = stack[-1]
        if current in node_bdds:
            stack.pop()
            continue
        if 1 <= current <= num_pis:
            node_bdds[current] = manager.var(current - 1)
            stack.pop()
            continue
        v0 = f0l[current] >> 1
        v1 = f1l[current] >> 1
        pending = [v for v in (v0, v1) if v not in node_bdds]
        if pending:
            stack.extend(pending)
            continue
        b0 = node_bdds[v0]
        if f0l[current] & 1:
            b0 = manager.apply_not(b0)
        b1 = node_bdds[v1]
        if f1l[current] & 1:
            b1 = manager.apply_not(b1)
        node_bdds[current] = manager.apply_and(b0, b1)
        stack.pop()
    return node_bdds[node]


def _expired(deadline: Optional[float]) -> bool:
    return deadline is not None and time.perf_counter() > deadline
