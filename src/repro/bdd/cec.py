"""BDD-based combinational equivalence checking.

Builds the BDDs of all miter POs bottom-up (one ITE per AND node, in
topological order) and checks each against the ZERO terminal.  Canonical
form makes the final check trivial; the cost is all in construction,
which the node limit bounds: on BDD-hostile structures (multipliers) the
engine gives up quickly with UNDECIDED, which is exactly the behaviour a
portfolio wants from its BDD member.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.aig.literals import CONST0
from repro.aig.miter import build_miter, miter_is_trivially_unsat
from repro.aig.network import Aig
from repro.aig.transform import cleanup
from repro.bdd.manager import ONE, ZERO, BddLimitExceeded, BddManager
from repro.obs import get_tracer
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.report import EngineReport, PhaseRecord, PhaseTimer


class BddChecker:
    """Node-limited BDD equivalence checker.

    Parameters
    ----------
    node_limit:
        BDD node budget; exceeding it yields UNDECIDED (with the original
        miter as the residue — BDDs do not reduce miters).
    time_limit:
        Optional wall-clock budget in seconds.
    """

    def __init__(
        self,
        node_limit: int = 500_000,
        time_limit: Optional[float] = None,
    ) -> None:
        self.node_limit = node_limit
        self.time_limit = time_limit

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Run the BDD engine on a miter."""
        start = time.perf_counter()
        report = EngineReport(initial_ands=miter.num_ands)
        record = PhaseRecord("BDD")
        miter = cleanup(miter)
        tracer = get_tracer()

        def finish(result: CecResult) -> CecResult:
            record.miter_ands_after = (
                result.reduced_miter.num_ands if result.reduced_miter else 0
            )
            report.final_ands = record.miter_ands_after
            report.phases.append(record)
            report.total_seconds = time.perf_counter() - start
            if tracer.enabled:
                report.metrics = tracer.metrics.as_dict()
            result.report = report
            return result

        deadline = (
            start + self.time_limit if self.time_limit is not None else None
        )
        with tracer.span(
            "bdd.check_miter", category="bdd", initial_ands=miter.num_ands
        ), PhaseTimer(record):
            result = self._run(miter, deadline, record)
        return finish(result)

    # ------------------------------------------------------------------

    def _run(
        self,
        miter: Aig,
        deadline: Optional[float],
        record: PhaseRecord,
    ) -> CecResult:
        if miter_is_trivially_unsat(miter):
            return CecResult(CecStatus.EQUIVALENT)
        if any(po == 1 for po in miter.pos):
            return CecResult(
                CecStatus.NONEQUIVALENT, cex=[0] * miter.num_pis
            )
        manager = BddManager(node_limit=self.node_limit)
        node_bdds: List[int] = [ZERO] * miter.num_nodes
        for pi in miter.pis():
            node_bdds[pi] = manager.var(pi - 1)
        f0s, f1s = miter.fanin_literals()
        base = miter.first_and
        try:
            for i in range(miter.num_ands):
                if deadline is not None and i % 256 == 0:
                    if time.perf_counter() > deadline:
                        return CecResult(
                            CecStatus.UNDECIDED, reduced_miter=miter
                        )
                b0 = node_bdds[f0s[i] >> 1]
                if f0s[i] & 1:
                    b0 = manager.apply_not(b0)
                b1 = node_bdds[f1s[i] >> 1]
                if f1s[i] & 1:
                    b1 = manager.apply_not(b1)
                node_bdds[base + i] = manager.apply_and(b0, b1)
        except BddLimitExceeded:
            return CecResult(CecStatus.UNDECIDED, reduced_miter=miter)
        record.candidates = miter.num_pos
        for po in miter.pos:
            if po == CONST0:
                record.proved += 1
                continue
            bdd = node_bdds[po >> 1]
            if po & 1:
                bdd = manager.apply_not(bdd)
            if bdd != ZERO:
                assignment = manager.any_sat(bdd)
                assert assignment is not None
                pattern = [
                    assignment.get(i, 0) for i in range(miter.num_pis)
                ]
                record.cex += 1
                return CecResult(CecStatus.NONEQUIVALENT, cex=pattern)
            record.proved += 1
        return CecResult(CecStatus.EQUIVALENT)
