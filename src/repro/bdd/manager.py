"""ROBDD manager: unique table, computed table, ITE.

Nodes are integers: 0 and 1 are the terminals, larger ids index the node
table.  Reduction invariants (no redundant tests, no duplicate nodes)
are maintained by :meth:`BddManager._mk`, so equality of functions is
pointer equality of node ids — which is exactly what makes BDD-based
equivalence checking a constant-time comparison after construction.

No complement edges: simpler, and the CEC use case is insensitive to the
factor-of-two size difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Terminal node ids.
ZERO = 0
ONE = 1


class BddLimitExceeded(Exception):
    """Raised when the node table outgrows the configured limit."""


class BddManager:
    """A reduced ordered BDD manager over variables ``0 .. num_vars-1``.

    Parameters
    ----------
    node_limit:
        Maximum number of nodes; exceeded → :class:`BddLimitExceeded`.
        The portfolio checker relies on this to abandon BDD construction
        on BDD-hostile circuits (e.g. multipliers) and fall through to
        SAT.
    """

    def __init__(self, node_limit: Optional[int] = None) -> None:
        # nodes[i] = (var, low, high); entries 0/1 are terminal placeholders.
        self._nodes: List[Tuple[int, int, int]] = [
            (-1, ZERO, ZERO),
            (-1, ONE, ONE),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self.node_limit = node_limit

    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total nodes in the table (including both terminals)."""
        return len(self._nodes)

    def var(self, index: int) -> int:
        """The BDD of projection variable ``index``."""
        if index < 0:
            raise ValueError("variable index must be non-negative")
        return self._mk(index, ZERO, ONE)

    def var_of(self, node: int) -> int:
        """The decision variable of a non-terminal node."""
        return self._nodes[node][0]

    def cofactors(self, node: int) -> Tuple[int, int]:
        """The (low, high) children of a non-terminal node."""
        entry = self._nodes[node]
        return entry[1], entry[2]

    # ------------------------------------------------------------------
    # Boolean operations (all via ITE)
    # ------------------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the BDD of ``f·g + f'·h``."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = self._top_var(f, g, h)
        f0, f1 = self._cofactor(f, top)
        g0, g1 = self._cofactor(g, top)
        h0, h1 = self._cofactor(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, ZERO)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    def apply_not(self, f: int) -> int:
        """Negation."""
        return self.ite(f, ZERO, ONE)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, node: int, assignment: Dict[int, int]) -> int:
        """Evaluate under a variable assignment (missing vars read as 0)."""
        while node > ONE:
            var, low, high = self._nodes[node]
            node = high if assignment.get(var, 0) else low
        return node

    def any_sat(self, node: int) -> Optional[Dict[int, int]]:
        """A satisfying assignment, or None for the ZERO function.

        In a reduced BDD every non-ZERO node reaches ONE, so a greedy
        walk suffices.
        """
        if node == ZERO:
            return None
        assignment: Dict[int, int] = {}
        while node > ONE:
            var, low, high = self._nodes[node]
            if low != ZERO:
                assignment[var] = 0
                node = low
            else:
                assignment[var] = 1
                node = high
        return assignment

    def size(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen or current <= ONE:
                continue
            seen.add(current)
            _, low, high = self._nodes[current]
            stack.append(low)
            stack.append(high)
        return len(seen) + 2

    # ------------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            if (
                self.node_limit is not None
                and len(self._nodes) >= self.node_limit
            ):
                raise BddLimitExceeded(
                    f"BDD node limit of {self.node_limit} exceeded"
                )
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _top_var(self, f: int, g: int, h: int) -> int:
        top = None
        for node in (f, g, h):
            if node > ONE:
                var = self._nodes[node][0]
                if top is None or var < top:
                    top = var
        assert top is not None
        return top

    def _cofactor(self, node: int, var: int) -> Tuple[int, int]:
        if node <= ONE:
            return node, node
        node_var, low, high = self._nodes[node]
        if node_var == var:
            return low, high
        return node, node
