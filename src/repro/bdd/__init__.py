"""Reduced ordered binary decision diagrams (BDD substrate).

BDDs were the pre-SAT workhorse of equivalence checking ([5], [6] in the
paper) and commercial checkers still run a BDD engine inside their
portfolios.  This subpackage provides a classic ROBDD package (unique
table, computed table, ITE) and a node-limited BDD-based CEC engine used
by the :mod:`repro.portfolio` Conformal substitute.
"""

from repro.bdd.manager import BddLimitExceeded, BddManager
from repro.bdd.cec import BddChecker
from repro.bdd.sweeping import BddSweepChecker

__all__ = [
    "BddChecker",
    "BddLimitExceeded",
    "BddManager",
    "BddSweepChecker",
]
