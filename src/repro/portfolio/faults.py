"""Fault-injection engines for exercising the orchestration layer.

A fault-tolerant portfolio is only as good as its tests: these checkers
deterministically reproduce the failure modes the orchestrator must
survive — a worker that hangs past its budget and a worker that crashes.
They are registered as the ``"sleep"`` and ``"crash"`` spec kinds in
:func:`repro.portfolio.parallel.build_checker` so they stay importable
under every multiprocessing start method (a test-local registry would
not survive ``spawn``).
"""

from __future__ import annotations

import time

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.sweep.engine import CecResult, CecStatus


class SleepingChecker:
    """Never answers within ``seconds``: models a hung or slow engine.

    Returns UNDECIDED (with the unreduced miter) if the sleep ever
    completes, so an unbudgeted run still terminates.
    """

    def __init__(self, seconds: float = 3600.0) -> None:
        self.seconds = seconds

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Sleep for the configured duration, then give up."""
        time.sleep(self.seconds)
        return CecResult(CecStatus.UNDECIDED, reduced_miter=miter)


class CrashingChecker:
    """Raises on every check: models an engine crash in a worker."""

    def __init__(self, message: str = "injected engine fault") -> None:
        self.message = message

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Raise the configured fault."""
        raise RuntimeError(self.message)
