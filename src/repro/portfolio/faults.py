"""Fault-injection engines for exercising the orchestration layer.

A fault-tolerant portfolio is only as good as its tests: these checkers
deterministically reproduce the failure modes the orchestrator must
survive — a worker that hangs past its budget, a worker that crashes,
and a worker that dies holding shared-memory segments.  They are
registered as the ``"sleep"``, ``"crash"`` and ``"leak"`` spec kinds in
:func:`repro.portfolio.parallel.build_checker` so they stay importable
under every multiprocessing start method (a test-local registry would
not survive ``spawn``).
"""

from __future__ import annotations

import signal
import time

import numpy as np

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.sweep.engine import CecResult, CecStatus


class SleepingChecker:
    """Never answers within ``seconds``: models a hung or slow engine.

    Returns UNDECIDED (with the unreduced miter) if the sleep ever
    completes, so an unbudgeted run still terminates.
    """

    def __init__(self, seconds: float = 3600.0) -> None:
        self.seconds = seconds

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Sleep for the configured duration, then give up."""
        time.sleep(self.seconds)
        return CecResult(CecStatus.UNDECIDED, reduced_miter=miter)


class CrashingChecker:
    """Raises on every check: models an engine crash in a worker."""

    def __init__(self, message: str = "injected engine fault") -> None:
        self.message = message

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Raise the configured fault."""
        raise RuntimeError(self.message)


class LeakingChecker:
    """Publishes segments it never announces, then hangs.

    Models the worst crash the data plane must survive: a worker that
    allocated shared-memory blocks and died before its descriptors ever
    reached the parent.  With ``ignore_sigterm`` the staged termination
    is forced all the way to SIGKILL, so not even an exception path runs
    — reaping those segments is entirely on the parent registry's
    run-prefix sweep.
    """

    def __init__(
        self,
        seconds: float = 3600.0,
        nbytes: int = 1 << 16,
        segments: int = 1,
        ignore_sigterm: bool = False,
    ) -> None:
        self.seconds = seconds
        self.nbytes = nbytes
        self.segments = segments
        self.ignore_sigterm = ignore_sigterm

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Leak segments into the run's data plane, then sleep."""
        if self.ignore_sigterm:
            try:
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
            except (ValueError, OSError):
                pass
        from repro.shm import get_active_registry

        registry = get_active_registry()
        if registry is not None:
            junk = np.arange(max(1, self.nbytes // 8), dtype=np.uint64)
            for _ in range(self.segments):
                registry.publish(arrays={"junk": junk})
        time.sleep(self.seconds)
        return CecResult(CecStatus.UNDECIDED, reduced_miter=miter)
