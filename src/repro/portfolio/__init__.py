"""Multi-engine checkers.

- :class:`~repro.portfolio.checker.PortfolioChecker` — the commercial-tool
  (Conformal LEC) substitute: a staged combination of engines with early
  stop, as described in [33] and §IV-A of the paper;
- :class:`~repro.portfolio.checker.CombinedChecker` — the paper's own
  flow: the simulation-based GPU engine followed by SAT sweeping on the
  residual miter ("Ours (GPU+ABC)" in Table II);
- :class:`~repro.portfolio.parallel.ParallelPortfolioChecker` — the
  fault-tolerant process-per-engine orchestrator (per-engine budgets,
  staged termination, crash surfacing, residue hand-off).

Every portfolio run attaches a
:class:`~repro.sweep.report.PortfolioReport` to ``CecResult.report``;
:class:`~repro.portfolio.parallel.PortfolioError` is raised when every
engine of a run fails.
"""

from repro.portfolio.checker import CombinedChecker, PortfolioChecker
from repro.portfolio.parallel import (
    DEFAULT_ENGINES,
    ParallelPortfolioChecker,
    PortfolioError,
    build_checker,
    resolve_start_method,
)

__all__ = [
    "CombinedChecker",
    "DEFAULT_ENGINES",
    "ParallelPortfolioChecker",
    "PortfolioChecker",
    "PortfolioError",
    "build_checker",
    "resolve_start_method",
]
