"""Multi-engine checkers.

- :class:`~repro.portfolio.checker.PortfolioChecker` — the commercial-tool
  (Conformal LEC) substitute: a staged combination of engines with early
  stop, as described in [33] and §IV-A of the paper;
- :class:`~repro.portfolio.checker.CombinedChecker` — the paper's own
  flow: the simulation-based GPU engine followed by SAT sweeping on the
  residual miter ("Ours (GPU+ABC)" in Table II).
"""

from repro.portfolio.checker import CombinedChecker, PortfolioChecker
from repro.portfolio.parallel import ParallelPortfolioChecker

__all__ = [
    "CombinedChecker",
    "ParallelPortfolioChecker",
    "PortfolioChecker",
]
