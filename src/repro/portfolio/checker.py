"""Combined and portfolio equivalence checkers.

``CombinedChecker`` is the paper's headline configuration: run the
simulation-based engine first, then hand the reduced miter to the SAT
sweeping checker.  ``PortfolioChecker`` stands in for the commercial
multi-engine tool: try a cheap BDD engine (with a node budget) first,
fall back to SAT sweeping — "a combination of engines … early stop when
an engine finishes" (§IV-A).
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.bdd.cec import BddChecker
from repro.cache.knowledge import SweepCache
from repro.obs import get_tracer
from repro.sat.sweeping import SatSweepChecker
from repro.sweep.config import EngineConfig
from repro.sweep.engine import CecResult, CecStatus, SimSweepEngine
from repro.sweep.report import (
    EngineFailure,
    EngineRunRecord,
    PortfolioReport,
)


@dataclass
class CombinedTimings:
    """Timing split of a combined run (the "Ours" columns of Table II)."""

    engine_seconds: float = 0.0
    sat_seconds: float = 0.0
    reduction_percent: float = 0.0
    engine_status: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end runtime."""
        return self.engine_seconds + self.sat_seconds


class CombinedChecker:
    """Simulation engine + SAT residue checker (the paper's flow).

    Parameters
    ----------
    config:
        Engine configuration for the simulation-based front end.
    sat_checker:
        Back end for residual miters; a default SAT sweeper is built if
        omitted.
    transfer_ecs:
        Enable the §V EC-transfer extension: the engine's pattern pool
        (with all its counter-examples) seeds the SAT sweeper's classes
        so disproved pairs are never re-checked.
    sched:
        ``"auto"`` (default) runs the P phase, then hands the residue to
        the adaptive per-pair scheduler (cost-model dispatch over
        sim/cut/BDD/batched-SAT lanes, see ``repro.sched``).  ``"fixed"``
        is the kill switch: the original P→G→L→SAT pipeline, byte for
        byte.
    cost_model:
        Optional externally-owned :class:`~repro.sched.CostModel` for
        the auto path (the serve pool keeps one warm per tenant).
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        sat_checker: Optional[SatSweepChecker] = None,
        transfer_ecs: bool = True,
        cache: Optional[SweepCache] = None,
        initial_pool=None,
        sched: str = "auto",
        cost_model=None,
    ) -> None:
        if sched not in ("auto", "fixed"):
            raise ValueError(f"unknown sched mode {sched!r}")
        # One shared knowledge cache: what the engine proves, records, or
        # disproves is visible to the SAT back end within the same run.
        self.cache = (
            cache if cache is not None
            else SweepCache.from_config(config.cache if config else None)
        )
        self.engine = SimSweepEngine(
            config, cache=self.cache, initial_pool=initial_pool
        )
        self.sat_checker = sat_checker or SatSweepChecker(cache=self.cache)
        if self.sat_checker.cache is None and self.cache is not None:
            self.sat_checker.cache = self.cache
        self.transfer_ecs = transfer_ecs
        self.sched = sched
        self.cost_model = cost_model
        self._sweeper = None
        self.timings = CombinedTimings()

    def _adaptive_sweeper(self):
        """The (lazily built, reused) adaptive residue scheduler."""
        if self._sweeper is None:
            from repro.sched import AdaptiveSweeper

            self._sweeper = AdaptiveSweeper(
                config=self.engine.config,
                conflict_limit=self.sat_checker.conflict_limit,
                time_limit=self.sat_checker.time_limit,
                cache=self.cache,
                cost_model=self.cost_model,
            )
        return self._sweeper

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig, state=None) -> CecResult:
        """Engine first; SAT sweeping on whatever is left.

        ``state`` is an optional carried
        :class:`~repro.sweep.state.SweepState` for ``miter`` — the shape
        the parallel portfolio's finisher hand-off delivers after
        adopting a residue off the shared-memory data plane.  A state
        that owns the miter means the simulation phases already ran on
        it upstream, so the front-end engine is skipped and the SAT
        sweeper adopts the carried signatures directly (zero
        re-simulation).
        """
        self.timings = CombinedTimings()
        from repro.sweep.state import SweepState

        if isinstance(state, SweepState) and state.matches(miter):
            cache_snapshot = (
                self.cache.snapshot() if self.cache is not None else None
            )
            self.timings.engine_status = "adopted"
            start = time.perf_counter()
            with get_tracer().span(
                "combined.sat_residue",
                category="sat",
                residue_ands=miter.num_ands,
            ):
                sat_result = self.sat_checker.check_miter(miter, state=state)
            self.timings.sat_seconds = time.perf_counter() - start
            if self.cache is not None:
                if sat_result.report is not None:
                    sat_result.report.cache = self.cache.counters.diff(
                        cache_snapshot
                    )
            return sat_result
        cache_snapshot = (
            self.cache.snapshot() if self.cache is not None else None
        )
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("combined.engine", category="engine"):
            # Under adaptive scheduling the front end stops after the
            # one-shot P phase: everything P cannot settle outright goes
            # to the per-pair dispatcher instead of the fixed G→L→SAT
            # tail.  "fixed" runs the full original pipeline.
            engine_result = self.engine.check_miter(
                miter, stop_after="P" if self.sched == "auto" else None
            )
        self.timings.engine_seconds = time.perf_counter() - start
        self.timings.reduction_percent = (
            engine_result.report.reduction_percent
        )
        self.timings.engine_status = engine_result.status.value
        if engine_result.status is not CecStatus.UNDECIDED:
            return engine_result
        residue = engine_result.reduced_miter
        assert residue is not None
        state = engine_result.sim_state if self.transfer_ecs else None
        start = time.perf_counter()
        if self.sched == "auto":
            with tracer.span(
                "combined.sched_residue",
                category="sched",
                residue_ands=residue.num_ands,
            ):
                sat_result = self._adaptive_sweeper().check_miter(
                    residue, state=state
                )
            self.timings.sat_seconds = time.perf_counter() - start
            # Keep the engine phases and append the scheduler's record.
            if sat_result.report is not None:
                engine_result.report.phases.extend(sat_result.report.phases)
                engine_result.report.final_ands = (
                    sat_result.report.final_ands
                )
                engine_result.report.metrics = sat_result.report.metrics
                engine_result.report.total_seconds += (
                    sat_result.report.total_seconds
                )
            sat_result.report = engine_result.report
            if self.cache is not None:
                sat_result.report.cache = self.cache.counters.diff(
                    cache_snapshot
                )
            return sat_result
        with tracer.span(
            "combined.sat_residue", category="sat", residue_ands=residue.num_ands
        ):
            sat_result = self.sat_checker.check_miter(residue, state=state)
        self.timings.sat_seconds = time.perf_counter() - start
        if sat_result.report is not None:
            engine_result.report.total_seconds += (
                sat_result.report.total_seconds
            )
        sat_result.report = engine_result.report  # keep the engine phases
        if self.cache is not None:
            # Replace the engine-only delta with the combined one.
            sat_result.report.cache = self.cache.counters.diff(cache_snapshot)
        return sat_result


class PortfolioChecker:
    """Staged multi-engine checker (commercial-tool substitute).

    Engines run in order with individual budgets; the first conclusive
    answer wins.  The default staging is BDD (cheap on control logic and
    majority-style circuits, hopeless on multipliers — the node budget
    makes it give up fast there) followed by SAT sweeping.
    """

    def __init__(
        self,
        bdd_node_limit: int = 300_000,
        bdd_time_limit: Optional[float] = 30.0,
        sat_checker: Optional[SatSweepChecker] = None,
        cache: Optional[SweepCache] = None,
    ) -> None:
        self.bdd_checker = BddChecker(
            node_limit=bdd_node_limit, time_limit=bdd_time_limit
        )
        self.cache = cache
        self.sat_checker = sat_checker or SatSweepChecker(cache=cache)
        #: Per-engine seconds of the last run.
        self.engine_seconds: Dict[str, float] = {}
        #: Full report of the last run (also on ``CecResult.report``).
        self.report: Optional[PortfolioReport] = None

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Run the engine cascade with early stop.

        A stage that crashes is recorded as an
        :class:`~repro.sweep.report.EngineFailure` and the cascade moves
        on; :class:`~repro.portfolio.parallel.PortfolioError` is raised
        only when every stage fails.
        """
        from repro.portfolio.parallel import PortfolioError

        self.engine_seconds = {}
        report = PortfolioReport(start_method="inline")
        self.report = report
        cache_snapshot = (
            self.cache.snapshot() if self.cache is not None else None
        )
        best_undecided: Optional[CecResult] = None
        tracer = get_tracer()
        stages = [("bdd", self.bdd_checker), ("sat", self.sat_checker)]
        for name, checker in stages:
            record = EngineRunRecord(name=name, status="running")
            report.engines.append(record)
            start = time.perf_counter()
            try:
                with tracer.span(
                    f"stage:{name}", category="portfolio", engine=name
                ):
                    result = checker.check_miter(miter)
            except Exception as error:
                record.seconds = time.perf_counter() - start
                record.status = "failed"
                record.failure = EngineFailure(
                    engine=name,
                    message=repr(error),
                    traceback=traceback.format_exc(),
                )
                report.total_seconds += record.seconds
                continue
            record.seconds = time.perf_counter() - start
            report.total_seconds += record.seconds
            self.engine_seconds[name] = record.seconds
            record.status = result.status.value
            record.report = result.report
            if result.status is not CecStatus.UNDECIDED:
                report.winner = name
                if self.cache is not None:
                    report.cache = self.cache.counters.diff(cache_snapshot)
                if tracer.enabled:
                    report.metrics = tracer.metrics.as_dict()
                result.report = report
                return result
            if result.reduced_miter is not None:
                record.residue_ands = result.reduced_miter.num_ands
            if best_undecided is None or (
                result.reduced_miter is not None
                and best_undecided.reduced_miter is not None
                and result.reduced_miter.num_ands
                < best_undecided.reduced_miter.num_ands
            ):
                best_undecided = result
        if best_undecided is None:
            raise PortfolioError(report.failures, report)
        if self.cache is not None:
            report.cache = self.cache.counters.diff(cache_snapshot)
        if tracer.enabled:
            report.metrics = tracer.metrics.as_dict()
        best_undecided.report = report
        return best_undecided
