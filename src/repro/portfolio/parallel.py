"""Fault-tolerant concurrent multi-engine checking.

The paper describes commercial checkers as running "different engines
simultaneously and early stop when an engine finishes" (§IV-A) on up to
16 CPU threads.  :class:`ParallelPortfolioChecker` reproduces that
architecture with one OS process per engine — and hardens it into the
orchestration layer the rest of the system builds on:

- **spawn-safe process management** — the multiprocessing start method
  is resolved per platform (``spawn`` on macOS/Windows, the interpreter
  default elsewhere); ``fork`` is an explicit opt-in via the
  ``start_method`` argument or the ``REPRO_MP_START_METHOD`` environment
  variable.  Workers are non-daemonic so engines may parallelise
  internally.
- **budgets with staged termination** — each engine may carry its own
  wall-clock budget on top of the global deadline; an over-budget worker
  receives SIGTERM, a join grace period, then SIGKILL.
- **crash surfacing** — a worker exception or abnormal exit becomes a
  structured :class:`~repro.sweep.report.EngineFailure` on the run's
  :class:`~repro.sweep.report.PortfolioReport` instead of being dropped;
  the run raises :class:`PortfolioError` only when *every* engine fails.
- **residue hand-off** — on global timeout the smallest residue
  collected so far is re-checked by a configurable finisher engine
  before the run settles for UNDECIDED; when the residue came with a
  carried :class:`~repro.sweep.state.SweepState`, the finisher adopts it
  and starts from the carried signatures instead of re-simulating.
- **zero-copy data plane** — with shared memory available (the default;
  opt out per instance via ``use_shm=False`` or globally via
  ``REPRO_SHM=0``), the big arrays move through :mod:`repro.shm`
  segments: workers receive a descriptor of the published miter instead
  of a pickled copy, and ship residues, sweep state and sideband
  payloads (report/trace/cache deltas) back the same way.  Queue
  messages shrink to descriptor size, and the parent registry reaps
  every segment of the run — including those of SIGKILLed workers — in
  the teardown path.

Engines are named specs so they pickle cleanly:

- ``("sim", {...EngineConfig kwargs...})`` — the simulation engine;
- ``("combined", {...})`` — simulation engine + SAT residue;
- ``("sat", {"conflict_limit": ..., ...})`` — SAT sweeping;
- ``("bdd", {"node_limit": ...})`` — monolithic BDD;
- ``("bddsweep", {"node_limit": ...})`` — BDD sweeping;
- ``("sleep", {"seconds": ...})`` / ``("crash", {...})`` — fault
  injection (see :mod:`repro.portfolio.faults`).

A spec may carry an optional third element, a per-engine wall-clock
budget in seconds: ``("sat", {}, 10.0)``.
"""

from __future__ import annotations

import inspect
import multiprocessing as mp
import os
import pickle
import queue as queue_module
import shutil
import signal
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.cache.config import CacheConfig
from repro.cache.counters import CacheCounters
from repro.cache.knowledge import SweepCache
from repro.obs import Tracer, get_tracer, set_tracer
from repro.shm import (
    SegmentDescriptor,
    SegmentRegistry,
    adopt_aig,
    aig_shm_arrays,
    detach_aig,
    reap_orphans,
    set_active_registry,
    shm_available,
)
from repro.sweep.classes import SharedPool
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.report import (
    EngineFailure,
    EngineReport,
    EngineRunRecord,
    PortfolioReport,
)
from repro.sweep.state import SweepState

EngineSpec = Union[Tuple[str, Dict], Tuple[str, Dict, float]]

#: The default engine line-up: one of each prover family.
DEFAULT_ENGINES: List[EngineSpec] = [
    ("combined", {}),
    ("sat", {}),
    ("bdd", {"node_limit": 500_000}),
]

#: Environment variable overriding the multiprocessing start method
#: (used by CI to run the suite under ``spawn``).
START_METHOD_ENV = "REPRO_MP_START_METHOD"

#: Default finisher: a conflict-limited SAT sweep over the best residue.
DEFAULT_FINISHER: EngineSpec = ("sat", {"conflict_limit": 20_000})

#: Environment variable disabling the shared-memory data plane
#: (``REPRO_SHM=0`` forces the legacy pickled-queue payload path).
SHM_ENV = "REPRO_SHM"


def resolve_use_shm(requested: Optional[bool] = None) -> bool:
    """Decide whether a portfolio run uses the shared-memory data plane.

    Resolution order: explicit ``requested`` argument, then the
    ``REPRO_SHM`` environment variable (``0``/``false``/``off``/``no``
    disables), then on-by-default.  Either way the plane is only used
    when the platform actually offers POSIX shared memory.
    """
    if requested is not None:
        return bool(requested) and shm_available()
    flag = os.environ.get(SHM_ENV, "").strip().lower()
    if flag in ("0", "false", "off", "no"):
        return False
    return shm_available()


class PortfolioError(RuntimeError):
    """Raised when every engine of a portfolio run failed.

    Carries the structured failures and the full
    :class:`~repro.sweep.report.PortfolioReport` of the run.
    """

    def __init__(
        self, failures: Sequence[EngineFailure], report: PortfolioReport
    ) -> None:
        self.failures = list(failures)
        self.report = report
        details = "; ".join(str(f) for f in self.failures)
        super().__init__(
            f"all {len(self.failures)} portfolio engines failed: {details}"
        )


def resolve_start_method(requested: Optional[str] = None) -> str:
    """Pick the multiprocessing start method for a portfolio run.

    Resolution order: explicit ``requested`` argument, then the
    ``REPRO_MP_START_METHOD`` environment variable, then a per-platform
    default — ``spawn`` on platforms where ``fork`` is unsafe or absent
    (macOS, Windows), the interpreter's default elsewhere.  ``fork`` is
    therefore never forced: it remains an opt-in.
    """
    if requested is not None:
        method = requested
    else:
        method = os.environ.get(START_METHOD_ENV) or ""
        if not method:
            if sys.platform in ("win32", "darwin"):
                method = "spawn"
            else:
                method = mp.get_start_method()
    if method not in mp.get_all_start_methods():
        raise ValueError(
            f"start method {method!r} is not available on this platform "
            f"(choices: {mp.get_all_start_methods()})"
        )
    return method


def build_checker(
    spec: EngineSpec,
    cache_dir: Optional[str] = None,
    cache_readonly: bool = False,
    cache: Optional[SweepCache] = None,
    initial_pool: Optional[SharedPool] = None,
    cost_model=None,
):
    """Instantiate a checker from a picklable spec.

    The optional third spec element (the per-engine budget) is consumed
    by the orchestrator, not the checker, and is ignored here.
    ``cache_dir`` attaches a functional-knowledge cache to the engines
    that support one; ``cache_readonly`` loads it as a snapshot whose
    deltas are never written back (portfolio workers — the parent merges
    their deltas on join instead).  ``cache`` injects an already-loaded
    cache object instead (serve workers keep theirs resident across
    jobs); it wins over ``cache_dir``.  ``initial_pool`` hands the
    simulation engines a pre-generated pattern pool (typically mapped
    out of a shared-memory segment) so they skip regenerating it.
    ``cost_model`` hands the combined checker an externally-owned lane
    cost model (serve workers keep one resident per tenant, so the
    adaptive scheduler stays calibrated across jobs).
    """
    kind, kwargs = spec[0], spec[1]

    def knowledge_cache() -> Optional[SweepCache]:
        if cache is not None:
            return cache
        if cache_dir is None:
            return None
        return SweepCache(
            CacheConfig(directory=cache_dir, readonly=cache_readonly)
        )

    if kind == "sim":
        from repro.sweep.config import EngineConfig
        from repro.sweep.engine import SimSweepEngine

        return SimSweepEngine(
            EngineConfig(**kwargs),
            cache=knowledge_cache(),
            initial_pool=initial_pool,
        )
    if kind == "combined":
        from repro.portfolio.checker import CombinedChecker
        from repro.sweep.config import EngineConfig

        kwargs = dict(kwargs)
        sched = kwargs.pop("sched", "auto")
        config = EngineConfig(**kwargs) if kwargs else None
        return CombinedChecker(
            config=config,
            cache=knowledge_cache(),
            initial_pool=initial_pool,
            sched=sched,
            cost_model=cost_model,
        )
    if kind == "sat":
        from repro.sat.sweeping import SatSweepChecker

        return SatSweepChecker(**kwargs, cache=knowledge_cache())
    if kind == "bdd":
        from repro.bdd.cec import BddChecker

        return BddChecker(**kwargs)
    if kind == "bddsweep":
        from repro.bdd.sweeping import BddSweepChecker

        return BddSweepChecker(**kwargs)
    if kind == "sleep":
        from repro.portfolio.faults import SleepingChecker

        return SleepingChecker(**kwargs)
    if kind == "crash":
        from repro.portfolio.faults import CrashingChecker

        return CrashingChecker(**kwargs)
    if kind == "leak":
        from repro.portfolio.faults import LeakingChecker

        return LeakingChecker(**kwargs)
    raise ValueError(f"unknown engine spec {kind!r}")


def stop_process_staged(
    process: "mp.process.BaseProcess", grace: float, engine: str = ""
) -> None:
    """Staged termination: SIGTERM, join grace, then SIGKILL.

    The one stop path for every orchestrator — the portfolio racer and
    the serve daemon's worker reaper both funnel through here, so the
    escalation policy (and its ``portfolio.terminate`` span) stays
    uniform.
    """
    if not process.is_alive():
        return
    with get_tracer().span(
        "portfolio.terminate", category="portfolio", engine=engine
    ) as span:
        process.terminate()
        process.join(grace)
        if process.is_alive():
            span.set("escalated", "SIGKILL")
            process.kill()
            process.join(grace)


def shared_pool_for_specs(
    specs: Sequence[EngineSpec], num_pis: int
) -> Optional[SharedPool]:
    """Generate the run's shared pattern pool, if any engine wants one.

    The pool parameters come from the first simulation-capable spec
    (``sim``/``combined``); workers whose own config differs simply fail
    the :meth:`SharedPool.compatible` check and regenerate locally, so a
    mixed portfolio stays correct.  Returns ``None`` when no spec runs
    the simulation engine or the config cannot be built.
    """
    for spec in specs:
        if spec[0] not in ("sim", "combined"):
            continue
        try:
            from repro.sweep.config import EngineConfig

            config = EngineConfig(**spec[1]) if spec[1] else EngineConfig()
            return SharedPool.generate(
                num_pis,
                config.num_random_words,
                config.seed,
                config.pattern_strategy,
            )
        except Exception:
            return None
    return None


def pool_from_adoption(adoption) -> Optional[SharedPool]:
    """Rebuild the shared pool from an adopted miter segment, if present.

    The pool words stay a read-only view of the segment — safe because
    :meth:`~repro.sweep.classes.SimulationState.add_cex_patterns`
    replaces the matrix wholesale instead of writing it in place.
    """
    words = adoption.arrays.get("pi_words")
    info = adoption.meta.get("pool")
    if words is None or not info:
        return None
    try:
        return SharedPool(
            pi_words=words,
            num_pis=int(adoption.meta["num_pis"]),
            num_random_words=int(info["num_random_words"]),
            seed=int(info["seed"]),
            strategy=str(info["strategy"]),
            num_cex=int(info.get("num_cex", 0)),
        )
    except (KeyError, TypeError, ValueError):
        return None


class _WorkerTerminated(BaseException):
    """Raised by the worker's SIGTERM handler (tracing runs only).

    Derives from :class:`BaseException` so engine-level ``except
    Exception`` blocks cannot swallow the termination request on its way
    to the worker's top-level handler.
    """


def _raise_worker_terminated(signum, frame) -> None:
    raise _WorkerTerminated()


def _pack_residue(message: Dict, result: CecResult, registry) -> None:
    """Attach an UNDECIDED result's residue to the outbound message.

    On the data plane the residue is published as a segment — together
    with the engine's carried :class:`SweepState` when the state still
    owns that residue, so the parent (and the SAT finisher after it) can
    adopt signatures, pattern pool and origin map without re-simulating.
    Without a registry (or if publishing fails) the residue rides the
    queue pickled, as it always has.
    """
    residue = result.reduced_miter
    if residue is None or result.status is not CecStatus.UNDECIDED:
        return
    if registry is not None:
        state = result.sim_state
        try:
            if isinstance(state, SweepState) and state.matches(residue):
                arrays, meta = state.to_shm_arrays()
            else:
                arrays, meta = aig_shm_arrays(residue)
            message["state_ref"] = registry.publish(arrays=arrays, meta=meta)
            return
        except Exception:
            pass  # segment allocation failed: fall back to pickling
    message["residue"] = residue


def _attach_sideband(message: Dict, sideband: Dict, registry) -> None:
    """Ship the bulky message parts (report/trace/cache) out of band.

    On the data plane the sideband is pickled once into a blob segment
    and the message carries only its descriptor; otherwise the entries
    are inlined into the queue message (the legacy layout — the parent
    accepts both).
    """
    if not sideband:
        return
    if registry is not None:
        try:
            blob = pickle.dumps(sideband, protocol=pickle.HIGHEST_PROTOCOL)
            message["sideband_ref"] = registry.publish(blob=blob)
            return
        except Exception:
            pass  # fall back to the inline layout
    message.update(sideband)


def _post_message(
    queue: "mp.Queue", message: Dict, spill_path: Optional[str]
) -> None:
    """Post a worker message; spill it to disk when the queue is gone.

    A cancelled loser can reach this after the parent's queue is already
    torn down (e.g. the parent process itself was killed mid-grace).
    The message — span buffer and cache delta included — is then written
    to the per-worker spill file the parent collects in
    ``_drain_late_messages``, instead of being silently dropped.
    """
    try:
        queue.put(message)
        return
    except BaseException:
        pass
    if spill_path is None:
        return
    try:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        staging = spill_path + ".tmp"
        with open(staging, "wb") as handle:
            handle.write(payload)
        os.replace(staging, spill_path)
    except Exception:
        pass  # no queue and no spill target: the message is lost


def _engine_worker(
    index: int,
    spec: EngineSpec,
    miter: Union[Aig, SegmentDescriptor],
    queue: "mp.Queue",
    cache_dir: Optional[str] = None,
    trace: bool = False,
    shm_token: Optional[str] = None,
    spill_path: Optional[str] = None,
    run_pid: Optional[int] = None,
) -> None:
    """Run one engine in a child process and post its result.

    Every exit path posts exactly one message; a worker that dies
    without posting (killed, segfault) is detected by the parent via its
    exit code.  With ``cache_dir`` the worker gets a *read-only* snapshot
    of the knowledge cache (no mid-run disk contention) and ships the
    verdicts it accumulated back in its result message, so the parent
    can merge and persist them.

    With ``trace`` the worker records its own span timeline and ships it
    in the result message for the parent tracer to re-base.  A SIGTERM
    handler turns the parent's staged termination into
    :class:`_WorkerTerminated`, so even a cancelled loser posts its
    partial trace during the terminate-grace window.

    With ``shm_token`` the worker joins the run's shared-memory data
    plane: ``miter`` arrives as a :class:`SegmentDescriptor` and is
    adopted zero-copy, and outbound residues/sideband payloads are
    published as segments under the run token.  The worker never unlinks
    anything — the parent registry reaps every segment of the run,
    which is what makes a SIGKILL at any point here leak-free.
    """
    start = time.perf_counter()
    tracer: Optional[Tracer] = None
    if trace:
        tracer = Tracer(process_name=f"worker:{spec[0]}")
        set_tracer(tracer)
        try:
            signal.signal(signal.SIGTERM, _raise_worker_terminated)
        except (ValueError, OSError):
            pass  # non-main thread or unsupported platform: spans on
            # normal completion still ship, cancelled ones are lost
    registry = None
    if shm_token is not None and shm_available():
        # Segments this worker creates are stamped with the *parent's*
        # pid: the parent registry is the reaper, so another daemon's
        # orphan sweep must key liveness off the parent, not the worker.
        registry = SegmentRegistry(
            token=shm_token,
            suffix=f"w{index}",
            owner_pid=run_pid if run_pid is not None else os.getppid(),
        )
        set_active_registry(registry)
    initial_pool: Optional[SharedPool] = None
    try:
        if isinstance(miter, SegmentDescriptor):
            if registry is None:
                raise RuntimeError(
                    "received a segment descriptor without a registry"
                )
            adoption = registry.adopt(miter)
            initial_pool = pool_from_adoption(adoption)
            miter = adopt_aig(adoption)
        checker = build_checker(
            spec,
            cache_dir=cache_dir,
            cache_readonly=True,
            initial_pool=initial_pool,
        )
        with get_tracer().span(
            f"engine:{spec[0]}", category="engine", engine=spec[0]
        ):
            result = checker.check_miter(miter)
        message = {
            "index": index,
            "status": result.status.value,
            "cex": result.cex,
            "seconds": time.perf_counter() - start,
        }
        sideband: Dict = {}
        if isinstance(result.report, EngineReport):
            sideband["report"] = result.report.as_dict()
        cache = getattr(checker, "cache", None)
        if cache is not None:
            sideband["cache"] = cache.counters.as_dict()
            sideband["cache_delta"] = list(cache.store.pending)
        _pack_residue(message, result, registry)
        if tracer is not None:
            sideband["trace"] = tracer.export_payload()
        _attach_sideband(message, sideband, registry)
        _post_message(queue, message, spill_path)
    except _WorkerTerminated:
        message = {
            "index": index,
            "status": "terminated",
            "seconds": time.perf_counter() - start,
        }
        sideband = {}
        if tracer is not None:
            sideband["trace"] = tracer.export_payload()
        _attach_sideband(message, sideband, registry)
        _post_message(queue, message, spill_path)
    except BaseException as error:  # surface crashes as structured data
        message = {
            "index": index,
            "status": "error",
            "message": repr(error),
            "traceback": traceback.format_exc(),
            "seconds": time.perf_counter() - start,
        }
        sideband = {}
        if tracer is not None:
            sideband["trace"] = tracer.export_payload()
        _attach_sideband(message, sideband, registry)
        _post_message(queue, message, spill_path)
    finally:
        if registry is not None:
            set_active_registry(None)
            registry.close()
        try:
            # The message (or spill file) is out: a SIGTERM landing while
            # the interpreter flushes queue feeder threads at exit must
            # not re-raise _WorkerTerminated inside the finalizers.
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


@dataclass
class _WorkerState:
    """Parent-side bookkeeping for one engine worker."""

    index: int
    name: str
    process: "mp.process.BaseProcess"
    record: EngineRunRecord
    budget: Optional[float]
    started: float = 0.0
    deadline: Optional[float] = None
    done: bool = False
    #: Monotonic time the process was first observed dead without having
    #: posted a result (grace period for in-flight queue messages).
    dead_since: Optional[float] = None
    #: Carried :class:`SweepState` adopted alongside an UNDECIDED
    #: residue (shared-memory runs only).
    sim_state: Optional[SweepState] = None


class ParallelPortfolioChecker:
    """Race engines in separate processes; first conclusive answer wins.

    Parameters
    ----------
    engines:
        Engine specs (see module docstring); defaults to one checker per
        prover family.  A spec may carry a third element — its
        wall-clock budget in seconds.
    time_limit:
        Overall wall-clock budget; on expiry all engines are terminated
        and the best residue seen so far (if any) is handed to the
        finisher, then returned UNDECIDED.
    engine_time_limit:
        Default per-engine budget for specs without their own.
    start_method:
        Multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); see :func:`resolve_start_method` for the
        default resolution.
    finisher:
        Engine spec run in-process on the smallest residue after a
        global timeout.  Defaults to a conflict-limited SAT sweep;
        pass ``None`` to disable the hand-off.
    finisher_time_limit:
        Wall-clock budget injected into the default finisher.
    terminate_grace:
        Seconds to wait between SIGTERM and SIGKILL when stopping a
        worker.
    cache_dir:
        Directory of the functional-knowledge cache.  Workers are
        pre-seeded with a read-only snapshot; their verdict deltas ride
        back on the result messages and the parent merges and persists
        them — concurrent workers never write the store directly.
    use_shm:
        Whether to run the zero-copy shared-memory data plane
        (:mod:`repro.shm`).  ``None`` (the default) resolves via the
        ``REPRO_SHM`` environment variable, then defaults to on where
        POSIX shared memory exists; see :func:`resolve_use_shm`.

    Raises
    ------
    PortfolioError
        When every engine fails (crash or abnormal exit) — a portfolio
        with no surviving engine has no verdict to report.
    """

    _POLL_INTERVAL = 0.05
    _DEAD_GRACE = 1.0

    def __init__(
        self,
        engines: Optional[Sequence[EngineSpec]] = None,
        time_limit: Optional[float] = None,
        engine_time_limit: Optional[float] = None,
        start_method: Optional[str] = None,
        finisher: Union[EngineSpec, None, str] = "default",
        finisher_time_limit: float = 5.0,
        terminate_grace: float = 1.0,
        cache_dir: Optional[str] = None,
        use_shm: Optional[bool] = None,
    ) -> None:
        self.engines = list(engines) if engines is not None else list(
            DEFAULT_ENGINES
        )
        if not self.engines:
            raise ValueError("need at least one engine spec")
        self.time_limit = time_limit
        self.engine_time_limit = engine_time_limit
        self.start_method = start_method
        if finisher == "default":
            kind, kwargs = DEFAULT_FINISHER[0], dict(DEFAULT_FINISHER[1])
            kwargs.setdefault("time_limit", finisher_time_limit)
            self.finisher: Optional[EngineSpec] = (kind, kwargs)
        else:
            self.finisher = finisher
        self.terminate_grace = terminate_grace
        self.cache_dir = cache_dir
        #: Parent-side knowledge cache: loads the snapshot the workers
        #: are pre-seeded with, absorbs their deltas on join, and is the
        #: only writer of the store during a parallel run.
        self.cache: Optional[SweepCache] = (
            SweepCache(CacheConfig(directory=cache_dir))
            if cache_dir is not None
            else None
        )
        #: Engine that produced the winning verdict in the last run.
        self.winner: Optional[str] = None
        #: Full report of the last run (also on ``CecResult.report``).
        self.report: Optional[PortfolioReport] = None
        #: Residue left by the last finisher run (smaller than the input
        #: when the finisher made partial progress).
        self._finisher_residue: Optional[Aig] = None
        self.use_shm = resolve_use_shm(use_shm)
        #: Live segment registry of the current run (parent = reaper).
        self._registry: Optional[SegmentRegistry] = None

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Race the configured engines on a miter."""
        method = resolve_start_method(self.start_method)
        context = mp.get_context(method)
        result_queue: "mp.Queue" = context.Queue()
        started_at = time.monotonic()
        report = PortfolioReport(start_method=method)
        self.report = report
        self.winner = None
        tracer = get_tracer()
        trace = tracer.enabled

        registry: Optional[SegmentRegistry] = None
        worker_payload: Union[Aig, SegmentDescriptor] = miter
        if self.use_shm:
            try:
                # Blocks stranded by a long-dead parent (SIGKILL, power
                # loss) have no reaper left; sweep them opportunistically.
                reap_orphans()
            except Exception:
                pass
            try:
                registry = SegmentRegistry()
                arrays, meta = aig_shm_arrays(miter)
                pool = shared_pool_for_specs(self.engines, miter.num_pis)
                if pool is not None:
                    # Satellite of ROADMAP item 2: generate the initial
                    # PI pattern pool once and ship it read-only with
                    # the miter instead of regenerating it per worker.
                    arrays["pi_words"] = pool.pi_words
                    meta["pool"] = {
                        "num_random_words": pool.num_random_words,
                        "seed": pool.seed,
                        "strategy": pool.strategy,
                        "num_cex": pool.num_cex,
                    }
                worker_payload = registry.publish(arrays=arrays, meta=meta)
            except Exception:
                if registry is not None:
                    registry.reap()
                registry = None
                worker_payload = miter
        self._registry = registry
        try:
            spill_dir: Optional[str] = tempfile.mkdtemp(prefix="repro-ipc-")
        except OSError:
            spill_dir = None

        workers: List[_WorkerState] = []
        for index, spec in enumerate(self.engines):
            record = EngineRunRecord(name=spec[0], status="running")
            report.engines.append(record)
            budget = spec[2] if len(spec) > 2 else self.engine_time_limit
            spill_path = (
                os.path.join(spill_dir, f"worker{index}.msg")
                if spill_dir is not None
                else None
            )
            process = context.Process(
                target=_engine_worker,
                args=(
                    index,
                    spec,
                    worker_payload,
                    result_queue,
                    self.cache_dir,
                    trace,
                    registry.token if registry is not None else None,
                    spill_path,
                    os.getpid(),
                ),
                daemon=False,
            )
            workers.append(
                _WorkerState(
                    index=index,
                    name=spec[0],
                    process=process,
                    record=record,
                    budget=budget,
                )
            )

        best_residue: Optional[Aig] = None
        best_state: Optional[SweepState] = None
        verdict: Optional[CecResult] = None
        timed_out = False
        run_span = tracer.span(
            "portfolio.run",
            category="portfolio",
            engines=len(self.engines),
            start_method=method,
        )
        run_span.__enter__()
        sampler = None
        try:
            for state in workers:
                state.process.start()
                state.started = time.monotonic()
                if state.budget is not None:
                    state.deadline = state.started + state.budget
            if trace:
                # Per-worker RSS/CPU histograms for the merged dump —
                # only worth a thread when someone will read the trace.
                from repro.obs.telemetry import ResourceSampler

                sampler = ResourceSampler(
                    lambda: [w.process.pid for w in workers],
                    tracer.metrics,
                    prefix="portfolio.worker",
                    interval=0.25,
                )
                sampler.start()
            global_deadline = (
                started_at + self.time_limit
                if self.time_limit is not None
                else None
            )

            while any(not w.done for w in workers):
                now = time.monotonic()
                if global_deadline is not None and now >= global_deadline:
                    timed_out = True
                    break
                message = self._poll_queue(
                    result_queue, workers, now, global_deadline
                )
                if message is not None:
                    residue = self._record_message(
                        workers[message["index"]], message
                    )
                    if isinstance(residue, CecResult):
                        verdict = residue
                        break
                    if residue is not None and (
                        best_residue is None
                        or residue.num_ands < best_residue.num_ands
                    ):
                        best_residue = residue
                        best_state = workers[message["index"]].sim_state
                self._reap_workers(workers)

            if verdict is not None:
                self._cancel_remaining(workers, "cancelled")
                report.winner = self.winner
                report.total_seconds = time.monotonic() - started_at
                verdict.report = report
                return self._detach_result(verdict)

            self._cancel_remaining(
                workers, "timeout" if timed_out else "cancelled"
            )

            failures = [
                w.record.failure
                for w in workers
                if w.record.failure is not None
            ]
            if len(failures) == len(workers):
                report.total_seconds = time.monotonic() - started_at
                raise PortfolioError(failures, report)

            if timed_out and best_residue is not None:
                finished = self._run_finisher(
                    best_residue, report, state=best_state
                )
                if finished is not None:
                    report.total_seconds = time.monotonic() - started_at
                    finished.report = report
                    return self._detach_result(finished)
                if (
                    self._finisher_residue is not None
                    and self._finisher_residue.num_ands
                    < best_residue.num_ands
                ):
                    best_residue = self._finisher_residue
                    best_state = None

            report.total_seconds = time.monotonic() - started_at
            return self._detach_result(
                CecResult(
                    CecStatus.UNDECIDED,
                    reduced_miter=(
                        best_residue if best_residue is not None else miter
                    ),
                    report=report,
                    sim_state=best_state,
                )
            )
        finally:
            if sampler is not None:
                sampler.stop()
            for state in workers:
                self._stop_process(state.process, engine=state.name)
            # Cancelled losers post their traces and cache deltas during
            # the terminate-grace window; drain the queue to exhaustion
            # (and collect any spill files) *before* closing it —
            # cancel_join_thread after close would discard whatever the
            # feeder threads still had in flight.
            self._drain_late_messages(
                result_queue,
                workers,
                spill_dir=spill_dir,
                max_wait=2.0 if trace else 0.5,
            )
            if registry is not None:
                registry.reap()
                self._registry = None
            if trace:
                run_span.set("winner", self.winner or "")
            run_span.__exit__(None, None, None)
            if trace:
                report.metrics = tracer.metrics.as_dict()
            result_queue.close()
            result_queue.cancel_join_thread()
            if self.cache is not None:
                self.cache.flush()
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Orchestration internals
    # ------------------------------------------------------------------

    def _poll_queue(
        self,
        result_queue: "mp.Queue",
        workers: List[_WorkerState],
        now: float,
        global_deadline: Optional[float],
    ) -> Optional[Dict]:
        """One bounded wait on the result queue.

        The wait is capped by the poll interval and by the nearest
        deadline (global or per-engine) so budget enforcement and dead
        worker detection stay responsive.
        """
        timeout = self._POLL_INTERVAL
        deadlines = [
            w.deadline for w in workers if not w.done and w.deadline is not None
        ]
        if global_deadline is not None:
            deadlines.append(global_deadline)
        if deadlines:
            timeout = min(timeout, max(0.0, min(deadlines) - now))
        try:
            return result_queue.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def _unpack_message(self, message: Dict) -> Dict:
        """Resolve a message's segment references into domain objects.

        On the data plane a worker message carries descriptors instead
        of payloads: ``sideband_ref`` (pickled report/trace/cache blob)
        and ``state_ref`` (residue arrays, optionally a full carried
        :class:`SweepState`).  Both are adopted here — the state by
        mapping, not copying — and folded back into the message under
        the legacy keys, so everything downstream sees one layout.
        Traced runs also account the message's queue-borne size under
        ``ipc.bytes_pickled``.
        """
        tracer = get_tracer()
        if tracer.enabled:
            try:
                tracer.metrics.counter_add(
                    "ipc.bytes_pickled",
                    len(
                        pickle.dumps(
                            message, protocol=pickle.HIGHEST_PROTOCOL
                        )
                    ),
                )
            except Exception:
                pass
        registry = self._registry
        ref = message.pop("sideband_ref", None)
        if ref is not None and registry is not None:
            try:
                adoption = registry.adopt(ref)
                sideband = pickle.loads(adoption.blob.tobytes())
                registry.release(adoption)
                message.update(sideband)
            except Exception:
                pass  # worker died mid-publish: sideband is lost
        ref = message.pop("state_ref", None)
        if ref is not None and registry is not None:
            try:
                adoption = registry.adopt(ref)
                if ref.meta.get("kind") == "sweep_state":
                    sweep = SweepState.attach(adoption.arrays, ref.meta)
                    message["residue"] = sweep.network()
                    message["sim_state"] = sweep
                else:
                    message["residue"] = adopt_aig(adoption)
            except Exception:
                pass  # worker died mid-publish: residue is lost
        return message

    def _detach_result(self, result: CecResult) -> CecResult:
        """Copy a result off the data plane before the registry reaps.

        Anything returned to the caller must own its memory: the
        ``finally`` block unlinks and unmaps every segment of the run,
        which would invalidate borrowed views.  Detaching copies exactly
        the arrays that are still views (carried knowledge survives) and
        is a no-op on queue-path runs.
        """
        if self._registry is None:
            return result
        state = result.sim_state
        if isinstance(state, SweepState):
            network = state.network()
            state.detach()
            if result.reduced_miter is network:
                result.reduced_miter = state.network()
        if result.reduced_miter is not None:
            result.reduced_miter = detach_aig(result.reduced_miter)
        return result

    def _record_message(
        self, state: _WorkerState, message: Dict
    ) -> Union[CecResult, Aig, None]:
        """Fold one worker message into its record.

        Returns a :class:`CecResult` for a conclusive verdict, the
        residue network for an UNDECIDED report, ``None`` otherwise.
        """
        message = self._unpack_message(message)
        # A worker posts at most one message, so trace and cache deltas
        # are safe to fold in even when the record is already settled
        # (late post from a worker the parent timed out or cancelled).
        self._merge_worker_trace(message)
        if state.done or message["status"] == "terminated":
            self._merge_worker_cache(message)
            return None
        state.done = True
        record = state.record
        record.seconds = message["seconds"]
        self._merge_worker_cache(message)
        report_payload = message.get("report")
        if report_payload:
            record.report = EngineReport.from_dict(report_payload)
        status = message["status"]
        if status == "error":
            record.status = "failed"
            record.failure = EngineFailure(
                engine=state.name,
                message=message["message"],
                traceback=message.get("traceback", ""),
            )
            return None
        if status == "undecided":
            record.status = "undecided"
            residue = message.get("residue")
            if residue is not None:
                record.residue_ands = residue.num_ands
                state.sim_state = message.get("sim_state")
            return residue
        record.status = status
        self.winner = state.name
        if status == "equivalent":
            return CecResult(CecStatus.EQUIVALENT)
        return CecResult(CecStatus.NONEQUIVALENT, cex=message.get("cex"))

    def _merge_worker_trace(self, message: Dict) -> None:
        """Re-base a worker's span timeline onto the parent tracer."""
        payload = message.get("trace")
        if payload is None:
            return
        tracer = get_tracer()
        if tracer.enabled:
            tracer.merge_child(payload)

    def _drain_late_messages(
        self,
        result_queue: "mp.Queue",
        workers: List[_WorkerState],
        spill_dir: Optional[str] = None,
        max_wait: float = 2.0,
    ) -> None:
        """Absorb messages still in flight after all workers stopped.

        Runs on every teardown, before the queue is closed: cancelled
        workers post their partial traces (and cache deltas) from the
        SIGTERM handler after the main loop has stopped reading, and a
        late loser's cache delta matters even without tracing.  Messages
        a worker had to spill to disk (queue already torn down on its
        side) are collected afterwards from ``spill_dir``.
        """
        deadline = time.monotonic() + max_wait
        while time.monotonic() < deadline:
            try:
                message = result_queue.get(timeout=0.05)
            except (queue_module.Empty, OSError, ValueError):
                break
            try:
                self._record_message(workers[message["index"]], message)
            except (KeyError, IndexError, TypeError):
                continue  # malformed late payload: drop it, keep draining
        self._collect_spilled_messages(spill_dir, workers)

    def _collect_spilled_messages(
        self, spill_dir: Optional[str], workers: List[_WorkerState]
    ) -> None:
        """Fold in messages workers spilled to disk (see _post_message)."""
        if spill_dir is None:
            return
        try:
            names = sorted(os.listdir(spill_dir))
        except OSError:
            return
        for name in names:
            if not name.endswith(".msg"):
                continue
            try:
                with open(os.path.join(spill_dir, name), "rb") as handle:
                    message = pickle.load(handle)
            except Exception:
                continue  # truncated or foreign file: skip it
            try:
                self._record_message(workers[message["index"]], message)
            except (KeyError, IndexError, TypeError):
                continue

    def _merge_worker_cache(self, message: Dict) -> None:
        """Fold a worker's knowledge delta and counters into the run."""
        if self.report is not None and "cache" in message:
            if self.report.cache is None:
                self.report.cache = CacheCounters()
            self.report.cache.add(CacheCounters.from_dict(message["cache"]))
        if self.cache is None:
            return
        for key, verdict in message.get("cache_delta", ()):
            if self.cache.store.put(key, verdict):
                self.cache.counters.stores += 1

    def _reap_workers(self, workers: List[_WorkerState]) -> None:
        """Enforce per-engine budgets and detect abnormal exits."""
        now = time.monotonic()
        for state in workers:
            if state.done:
                continue
            if state.deadline is not None and now >= state.deadline:
                self._stop_process(state.process, engine=state.name)
                state.done = True
                state.record.status = "timeout"
                state.record.seconds = now - state.started
                continue
            if not state.process.is_alive():
                if state.dead_since is None:
                    # Allow in-flight queue messages to drain before
                    # declaring the exit abnormal.
                    state.dead_since = now
                elif now - state.dead_since >= self._DEAD_GRACE:
                    state.done = True
                    state.record.status = "failed"
                    state.record.seconds = now - state.started
                    state.record.failure = EngineFailure(
                        engine=state.name,
                        message="worker exited without reporting a result",
                        exit_code=state.process.exitcode,
                    )

    def _cancel_remaining(
        self, workers: List[_WorkerState], status: str
    ) -> None:
        """Stop every still-running worker and record why."""
        now = time.monotonic()
        for state in workers:
            if state.done:
                continue
            self._stop_process(state.process, engine=state.name)
            state.done = True
            state.record.status = status
            state.record.seconds = now - state.started

    def _stop_process(
        self, process: "mp.process.BaseProcess", engine: str = ""
    ) -> None:
        """Staged termination: SIGTERM, join grace, then SIGKILL."""
        stop_process_staged(process, self.terminate_grace, engine=engine)

    def _run_finisher(
        self,
        residue: Aig,
        report: PortfolioReport,
        state: Optional[SweepState] = None,
    ) -> Optional[CecResult]:
        """Re-check the best residue in-process after a global timeout.

        Returns a conclusive :class:`CecResult` when the finisher proves
        or disproves the residue, ``None`` otherwise.  Finisher crashes
        are recorded on the report, never raised — the portfolio still
        has its UNDECIDED answer to return.

        ``state`` is the carried :class:`SweepState` adopted with the
        residue off the data plane; a finisher whose ``check_miter``
        accepts a ``state`` argument (the SAT sweeper does) picks up the
        segment-mapped signatures and pattern pool directly instead of
        re-simulating the residue from scratch.
        """
        self._finisher_residue: Optional[Aig] = None
        if self.finisher is None:
            return None
        record = EngineRunRecord(
            name=f"finisher:{self.finisher[0]}", status="running"
        )
        report.finisher = record
        start = time.perf_counter()
        try:
            if self.cache is not None:
                # Persist the merged worker deltas so the finisher's own
                # cache loads them as part of its snapshot.
                self.cache.flush()
            checker = build_checker(self.finisher, cache_dir=self.cache_dir)
            result = self._dispatch_finisher(checker, residue, state)
        except Exception as error:
            record.seconds = time.perf_counter() - start
            record.status = "failed"
            record.failure = EngineFailure(
                engine=record.name,
                message=repr(error),
                traceback=traceback.format_exc(),
            )
            return None
        record.seconds = time.perf_counter() - start
        record.status = result.status.value
        finisher_cache = getattr(checker, "cache", None)
        if finisher_cache is not None:
            if report.cache is None:
                report.cache = CacheCounters()
            report.cache.add(finisher_cache.counters)
        if result.status is CecStatus.UNDECIDED:
            if result.reduced_miter is not None:
                record.residue_ands = result.reduced_miter.num_ands
                self._finisher_residue = result.reduced_miter
            return None
        self.winner = record.name
        report.winner = record.name
        return result

    @staticmethod
    def _dispatch_finisher(
        checker, residue: Aig, state: Optional[SweepState]
    ) -> CecResult:
        """Invoke the finisher, handing over the carried state if it can.

        Checkers advertise state adoption by accepting a ``state``
        keyword on ``check_miter``; anything else gets the plain call.
        """
        if state is not None:
            try:
                params = inspect.signature(checker.check_miter).parameters
            except (TypeError, ValueError):
                params = {}
            if "state" in params:
                return checker.check_miter(residue, state=state)
        return checker.check_miter(residue)
