"""Fault-tolerant concurrent multi-engine checking.

The paper describes commercial checkers as running "different engines
simultaneously and early stop when an engine finishes" (§IV-A) on up to
16 CPU threads.  :class:`ParallelPortfolioChecker` reproduces that
architecture with one OS process per engine, racing to the first
conclusive answer.

The process/segment/queue machinery — spawn-safe start-method
resolution, staged SIGTERM → SIGKILL budgets, the zero-copy
shared-memory data plane, late-message spill drains — lives in
:mod:`repro.exec`; this module is the *policy*: which engines to race,
how to score their messages into a
:class:`~repro.sweep.report.PortfolioReport`, when to cancel the rest,
and the residue hand-off to a finisher engine after a global timeout.
Crash surfacing is structural: a worker exception or abnormal exit
becomes an :class:`~repro.sweep.report.EngineFailure` on the report
(with the kill reason, "timeout" vs "cancelled", normalised through the
runtime's cancellation tokens), and the run raises
:class:`PortfolioError` only when *every* engine fails.

Engines are named specs so they pickle cleanly:

- ``("sim", {...EngineConfig kwargs...})`` — the simulation engine;
- ``("combined", {...})`` — simulation engine + SAT residue;
- ``("sat", {"conflict_limit": ..., ...})`` — SAT sweeping;
- ``("bdd", {"node_limit": ...})`` — monolithic BDD;
- ``("bddsweep", {"node_limit": ...})`` — BDD sweeping;
- ``("sleep", {"seconds": ...})`` / ``("crash", {...})`` — fault
  injection (see :mod:`repro.portfolio.faults`).

A spec may carry an optional third element, a per-engine wall-clock
budget in seconds: ``("sat", {}, 10.0)``.
"""

from __future__ import annotations

import inspect
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.cache.config import CacheConfig
from repro.cache.counters import CacheCounters
from repro.cache.knowledge import SweepCache
from repro.exec import (
    REASON_TIMEOUT,
    ExecRuntime,
    WorkerHandle,
    normalize_reason,
)
from repro.exec import (  # noqa: F401  (re-exported compat surface)
    SHM_ENV,
    START_METHOD_ENV,
    pool_from_adoption,
    resolve_start_method,
    resolve_use_shm,
    stop_process_staged,
)
from repro.exec.transport import (  # noqa: F401  (compat aliases)
    attach_sideband as _attach_sideband,
    collect_spilled_messages,
    pack_residue as _pack_residue,
    post_message as _post_message,
)
from repro.exec.worker import WorkerTerminated as _WorkerTerminated  # noqa: F401
from repro.obs import get_tracer
from repro.shm import SegmentDescriptor, adopt_aig, detach_aig
from repro.sweep.classes import SharedPool
from repro.sweep.engine import CecResult, CecStatus
from repro.sweep.report import (
    EngineFailure,
    EngineReport,
    EngineRunRecord,
    PortfolioReport,
)
from repro.sweep.state import SweepState

EngineSpec = Union[Tuple[str, Dict], Tuple[str, Dict, float]]

#: The default engine line-up: one of each prover family.
DEFAULT_ENGINES: List[EngineSpec] = [
    ("combined", {}),
    ("sat", {}),
    ("bdd", {"node_limit": 500_000}),
]

#: Default finisher: a conflict-limited SAT sweep over the best residue.
DEFAULT_FINISHER: EngineSpec = ("sat", {"conflict_limit": 20_000})


class PortfolioError(RuntimeError):
    """Raised when every engine of a portfolio run failed.

    Carries the structured failures and the full
    :class:`~repro.sweep.report.PortfolioReport` of the run.
    """

    def __init__(
        self, failures: Sequence[EngineFailure], report: PortfolioReport
    ) -> None:
        self.failures = list(failures)
        self.report = report
        details = "; ".join(str(f) for f in self.failures)
        super().__init__(
            f"all {len(self.failures)} portfolio engines failed: {details}"
        )


def build_checker(
    spec: EngineSpec,
    cache_dir: Optional[str] = None,
    cache_readonly: bool = False,
    cache: Optional[SweepCache] = None,
    initial_pool: Optional[SharedPool] = None,
    cost_model=None,
):
    """Instantiate a checker from a picklable spec.

    The optional third spec element (the per-engine budget) is consumed
    by the orchestrator, not the checker, and is ignored here.
    ``cache_dir`` attaches a functional-knowledge cache to the engines
    that support one; ``cache_readonly`` loads it as a snapshot whose
    deltas are never written back (portfolio workers — the parent merges
    their deltas on join instead).  ``cache`` injects an already-loaded
    cache object instead (serve workers keep theirs resident across
    jobs); it wins over ``cache_dir``.  ``initial_pool`` hands the
    simulation engines a pre-generated pattern pool (typically mapped
    out of a shared-memory segment) so they skip regenerating it.
    ``cost_model`` hands the combined checker an externally-owned lane
    cost model (serve workers keep one resident per tenant, so the
    adaptive scheduler stays calibrated across jobs).
    """
    kind, kwargs = spec[0], spec[1]

    def knowledge_cache() -> Optional[SweepCache]:
        if cache is not None:
            return cache
        if cache_dir is None:
            return None
        return SweepCache(
            CacheConfig(directory=cache_dir, readonly=cache_readonly)
        )

    if kind == "sim":
        from repro.sweep.config import EngineConfig
        from repro.sweep.engine import SimSweepEngine

        return SimSweepEngine(
            EngineConfig(**kwargs),
            cache=knowledge_cache(),
            initial_pool=initial_pool,
        )
    if kind == "combined":
        from repro.portfolio.checker import CombinedChecker
        from repro.sweep.config import EngineConfig

        kwargs = dict(kwargs)
        sched = kwargs.pop("sched", "auto")
        config = EngineConfig(**kwargs) if kwargs else None
        return CombinedChecker(
            config=config,
            cache=knowledge_cache(),
            initial_pool=initial_pool,
            sched=sched,
            cost_model=cost_model,
        )
    if kind == "sat":
        from repro.sat.sweeping import SatSweepChecker

        return SatSweepChecker(**kwargs, cache=knowledge_cache())
    if kind == "bdd":
        from repro.bdd.cec import BddChecker

        return BddChecker(**kwargs)
    if kind == "bddsweep":
        from repro.bdd.sweeping import BddSweepChecker

        return BddSweepChecker(**kwargs)
    if kind == "sleep":
        from repro.portfolio.faults import SleepingChecker

        return SleepingChecker(**kwargs)
    if kind == "crash":
        from repro.portfolio.faults import CrashingChecker

        return CrashingChecker(**kwargs)
    if kind == "leak":
        from repro.portfolio.faults import LeakingChecker

        return LeakingChecker(**kwargs)
    raise ValueError(f"unknown engine spec {kind!r}")


def shared_pool_for_specs(
    specs: Sequence[EngineSpec], num_pis: int
) -> Optional[SharedPool]:
    """Generate the run's shared pattern pool, if any engine wants one.

    The pool parameters come from the first simulation-capable spec
    (``sim``/``combined``); workers whose own config differs simply fail
    the :meth:`SharedPool.compatible` check and regenerate locally, so a
    mixed portfolio stays correct.  Returns ``None`` when no spec runs
    the simulation engine or the config cannot be built.
    """
    for spec in specs:
        if spec[0] not in ("sim", "combined"):
            continue
        try:
            from repro.sweep.config import EngineConfig

            config = EngineConfig(**spec[1]) if spec[1] else EngineConfig()
            return SharedPool.generate(
                num_pis,
                config.num_random_words,
                config.seed,
                config.pattern_strategy,
            )
        except Exception:
            return None
    return None


def run_engine_job(payload: Dict, ctx) -> Dict:
    """One-shot job handler: run one engine on the miter, report once.

    Runs inside an :func:`repro.exec.worker.exec_worker_main` child.
    With a segment-descriptor miter the worker adopts it zero-copy off
    the run registry (pattern pool included); the checker gets a
    *read-only* snapshot of the knowledge cache (no mid-run disk
    contention) and ships the verdicts it accumulated back in the
    sideband, so the parent can merge and persist them.  UNDECIDED
    residues (and the carried sweep state, when it still owns them) are
    published back as segments by :func:`~repro.exec.transport.pack_residue`.
    """
    spec = payload["spec"]
    miter = payload["miter"]
    initial_pool: Optional[SharedPool] = None
    if isinstance(miter, SegmentDescriptor):
        if ctx.registry is None:
            raise RuntimeError(
                "received a segment descriptor without a registry"
            )
        adoption = ctx.registry.adopt(miter)
        initial_pool = pool_from_adoption(adoption)
        miter = adopt_aig(adoption)
    checker = build_checker(
        spec,
        cache_dir=payload.get("cache_dir"),
        cache_readonly=True,
        initial_pool=initial_pool,
    )
    with get_tracer().span(
        f"engine:{spec[0]}", category="engine", engine=spec[0]
    ):
        result = checker.check_miter(miter)
    message: Dict = {"status": result.status.value, "cex": result.cex}
    sideband: Dict = {}
    if isinstance(result.report, EngineReport):
        sideband["report"] = result.report.as_dict()
    cache = getattr(checker, "cache", None)
    if cache is not None:
        sideband["cache"] = cache.counters.as_dict()
        sideband["cache_delta"] = list(cache.store.pending)
    _pack_residue(message, result, ctx.registry)
    message["_sideband"] = sideband
    return message


@dataclass
class _WorkerState(WorkerHandle):
    """Parent-side bookkeeping for one engine worker."""

    record: Optional[EngineRunRecord] = None
    budget: Optional[float] = None
    deadline: Optional[float] = None
    done: bool = False
    #: Monotonic time the process was first observed dead without having
    #: posted a result (grace period for in-flight queue messages).
    dead_since: Optional[float] = None
    #: Carried :class:`SweepState` adopted alongside an UNDECIDED
    #: residue (shared-memory runs only).
    sim_state: Optional[SweepState] = None


class ParallelPortfolioChecker:
    """Race engines in separate processes; first conclusive answer wins.

    Parameters
    ----------
    engines:
        Engine specs (see module docstring); defaults to one checker per
        prover family.  A spec may carry a third element — its
        wall-clock budget in seconds.
    time_limit:
        Overall wall-clock budget; on expiry all engines are terminated
        and the best residue seen so far (if any) is handed to the
        finisher, then returned UNDECIDED.
    engine_time_limit:
        Default per-engine budget for specs without their own.
    start_method:
        Multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); see :func:`repro.exec.resolve_start_method`
        for the default resolution.
    finisher:
        Engine spec run in-process on the smallest residue after a
        global timeout.  Defaults to a conflict-limited SAT sweep;
        pass ``None`` to disable the hand-off.
    finisher_time_limit:
        Wall-clock budget injected into the default finisher.
    terminate_grace:
        Seconds to wait between SIGTERM and SIGKILL when stopping a
        worker.
    cache_dir:
        Directory of the functional-knowledge cache.  Workers are
        pre-seeded with a read-only snapshot; their verdict deltas ride
        back on the result messages and the parent merges and persists
        them — concurrent workers never write the store directly.
    use_shm:
        Whether to run the zero-copy shared-memory data plane
        (:mod:`repro.shm`).  ``None`` (the default) resolves via the
        ``REPRO_SHM`` environment variable, then defaults to on where
        POSIX shared memory exists; see
        :func:`repro.exec.resolve_use_shm`.

    Raises
    ------
    PortfolioError
        When every engine fails (crash or abnormal exit) — a portfolio
        with no surviving engine has no verdict to report.
    """

    _POLL_INTERVAL = 0.05
    _DEAD_GRACE = 1.0

    def __init__(
        self,
        engines: Optional[Sequence[EngineSpec]] = None,
        time_limit: Optional[float] = None,
        engine_time_limit: Optional[float] = None,
        start_method: Optional[str] = None,
        finisher: Union[EngineSpec, None, str] = "default",
        finisher_time_limit: float = 5.0,
        terminate_grace: float = 1.0,
        cache_dir: Optional[str] = None,
        use_shm: Optional[bool] = None,
    ) -> None:
        self.engines = list(engines) if engines is not None else list(
            DEFAULT_ENGINES
        )
        if not self.engines:
            raise ValueError("need at least one engine spec")
        self.time_limit = time_limit
        self.engine_time_limit = engine_time_limit
        self.start_method = start_method
        if finisher == "default":
            kind, kwargs = DEFAULT_FINISHER[0], dict(DEFAULT_FINISHER[1])
            kwargs.setdefault("time_limit", finisher_time_limit)
            self.finisher: Optional[EngineSpec] = (kind, kwargs)
        else:
            self.finisher = finisher
        self.terminate_grace = terminate_grace
        self.cache_dir = cache_dir
        #: Parent-side knowledge cache: loads the snapshot the workers
        #: are pre-seeded with, absorbs their deltas on join, and is the
        #: only writer of the store during a parallel run.
        self.cache: Optional[SweepCache] = (
            SweepCache(CacheConfig(directory=cache_dir))
            if cache_dir is not None
            else None
        )
        #: Engine that produced the winning verdict in the last run.
        self.winner: Optional[str] = None
        #: Full report of the last run (also on ``CecResult.report``).
        self.report: Optional[PortfolioReport] = None
        #: Residue left by the last finisher run (smaller than the input
        #: when the finisher made partial progress).
        self._finisher_residue: Optional[Aig] = None
        self.use_shm = resolve_use_shm(use_shm)
        #: Live job runtime of the current run (parent = segment reaper).
        self._runtime: Optional[ExecRuntime] = None

    @property
    def _registry(self):
        runtime = self._runtime
        return runtime.registry if runtime is not None else None

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Race the configured engines on a miter."""
        tracer = get_tracer()
        trace = tracer.enabled
        runtime = ExecRuntime(
            start_method=self.start_method,
            use_shm=self.use_shm,
            trace=trace,
            terminate_grace=self.terminate_grace,
            spill=True,
        ).open()
        self._runtime = runtime
        started_at = time.monotonic()
        report = PortfolioReport(start_method=runtime.start_method)
        self.report = report
        self.winner = None

        worker_payload: Union[Aig, SegmentDescriptor] = miter
        if runtime.registry is not None:
            # Generate the initial PI pattern pool once and ship it
            # read-only with the miter instead of regenerating it per
            # worker.  Publish failure drops the whole plane: one
            # payload layout for every worker.
            descriptor = runtime.publish_aig(
                miter,
                pool=shared_pool_for_specs(self.engines, miter.num_pis),
                disable_on_error=True,
            )
            if descriptor is not None:
                worker_payload = descriptor

        workers: List[_WorkerState] = []
        for index, spec in enumerate(self.engines):
            record = EngineRunRecord(name=spec[0], status="running")
            report.engines.append(record)
            state = _WorkerState(
                index=index,
                name=spec[0],
                record=record,
                budget=spec[2] if len(spec) > 2 else self.engine_time_limit,
            )
            runtime.spawn(
                state,
                run_engine_job,
                payload={
                    "spec": spec,
                    "miter": worker_payload,
                    "cache_dir": self.cache_dir,
                },
                trace_name=f"worker:{spec[0]}",
                start=False,
            )
            workers.append(state)

        best_residue: Optional[Aig] = None
        best_state: Optional[SweepState] = None
        verdict: Optional[CecResult] = None
        timed_out = False
        run_span = tracer.span(
            "portfolio.run",
            category="portfolio",
            engines=len(self.engines),
            start_method=runtime.start_method,
        )
        run_span.__enter__()
        sampler = None
        try:
            for state in workers:
                state.process.start()
                state.started = time.monotonic()
                if state.budget is not None:
                    state.deadline = state.started + state.budget
            if trace:
                # Per-worker RSS/CPU histograms for the merged dump —
                # only worth a thread when someone will read the trace.
                from repro.obs.telemetry import ResourceSampler

                sampler = ResourceSampler(
                    lambda: [w.pid for w in workers],
                    tracer.metrics,
                    prefix="portfolio.worker",
                    interval=0.25,
                )
                sampler.start()
            global_deadline = (
                started_at + self.time_limit
                if self.time_limit is not None
                else None
            )

            while any(not w.done for w in workers):
                now = time.monotonic()
                if global_deadline is not None and now >= global_deadline:
                    timed_out = True
                    break
                message = runtime.poll(
                    self._poll_timeout(workers, now, global_deadline)
                )
                if message is not None:
                    residue = self._record_message(
                        workers[message["index"]], message
                    )
                    if isinstance(residue, CecResult):
                        verdict = residue
                        break
                    if residue is not None and (
                        best_residue is None
                        or residue.num_ands < best_residue.num_ands
                    ):
                        best_residue = residue
                        best_state = workers[message["index"]].sim_state
                self._reap_workers(workers)

            if verdict is not None:
                self._cancel_remaining(workers, "cancelled")
                report.winner = self.winner
                report.total_seconds = time.monotonic() - started_at
                verdict.report = report
                return self._detach_result(verdict)

            self._cancel_remaining(
                workers, "timeout" if timed_out else "cancelled"
            )

            failures = [
                w.record.failure
                for w in workers
                if w.record.failure is not None
            ]
            if len(failures) == len(workers):
                report.total_seconds = time.monotonic() - started_at
                raise PortfolioError(failures, report)

            if timed_out and best_residue is not None:
                finished = self._run_finisher(
                    best_residue, report, state=best_state
                )
                if finished is not None:
                    report.total_seconds = time.monotonic() - started_at
                    finished.report = report
                    return self._detach_result(finished)
                if (
                    self._finisher_residue is not None
                    and self._finisher_residue.num_ands
                    < best_residue.num_ands
                ):
                    best_residue = self._finisher_residue
                    best_state = None

            report.total_seconds = time.monotonic() - started_at
            return self._detach_result(
                CecResult(
                    CecStatus.UNDECIDED,
                    reduced_miter=(
                        best_residue if best_residue is not None else miter
                    ),
                    report=report,
                    sim_state=best_state,
                )
            )
        finally:
            if sampler is not None:
                sampler.stop()
            for state in workers:
                if state.process is not None:
                    stop_process_staged(
                        state.process, self.terminate_grace, engine=state.name
                    )
            # Cancelled losers post their traces and cache deltas during
            # the terminate-grace window; drain the queue to exhaustion
            # (and collect any spill files) *before* closing it —
            # cancel_join_thread after close would discard whatever the
            # feeder threads still had in flight.
            runtime.drain_late(
                lambda message: self._record_message(
                    workers[message["index"]], message
                ),
                max_wait=2.0 if trace else 0.5,
            )
            if trace:
                run_span.set("winner", self.winner or "")
            run_span.__exit__(None, None, None)
            if trace:
                report.metrics = tracer.metrics.as_dict()
            if self.cache is not None:
                self.cache.flush()
            runtime.close()
            self._runtime = None

    # ------------------------------------------------------------------
    # Orchestration internals
    # ------------------------------------------------------------------

    def _poll_timeout(
        self,
        workers: List[_WorkerState],
        now: float,
        global_deadline: Optional[float],
    ) -> float:
        """Bound one queue wait by the poll interval and the nearest
        deadline (global or per-engine), so budget enforcement and dead
        worker detection stay responsive."""
        timeout = self._POLL_INTERVAL
        deadlines = [
            w.deadline for w in workers if not w.done and w.deadline is not None
        ]
        if global_deadline is not None:
            deadlines.append(global_deadline)
        if deadlines:
            timeout = min(timeout, max(0.0, min(deadlines) - now))
        return timeout

    def _detach_result(self, result: CecResult) -> CecResult:
        """Copy a result off the data plane before the registry reaps.

        Anything returned to the caller must own its memory: the
        ``finally`` block unlinks and unmaps every segment of the run,
        which would invalidate borrowed views.  Detaching copies exactly
        the arrays that are still views (carried knowledge survives) and
        is a no-op on queue-path runs.
        """
        if self._registry is None:
            return result
        state = result.sim_state
        if isinstance(state, SweepState):
            network = state.network()
            state.detach()
            if result.reduced_miter is network:
                result.reduced_miter = state.network()
        if result.reduced_miter is not None:
            result.reduced_miter = detach_aig(result.reduced_miter)
        return result

    def _record_message(
        self, state: _WorkerState, message: Dict
    ) -> Union[CecResult, Aig, None]:
        """Fold one worker message into its record.

        Returns a :class:`CecResult` for a conclusive verdict, the
        residue network for an UNDECIDED report, ``None`` otherwise.
        """
        runtime = self._runtime
        if runtime is not None:
            message = runtime.absorb(message)
            runtime.merge_trace(message)
        # A worker posts at most one message, so trace and cache deltas
        # are safe to fold in even when the record is already settled
        # (late post from a worker the parent timed out or cancelled).
        if state.done or message["status"] == "terminated":
            self._merge_worker_cache(message)
            record = state.record
            if (
                message["status"] == "error"
                and record is not None
                and record.failure is None
                and state.token is not None
                and state.token.cancelled
            ):
                # A killed worker that crashed on its way out: surface
                # the crash with the kill reason instead of dropping it.
                record.failure = EngineFailure(
                    engine=state.name,
                    message=message.get("message", ""),
                    traceback=message.get("traceback", ""),
                    reason=state.token.reason,
                )
            return None
        state.done = True
        record = state.record
        record.seconds = message["seconds"]
        self._merge_worker_cache(message)
        report_payload = message.get("report")
        if report_payload:
            record.report = EngineReport.from_dict(report_payload)
        status = message["status"]
        if status == "error":
            record.status = "failed"
            record.failure = EngineFailure(
                engine=state.name,
                message=message["message"],
                traceback=message.get("traceback", ""),
                reason=(
                    state.token.reason
                    if state.token is not None and state.token.cancelled
                    else ""
                ),
            )
            return None
        if status == "undecided":
            record.status = "undecided"
            residue = message.get("residue")
            if residue is not None:
                record.residue_ands = residue.num_ands
                state.sim_state = message.get("sim_state")
            return residue
        record.status = status
        self.winner = state.name
        if status == "equivalent":
            return CecResult(CecStatus.EQUIVALENT)
        return CecResult(CecStatus.NONEQUIVALENT, cex=message.get("cex"))

    def _collect_spilled_messages(
        self, spill_dir: Optional[str], workers: List[_WorkerState]
    ) -> None:
        """Fold in messages workers spilled to disk (see transport)."""
        for message in collect_spilled_messages(spill_dir):
            try:
                self._record_message(workers[message["index"]], message)
            except (KeyError, IndexError, TypeError):
                continue

    def _merge_worker_cache(self, message: Dict) -> None:
        """Fold a worker's knowledge delta and counters into the run."""
        if self.report is not None and "cache" in message:
            if self.report.cache is None:
                self.report.cache = CacheCounters()
            self.report.cache.add(CacheCounters.from_dict(message["cache"]))
        if self.cache is None:
            return
        for key, verdict in message.get("cache_delta", ()):
            if self.cache.store.put(key, verdict):
                self.cache.counters.stores += 1

    def _reap_workers(self, workers: List[_WorkerState]) -> None:
        """Enforce per-engine budgets and detect abnormal exits."""
        now = time.monotonic()
        for state in workers:
            if state.done:
                continue
            if state.deadline is not None and now >= state.deadline:
                reason = self._stop_worker(state, REASON_TIMEOUT)
                state.done = True
                state.record.status = reason
                state.record.seconds = now - state.started
                continue
            if not state.alive:
                if state.dead_since is None:
                    # Allow in-flight queue messages to drain before
                    # declaring the exit abnormal.
                    state.dead_since = now
                elif now - state.dead_since >= self._DEAD_GRACE:
                    state.done = True
                    state.record.status = "failed"
                    state.record.seconds = now - state.started
                    state.record.failure = EngineFailure(
                        engine=state.name,
                        message="worker exited without reporting a result",
                        exit_code=state.process.exitcode,
                        reason=(
                            state.token.reason
                            if state.token is not None
                            and state.token.cancelled
                            else ""
                        ),
                    )

    def _cancel_remaining(
        self, workers: List[_WorkerState], status: str
    ) -> None:
        """Stop every still-running worker and record the reason why.

        ``status`` is normalised through each worker's cancellation
        token, so records (and any :class:`EngineFailure` attached to a
        late crash) always read one of the canonical "timeout" /
        "cancelled" strings.
        """
        now = time.monotonic()
        for state in workers:
            if state.done:
                continue
            reason = self._stop_worker(state, status)
            state.done = True
            state.record.status = reason
            state.record.seconds = now - state.started

    def _stop_worker(self, state: _WorkerState, reason: str) -> str:
        """Cancel-and-stop one worker; returns the canonical reason."""
        runtime = self._runtime
        if runtime is not None:
            return runtime.stop(state, reason)
        if state.token is not None:
            return state.token.cancel(reason)
        return normalize_reason(reason)

    def _run_finisher(
        self,
        residue: Aig,
        report: PortfolioReport,
        state: Optional[SweepState] = None,
    ) -> Optional[CecResult]:
        """Re-check the best residue in-process after a global timeout.

        Returns a conclusive :class:`CecResult` when the finisher proves
        or disproves the residue, ``None`` otherwise.  Finisher crashes
        are recorded on the report, never raised — the portfolio still
        has its UNDECIDED answer to return.

        ``state`` is the carried :class:`SweepState` adopted with the
        residue off the data plane; a finisher whose ``check_miter``
        accepts a ``state`` argument (the SAT sweeper does) picks up the
        segment-mapped signatures and pattern pool directly instead of
        re-simulating the residue from scratch.
        """
        self._finisher_residue: Optional[Aig] = None
        if self.finisher is None:
            return None
        record = EngineRunRecord(
            name=f"finisher:{self.finisher[0]}", status="running"
        )
        report.finisher = record
        start = time.perf_counter()
        try:
            if self.cache is not None:
                # Persist the merged worker deltas so the finisher's own
                # cache loads them as part of its snapshot.
                self.cache.flush()
            checker = build_checker(self.finisher, cache_dir=self.cache_dir)
            result = self._dispatch_finisher(checker, residue, state)
        except Exception as error:
            record.seconds = time.perf_counter() - start
            record.status = "failed"
            record.failure = EngineFailure(
                engine=record.name,
                message=repr(error),
                traceback=traceback.format_exc(),
            )
            return None
        record.seconds = time.perf_counter() - start
        record.status = result.status.value
        finisher_cache = getattr(checker, "cache", None)
        if finisher_cache is not None:
            if report.cache is None:
                report.cache = CacheCounters()
            report.cache.add(finisher_cache.counters)
        if result.status is CecStatus.UNDECIDED:
            if result.reduced_miter is not None:
                record.residue_ands = result.reduced_miter.num_ands
                self._finisher_residue = result.reduced_miter
            return None
        self.winner = record.name
        report.winner = record.name
        return result

    @staticmethod
    def _dispatch_finisher(
        checker, residue: Aig, state: Optional[SweepState]
    ) -> CecResult:
        """Invoke the finisher, handing over the carried state if it can.

        Checkers advertise state adoption by accepting a ``state``
        keyword on ``check_miter``; anything else gets the plain call.
        """
        if state is not None:
            try:
                params = inspect.signature(checker.check_miter).parameters
            except (TypeError, ValueError):
                params = {}
            if "state" in params:
                return checker.check_miter(residue, state=state)
        return checker.check_miter(residue)
