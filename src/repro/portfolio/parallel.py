"""Truly concurrent multi-engine checking.

The paper describes commercial checkers as running "different engines
simultaneously and early stop when an engine finishes" (§IV-A) on up to
16 CPU threads.  :class:`ParallelPortfolioChecker` reproduces that
architecture with one OS process per engine: the first conclusive
verdict wins and the losers are terminated.

Engines are named specs so they pickle cleanly:

- ``("sim", {...EngineConfig kwargs...})`` — the simulation engine;
- ``("combined", {...})`` — simulation engine + SAT residue;
- ``("sat", {"conflict_limit": ..., ...})`` — SAT sweeping;
- ``("bdd", {"node_limit": ...})`` — monolithic BDD;
- ``("bddsweep", {"node_limit": ...})`` — BDD sweeping.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.miter import build_miter
from repro.aig.network import Aig
from repro.sweep.engine import CecResult, CecStatus

EngineSpec = Tuple[str, Dict]

#: The default engine line-up: one of each prover family.
DEFAULT_ENGINES: List[EngineSpec] = [
    ("combined", {}),
    ("sat", {}),
    ("bdd", {"node_limit": 500_000}),
]


def build_checker(spec: EngineSpec):
    """Instantiate a checker from a picklable spec."""
    kind, kwargs = spec
    if kind == "sim":
        from repro.sweep.config import EngineConfig
        from repro.sweep.engine import SimSweepEngine

        return SimSweepEngine(EngineConfig(**kwargs))
    if kind == "combined":
        from repro.portfolio.checker import CombinedChecker
        from repro.sweep.config import EngineConfig

        config = EngineConfig(**kwargs) if kwargs else None
        return CombinedChecker(config=config)
    if kind == "sat":
        from repro.sat.sweeping import SatSweepChecker

        return SatSweepChecker(**kwargs)
    if kind == "bdd":
        from repro.bdd.cec import BddChecker

        return BddChecker(**kwargs)
    if kind == "bddsweep":
        from repro.bdd.sweeping import BddSweepChecker

        return BddSweepChecker(**kwargs)
    raise ValueError(f"unknown engine spec {kind!r}")


def _engine_worker(spec: EngineSpec, miter: Aig, queue: "mp.Queue") -> None:
    """Run one engine in a child process and post its result."""
    try:
        checker = build_checker(spec)
        result = checker.check_miter(miter)
        queue.put(
            (
                spec[0],
                result.status.value,
                result.cex,
                result.reduced_miter,
            )
        )
    except Exception as error:  # surface crashes as a verdict
        queue.put((spec[0], "error", repr(error), None))


class ParallelPortfolioChecker:
    """Race engines in separate processes; first conclusive answer wins.

    Parameters
    ----------
    engines:
        Engine specs (see module docstring); defaults to one checker per
        prover family.
    time_limit:
        Overall wall-clock budget; on expiry all engines are terminated
        and the best residue seen so far (if any) is returned UNDECIDED.
    """

    def __init__(
        self,
        engines: Optional[Sequence[EngineSpec]] = None,
        time_limit: Optional[float] = None,
    ) -> None:
        self.engines = list(engines) if engines is not None else list(
            DEFAULT_ENGINES
        )
        if not self.engines:
            raise ValueError("need at least one engine spec")
        self.time_limit = time_limit
        #: Engine that produced the winning verdict in the last run.
        self.winner: Optional[str] = None

    def check(self, aig_a: Aig, aig_b: Aig) -> CecResult:
        """Check two networks for equivalence (builds the miter)."""
        return self.check_miter(build_miter(aig_a, aig_b))

    def check_miter(self, miter: Aig) -> CecResult:
        """Race the configured engines on a miter."""
        context = mp.get_context("fork")
        queue: mp.Queue = context.Queue()
        processes = [
            context.Process(
                target=_engine_worker, args=(spec, miter, queue), daemon=True
            )
            for spec in self.engines
        ]
        for process in processes:
            process.start()
        deadline = (
            time.monotonic() + self.time_limit
            if self.time_limit is not None
            else None
        )
        best_residue: Optional[Aig] = None
        pending = len(processes)
        try:
            while pending > 0:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                    if timeout == 0.0:
                        break
                try:
                    name, status, cex, residue = queue.get(timeout=timeout)
                except Exception:  # queue.Empty on timeout
                    break
                pending -= 1
                if status == "equivalent":
                    self.winner = name
                    return CecResult(CecStatus.EQUIVALENT)
                if status == "nonequivalent":
                    self.winner = name
                    return CecResult(CecStatus.NONEQUIVALENT, cex=cex)
                if status == "undecided" and residue is not None:
                    if (
                        best_residue is None
                        or residue.num_ands < best_residue.num_ands
                    ):
                        best_residue = residue
            self.winner = None
            return CecResult(
                CecStatus.UNDECIDED,
                reduced_miter=best_residue if best_residue is not None else miter,
            )
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=1.0)
