"""Parallel exhaustive simulation (Algorithm 1 of the paper).

Given a batch of candidate pairs and their windows, the simulator compares
the *entire* truth tables of each pair over the window's input set.  The
computation is memory-bounded and multi-round: every window slot gets an
entry of ``E = 2^e`` words, with ``E`` chosen on the fly as the largest
power of two such that the whole simulation table fits in the provided
budget (Algorithm 1 line 2); round ``r`` simulates truth-table words
``[rE, (r+1)E)`` and windows whose tables are exhausted drop out of later
rounds (line 6).

The paper's three dimensions of parallelism map onto NumPy as follows:

1. *words of one truth table* — axis 1 of the simulation table; every
   bitwise op processes all ``E`` words of a node at once;
2. *nodes of one level* — all window-local levels are batched across the
   entire active set, so one gather/AND/scatter evaluates every node of a
   level in every active window;
3. *multiple windows* — windows are flattened into a single simulation
   table, exactly the ``simt`` of Algorithm 1.

Semantics note: a MISMATCH outcome is a hard disproof only when the window
inputs are the nodes' supports (global checking).  For local-function
windows a mismatch is *inconclusive* — the differing patterns may be
satisfiability don't-cares — and the engine treats it as such.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.aig.network import Aig
from repro.obs import get_tracer
from repro.simulation.bitops import (
    FULL_WORD,
    first_set_bit,
    num_tt_words,
    pattern_of_index,
    projection_segment,
)
from repro.simulation.cex import CounterExample
from repro.simulation.window import Pair, Window, window_local_levels


class PairStatus(enum.Enum):
    """Result of exhaustively comparing one candidate pair."""

    #: The two truth tables agree on every pattern.
    EQUAL = "equal"

    #: A pattern with differing values was found.
    MISMATCH = "mismatch"


@dataclass
class PairOutcome:
    """Outcome of one pair, with the distinguishing pattern if requested.

    ``window`` is the window the pair was checked in — callers that key
    knowledge by cut content (the functional-knowledge cache) need the
    exact input set the comparison ranged over.
    """

    pair: Pair
    status: PairStatus
    cex: Optional[CounterExample] = None
    window: Optional[Window] = None


@dataclass
class SimulatorStats:
    """Bookkeeping for reports and the window-merging ablation."""

    batches: int = 0
    windows: int = 0
    pairs: int = 0
    slots: int = 0
    rounds: int = 0
    words_simulated: int = 0
    #: Largest simulation table allocated so far, in 64-bit words.
    #: Always ≤ ``memory_budget_words`` — the Algorithm 1 invariant.
    peak_table_words: int = 0
    #: Windows dropped because they alone exceed the memory budget
    #: (only with ``skip_oversized=True``).
    skipped_windows: int = 0


class ExhaustiveSimulator:
    """Memory-bounded multi-round exhaustive simulator.

    Parameters
    ----------
    memory_budget_words:
        Size of the simulation table in 64-bit words (the ``M`` of
        Algorithm 1).  The default of ``2**22`` words is 32 MiB.
    """

    def __init__(self, memory_budget_words: int = 1 << 22) -> None:
        if memory_budget_words < 1:
            raise ValueError("memory budget must be positive")
        self.memory_budget_words = memory_budget_words
        self.stats = SimulatorStats()

    def run(
        self,
        aig: Aig,
        windows: Sequence[Window],
        collect_cex: bool = True,
        skip_oversized: bool = False,
    ) -> List[PairOutcome]:
        """Check all pairs of all windows; returns one outcome per pair.

        Batches whose slot count alone would overflow the memory budget
        are split into sub-batches, so the simulation table never
        exceeds ``memory_budget_words`` (Algorithm 1's ``M``).  A single
        window too large for the budget raises ``ValueError`` — or, with
        ``skip_oversized``, is dropped without an outcome (its pairs
        simply stay unproved, the sound answer when the bound ``M``
        makes a window uncheckable).
        """
        windows = [w for w in windows if w.pairs]
        if skip_oversized:
            kept = [w for w in windows if self.window_fits(w)]
            self.stats.skipped_windows += len(windows) - len(kept)
            windows = kept
        if not windows:
            return []
        windows = sorted(windows, key=lambda w: w.tt_words, reverse=True)
        outcomes: List[PairOutcome] = []
        tracer = get_tracer()
        with tracer.span(
            "sim.exhaustive.run",
            category="sim",
            windows=len(windows),
            pairs=sum(len(w.pairs) for w in windows) if tracer.enabled else 0,
        ):
            for chunk in self._partition(windows):
                outcomes.extend(self._run_chunk(aig, chunk, collect_cex))
        return outcomes

    def window_fits(self, window: Window) -> bool:
        """Whether one window's slots fit the memory budget on their own."""
        need = 1 + len(window.inputs) + len(window.nodes)
        return need <= self.memory_budget_words

    def _partition(self, windows: Sequence[Window]) -> List[List[Window]]:
        """Split windows into sub-batches whose slots fit the budget.

        Even at the minimum entry size of one word per slot, a batch
        needs one word per input/node slot plus the shared constant
        slot; greedily packing windows under that bound preserves the
        descending ``tt_words`` order the round logic relies on.
        """
        budget = self.memory_budget_words
        chunks: List[List[Window]] = []
        current: List[Window] = []
        slots = 1  # shared constant-zero slot
        for window in windows:
            need = len(window.inputs) + len(window.nodes)
            if 1 + need > budget:
                raise ValueError(
                    f"window needs {1 + need} simulation slots but the "
                    f"memory budget is {budget} words; raise "
                    f"memory_budget_words"
                )
            if current and slots + need > budget:
                chunks.append(current)
                current = []
                slots = 1
            current.append(window)
            slots += need
        if current:
            chunks.append(current)
        return chunks

    def _run_chunk(
        self,
        aig: Aig,
        windows: List[Window],
        collect_cex: bool,
    ) -> List[PairOutcome]:
        """Simulate one budget-respecting batch of windows."""
        batch = _FlatBatch(aig, windows)
        max_tt = windows[0].tt_words
        entry = self._entry_size(batch.num_slots, max_tt)
        rounds = max(1, max_tt // entry)

        self.stats.batches += 1
        self.stats.windows += len(windows)
        self.stats.pairs += batch.num_pairs
        self.stats.slots += batch.num_slots

        simt = np.zeros((batch.num_slots, entry), dtype=np.uint64)
        self.stats.peak_table_words = max(
            self.stats.peak_table_words, simt.size
        )
        outcomes: List[Optional[PairOutcome]] = [None] * batch.num_pairs
        unresolved = np.ones(batch.num_pairs, dtype=bool)

        chunk_words = 0
        for r in range(rounds):
            active = batch.active_window_count(r, entry)
            if active == 0:
                break
            plan = batch.plan(active)
            self._fill_inputs(simt, plan, r * entry, entry)
            self._simulate_levels(simt, plan)
            self.stats.rounds += 1
            self.stats.words_simulated += plan.num_and_slots * entry
            chunk_words += plan.num_and_slots * entry
            self._compare_pairs(
                simt, batch, active, r, entry, unresolved, outcomes, collect_cex
            )
        metrics = get_tracer().metrics
        metrics.counter_add("sim.words_simulated", chunk_words)
        # Every AND evaluation gathers two fanin rows and scatters one
        # result row of `entry` 64-bit words: 24 bytes moved per word.
        metrics.counter_add("sim.gather_scatter_bytes", chunk_words * 24)
        metrics.counter_add("sim.batches")
        for i in np.nonzero(unresolved)[0]:
            outcomes[i] = PairOutcome(
                batch.pairs[i],
                PairStatus.EQUAL,
                window=batch.windows[batch.pair_window[i]],
            )
        return [o for o in outcomes if o is not None]

    # ------------------------------------------------------------------

    def _entry_size(self, num_slots: int, max_tt: int) -> int:
        entry = 1
        while entry * 2 * num_slots <= self.memory_budget_words:
            entry *= 2
        return min(entry, max_tt)

    @staticmethod
    def _fill_inputs(
        simt: np.ndarray, plan: "_Plan", word_start: int, entry: int
    ) -> None:
        for position, slots in plan.input_groups.items():
            segment = projection_segment(position, word_start, entry)
            simt[slots] = segment[None, :]

    @staticmethod
    def _simulate_levels(simt: np.ndarray, plan: "_Plan") -> None:
        for tgt, s0, m0, s1, m1 in plan.levels:
            simt[tgt] = (simt[s0] ^ m0) & (simt[s1] ^ m1)

    def _compare_pairs(
        self,
        simt: np.ndarray,
        batch: "_FlatBatch",
        active_windows: int,
        round_index: int,
        entry: int,
        unresolved: np.ndarray,
        outcomes: List[Optional[PairOutcome]],
        collect_cex: bool,
    ) -> None:
        candidates = np.nonzero(
            unresolved & (batch.pair_window < active_windows)
        )[0]
        if candidates.size == 0:
            return
        diff = simt[batch.pair_slot_a[candidates]] ^ simt[
            batch.pair_slot_b[candidates]
        ]
        flip = batch.pair_flip[candidates]
        diff[flip] ^= FULL_WORD
        has_mismatch = diff.any(axis=1)
        for local_idx in np.nonzero(has_mismatch)[0]:
            pair_idx = int(candidates[local_idx])
            unresolved[pair_idx] = False
            window = batch.windows[batch.pair_window[pair_idx]]
            cex = None
            if collect_cex:
                word_idx, bit = first_set_bit(diff[local_idx])
                pattern = pattern_of_index(
                    round_index * entry + word_idx, bit, window.num_inputs
                )
                cex = CounterExample(window.inputs, tuple(pattern))
            outcomes[pair_idx] = PairOutcome(
                batch.pairs[pair_idx], PairStatus.MISMATCH, cex, window=window
            )
        # Pairs whose window finished all its rounds without mismatch are
        # proved equal; resolve them so later rounds skip the comparison.
        finished = candidates[
            batch.window_rounds[batch.pair_window[candidates]]
            == round_index + 1
        ]
        for pair_idx in finished:
            if unresolved[pair_idx]:
                unresolved[pair_idx] = False
                outcomes[pair_idx] = PairOutcome(
                    batch.pairs[pair_idx],
                    PairStatus.EQUAL,
                    window=batch.windows[batch.pair_window[pair_idx]],
                )


@dataclass
class _Plan:
    """Vectorised evaluation plan for a prefix of the window batch."""

    input_groups: Dict[int, np.ndarray]
    levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
    num_and_slots: int


class _FlatBatch:
    """Slot layout and pair indexing for a batch of windows.

    Slot 0 is a shared constant-zero entry (never written).  Windows are
    laid out contiguously in decreasing ``tt_words`` order so that the
    active set of any round is a prefix, and evaluation plans can be
    cached per prefix length.
    """

    def __init__(self, aig: Aig, windows: Sequence[Window]) -> None:
        self.aig = aig
        self.windows = list(windows)
        self.pairs: List[Pair] = []
        self._plan_cache: Dict[int, _Plan] = {}

        slot = 1  # slot 0 = constant zero
        self._input_slots: List[Dict[int, int]] = []
        self._node_slots: List[Dict[int, int]] = []
        pair_window: List[int] = []
        pair_slot_a: List[int] = []
        pair_slot_b: List[int] = []
        pair_flip: List[bool] = []
        for w_idx, window in enumerate(self.windows):
            in_slots = {node: slot + i for i, node in enumerate(window.inputs)}
            slot += len(window.inputs)
            nd_slots = {
                int(node): slot + i for i, node in enumerate(window.nodes)
            }
            slot += len(window.nodes)
            self._input_slots.append(in_slots)
            self._node_slots.append(nd_slots)
            for pair in window.pairs:
                pair_window.append(w_idx)
                pair_slot_a.append(self._slot_of(w_idx, pair.lit_a >> 1))
                pair_slot_b.append(self._slot_of(w_idx, pair.lit_b >> 1))
                pair_flip.append(bool((pair.lit_a ^ pair.lit_b) & 1))
                self.pairs.append(pair)
        self.num_slots = slot
        self.num_pairs = len(self.pairs)
        self.pair_window = np.asarray(pair_window, dtype=np.int64)
        self.pair_slot_a = np.asarray(pair_slot_a, dtype=np.int64)
        self.pair_slot_b = np.asarray(pair_slot_b, dtype=np.int64)
        self.pair_flip = np.asarray(pair_flip, dtype=bool)
        self.window_tt = np.asarray(
            [w.tt_words for w in self.windows], dtype=np.int64
        )
        self.window_rounds = np.ones(len(self.windows), dtype=np.int64)

    def active_window_count(self, round_index: int, entry: int) -> int:
        """Number of leading windows still needing simulation in a round."""
        if round_index == 0:
            self.window_rounds = np.maximum(1, self.window_tt // entry)
        return int(np.count_nonzero(self.window_tt > round_index * entry))

    def plan(self, active: int) -> _Plan:
        """Build (or fetch) the evaluation plan for the first ``active`` windows."""
        cached = self._plan_cache.get(active)
        if cached is not None:
            return cached
        input_groups: Dict[int, List[int]] = {}
        per_level: Dict[int, List[Tuple[int, int, int, int, int]]] = {}
        num_and_slots = 0
        for w_idx in range(active):
            window = self.windows[w_idx]
            for position, node in enumerate(window.inputs):
                input_groups.setdefault(position, []).append(
                    self._input_slots[w_idx][node]
                )
            levels = window_local_levels(self.aig, window)
            num_and_slots += len(window.nodes)
            f0l, f1l = self.aig.fanin_lists()
            for node, level in zip(window.nodes.tolist(), levels.tolist()):
                f0 = f0l[node]
                f1 = f1l[node]
                per_level.setdefault(level, []).append(
                    (
                        self._node_slots[w_idx][node],
                        self._slot_of(w_idx, f0 >> 1),
                        f0 & 1,
                        self._slot_of(w_idx, f1 >> 1),
                        f1 & 1,
                    )
                )
        levels_arrays = []
        for level in sorted(per_level):
            entries = per_level[level]
            tgt = np.asarray([e[0] for e in entries], dtype=np.int64)
            s0 = np.asarray([e[1] for e in entries], dtype=np.int64)
            m0 = (
                np.asarray([e[2] for e in entries], dtype=np.uint64) * FULL_WORD
            )[:, None]
            s1 = np.asarray([e[3] for e in entries], dtype=np.int64)
            m1 = (
                np.asarray([e[4] for e in entries], dtype=np.uint64) * FULL_WORD
            )[:, None]
            levels_arrays.append((tgt, s0, m0, s1, m1))
        plan = _Plan(
            input_groups={
                pos: np.asarray(slots, dtype=np.int64)
                for pos, slots in input_groups.items()
            },
            levels=levels_arrays,
            num_and_slots=num_and_slots,
        )
        self._plan_cache[active] = plan
        return plan

    def _slot_of(self, w_idx: int, var: int) -> int:
        if var == 0:
            return 0
        slot = self._input_slots[w_idx].get(var)
        if slot is None:
            slot = self._node_slots[w_idx].get(var)
        if slot is None:
            raise ValueError(
                f"literal node {var} is neither an input nor a member of window {w_idx}"
            )
        return slot
