"""Truth-table word primitives.

Truth tables are stored as arrays of 64-bit words; bit ``i`` of a table is
the function value under the input assignment whose binary encoding is
``i`` (input 0 is the least significant position, as defined in §II-A of
the paper).  The *projection truth table* of input ``i`` is the table of
the projection function ``f(x0..xk-1) = xi``:

- inputs 0..5 live *inside* a word and have fixed periodic patterns;
- input ``i >= 6`` selects whole words: word ``w`` of its table is all
  ones iff bit ``i - 6`` of ``w`` is set.

These two facts let the exhaustive simulator generate any segment of any
projection table in O(words) without materialising full tables.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Number of pattern bits per simulation word.
WORD_BITS = 64

#: All-ones 64-bit word.
FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

#: In-word projection patterns for inputs 0..5.
_PROJ_WORDS = np.array(
    [
        0xAAAAAAAAAAAAAAAA,
        0xCCCCCCCCCCCCCCCC,
        0xF0F0F0F0F0F0F0F0,
        0xFF00FF00FF00FF00,
        0xFFFF0000FFFF0000,
        0xFFFFFFFF00000000,
    ],
    dtype=np.uint64,
)


def num_tt_words(num_inputs: int) -> int:
    """Number of 64-bit words in the truth table of a k-input function.

    Functions of fewer than 6 inputs still occupy one word (the pattern
    space repeats within the word, which keeps comparisons sound — every
    bit position always corresponds to a well-defined input assignment).
    """
    if num_inputs < 0:
        raise ValueError("num_inputs must be non-negative")
    return 1 if num_inputs <= 6 else 1 << (num_inputs - 6)


def projection_segment(
    input_position: int, word_start: int, num_words: int
) -> np.ndarray:
    """Words ``[word_start, word_start + num_words)`` of a projection table.

    ``input_position`` is the position of the input within the window's
    ordered input list.  The segment semantics continue past the nominal
    table length, repeating assignments, so callers never need to mask.
    """
    if input_position < 6:
        return np.full(num_words, _PROJ_WORDS[input_position], dtype=np.uint64)
    shift = input_position - 6
    words = np.arange(word_start, word_start + num_words, dtype=np.uint64)
    selected = (words >> np.uint64(shift)) & np.uint64(1)
    return selected * FULL_WORD


def pattern_of_index(
    global_word: int, bit: int, num_inputs: int
) -> List[int]:
    """Decode a (word, bit) position into an input assignment.

    Inverse of the projection-table encoding: input ``i < 6`` takes bit
    ``i`` of ``bit``; input ``i >= 6`` takes bit ``i - 6`` of
    ``global_word``.  Used to turn a mismatching truth-table position into
    a counter-example pattern.
    """
    if not 0 <= bit < WORD_BITS:
        raise ValueError("bit must be in [0, 64)")
    pattern = []
    for i in range(num_inputs):
        if i < 6:
            pattern.append((bit >> i) & 1)
        else:
            pattern.append((global_word >> (i - 6)) & 1)
    return pattern


def random_words(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """A ``rows x cols`` matrix of uniformly random 64-bit words."""
    return rng.integers(0, 1 << 64, size=(rows, cols), dtype=np.uint64)


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits in an array of 64-bit words."""
    return int(np.unpackbits(words.view(np.uint8)).sum())


def first_set_bit(words: np.ndarray) -> tuple:
    """Return ``(word_index, bit_index)`` of the first set bit.

    Raises ``ValueError`` when no bit is set.
    """
    nonzero = np.nonzero(words)[0]
    if nonzero.size == 0:
        raise ValueError("no set bit")
    word_index = int(nonzero[0])
    word = int(words[word_index])
    bit_index = (word & -word).bit_length() - 1
    return word_index, bit_index
