"""Whole-network partial simulation.

The partial simulator evaluates every node of the miter under a batch of
patterns packed 64 per word.  It is used twice by the sweeping engine
(§III-A): with random patterns to *initialise* equivalence classes, and
with counter-example patterns to *split* the class of a disproved pair.

The kernel is level-wise parallel: nodes are grouped by level and each
group is evaluated with one vectorised gather/AND/scatter — the NumPy
rendering of the paper's GPU kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aig.network import Aig
from repro.aig.traversal import level_batches
from repro.simulation.bitops import FULL_WORD, WORD_BITS


def simulate_words(aig: Aig, pi_words: np.ndarray) -> np.ndarray:
    """Simulate the whole network on word-packed input patterns.

    Parameters
    ----------
    aig:
        The network to simulate.
    pi_words:
        ``(num_pis, W)`` array of uint64 words; bit ``b`` of word ``w`` of
        row ``i`` is the value of PI ``i+1`` under pattern ``64*w + b``.

    Returns
    -------
    numpy.ndarray
        ``(num_nodes, W)`` array with one simulation row per node
        (constant node row is zero; rows are *non-inverted* node values,
        literal phases are applied by callers).
    """
    pi_words = np.asarray(pi_words, dtype=np.uint64)
    if pi_words.ndim != 2 or pi_words.shape[0] != aig.num_pis:
        raise ValueError(
            f"pi_words must be (num_pis={aig.num_pis}, W); got {pi_words.shape}"
        )
    width = pi_words.shape[1]
    tables = np.zeros((aig.num_nodes, width), dtype=np.uint64)
    if aig.num_pis:
        tables[1 : aig.num_pis + 1] = pi_words
    f0s, f1s = aig.fanin_literals()
    base = aig.first_and
    for batch in level_batches(aig, np.arange(base, aig.num_nodes)):
        idx = batch - base
        f0 = f0s[idx]
        f1 = f1s[idx]
        mask0 = ((f0 & 1).astype(np.uint64) * FULL_WORD)[:, None]
        mask1 = ((f1 & 1).astype(np.uint64) * FULL_WORD)[:, None]
        tables[batch] = (tables[f0 >> 1] ^ mask0) & (tables[f1 >> 1] ^ mask1)
    return tables


def pack_patterns(patterns: Sequence[Sequence[int]], num_pis: int) -> np.ndarray:
    """Pack explicit 0/1 patterns into the word layout of the simulator.

    ``patterns`` is a sequence of assignments, each with one value per PI.
    Returns a ``(num_pis, ceil(P/64))`` uint64 array.  The tail of the
    last word repeats the final pattern so no spurious all-zero pattern is
    introduced.
    """
    count = len(patterns)
    if count == 0:
        return np.zeros((num_pis, 0), dtype=np.uint64)
    width = (count + WORD_BITS - 1) // WORD_BITS
    bit_matrix = np.zeros((num_pis, width * WORD_BITS), dtype=np.uint8)
    for p, pattern in enumerate(patterns):
        if len(pattern) != num_pis:
            raise ValueError(
                f"pattern {p} has {len(pattern)} values, expected {num_pis}"
            )
        for i, value in enumerate(pattern):
            bit_matrix[i, p] = 1 if value else 0
    if count < width * WORD_BITS:
        last = bit_matrix[:, count - 1]
        bit_matrix[:, count:] = last[:, None]
    words = np.zeros((num_pis, width), dtype=np.uint64)
    for w in range(width):
        chunk = bit_matrix[:, w * WORD_BITS : (w + 1) * WORD_BITS]
        weights = np.uint64(1) << np.arange(WORD_BITS, dtype=np.uint64)
        words[:, w] = (chunk.astype(np.uint64) * weights[None, :]).sum(axis=1)
    return words


def po_words(aig: Aig, tables: np.ndarray) -> np.ndarray:
    """Extract PO simulation rows (phases applied) from node tables."""
    if not aig.pos:
        return np.zeros((0, tables.shape[1]), dtype=np.uint64)
    literals = np.asarray(aig.pos, dtype=np.int64)
    masks = ((literals & 1).astype(np.uint64) * FULL_WORD)[:, None]
    return tables[literals >> 1] ^ masks
