"""Simulation windows.

A *window* (§III-B1) is the set of nodes that must be simulated to obtain
the truth tables of one or more *root* nodes in terms of a common ordered
*input* set: formally the intersection of the TFIs of the roots with the
TFOs of the inputs, plus the roots themselves.  For global function
checking the inputs are the union of the roots' structural supports; for
local function checking they are a common cut of the pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.aig.network import Aig
from repro.simulation.bitops import num_tt_words


@dataclass(frozen=True)
class Pair:
    """A candidate pair of literals to compare within a window.

    ``tag`` is an opaque caller-side identifier (e.g. the non-representative
    node id, or a PO index) carried through to the outcome.
    """

    lit_a: int
    lit_b: int
    tag: int = -1


@dataclass(eq=False)
class Window:
    """A simulation window over a fixed ordered input set.

    Attributes
    ----------
    inputs:
        Window input node ids, sorted in increasing id order (§III-B1:
        truth-table variable order is the order of increasing node ids).
    nodes:
        AND node ids inside the window, in topological (increasing id)
        order; includes the roots, excludes the inputs.
    pairs:
        Candidate pairs whose truth tables this window resolves.  Pair
        literals must refer to window inputs, window nodes, or the
        constant node.
    """

    inputs: Tuple[int, ...]
    nodes: np.ndarray
    pairs: List[Pair] = field(default_factory=list)

    @property
    def num_inputs(self) -> int:
        """Number of window inputs (truth-table variables)."""
        return len(self.inputs)

    @property
    def tt_words(self) -> int:
        """Length of the roots' truth tables in 64-bit words."""
        return num_tt_words(self.num_inputs)

    @property
    def size(self) -> int:
        """Number of slots the window occupies in the simulation table."""
        return len(self.inputs) + len(self.nodes)


def build_window(
    aig: Aig,
    inputs: Sequence[int],
    roots: Sequence[int],
    pairs: Sequence[Pair] = (),
) -> Window:
    """Construct the window of ``roots`` over the given ``inputs``.

    Performs a backward DFS from the roots that stops at the inputs; the
    visited AND nodes form the window.  Raises ``ValueError`` if some path
    escapes the inputs to a PI outside them — that means ``inputs`` is not
    a valid common cut / support set for the roots.
    """
    input_set = set(inputs)
    seen = set()
    f0l, f1l = aig.fanin_lists()
    num_pis = aig.num_pis
    stack = [r for r in roots if r not in input_set]
    while stack:
        node = stack.pop()
        if node in seen or node in input_set:
            continue
        if node <= num_pis:
            if node == 0:
                continue
            raise ValueError(
                f"window inputs {sorted(input_set)} do not cover PI {node}"
            )
        seen.add(node)
        for fanin_var in (f0l[node] >> 1, f1l[node] >> 1):
            if fanin_var not in seen and fanin_var not in input_set:
                stack.append(fanin_var)
    return Window(
        inputs=tuple(sorted(input_set)),
        nodes=np.array(sorted(seen), dtype=np.int64),
        pairs=list(pairs),
    )


def build_pair_window(
    aig: Aig,
    inputs: Sequence[int],
    lit_a: int,
    lit_b: int,
    phase_or_tag: int = -1,
) -> Window:
    """Window resolving one candidate pair over ``inputs``.

    Convenience wrapper shared by the global phase and the scheduler's
    exhaustive-simulation lane: the roots are the pair's nodes minus the
    constant and anything already among the inputs, and the single
    :class:`Pair` is tagged with ``phase_or_tag`` (callers usually pass
    the non-representative node id).
    """
    input_set = set(inputs)
    roots = [
        x for x in (lit_a >> 1, lit_b >> 1) if x != 0 and x not in input_set
    ]
    return build_window(
        aig, inputs, roots, pairs=[Pair(lit_a, lit_b, tag=phase_or_tag)]
    )


def window_local_levels(aig: Aig, window: Window) -> np.ndarray:
    """Topological levels of the window nodes, inputs at level zero.

    This is the *topological level* of §III-B2: it differs from the global
    node level in that window inputs are pinned to level 0 regardless of
    their depth in the full network.
    """
    level_of: Dict[int, int] = {n: 0 for n in window.inputs}
    level_of[0] = 0
    f0l, f1l = aig.fanin_lists()
    levels = np.zeros(len(window.nodes), dtype=np.int64)
    for i, node in enumerate(window.nodes.tolist()):
        l0 = level_of[f0l[node] >> 1]
        l1 = level_of[f1l[node] >> 1]
        lvl = (l0 if l0 >= l1 else l1) + 1
        level_of[node] = lvl
        levels[i] = lvl
    return levels
