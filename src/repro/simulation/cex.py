"""Counter-example representation.

A counter-example produced by exhaustive simulation is an assignment to a
window's inputs that yields different values at the two nodes of a pair.
When the window inputs are PIs (global function checking) the CEX can be
expanded to a full primary-input pattern and replayed through the partial
simulator to refine equivalence classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CounterExample:
    """An input assignment that distinguishes a candidate pair.

    Attributes
    ----------
    inputs:
        The window input node ids the pattern refers to.
    pattern:
        One 0/1 value per entry of ``inputs``.
    """

    inputs: Tuple[int, ...]
    pattern: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.pattern):
            raise ValueError("inputs and pattern must have the same length")

    def to_pi_pattern(self, num_pis: int, default: int = 0) -> List[int]:
        """Expand to a full PI assignment (unconstrained PIs get ``default``).

        Requires every input to be a PI node id (1-based); global-function
        windows satisfy this by construction.
        """
        full = [default] * num_pis
        for node, value in zip(self.inputs, self.pattern):
            if not 1 <= node <= num_pis:
                raise ValueError(
                    f"window input {node} is not a PI; cannot expand CEX"
                )
            full[node - 1] = value
        return full
