"""Word-parallel simulation kernels.

This subpackage is the NumPy substitute for the paper's CUDA kernels (see
DESIGN.md §2).  It contains:

- :mod:`repro.simulation.bitops` — 64-bit truth-table word primitives and
  projection truth tables;
- :mod:`repro.simulation.partial` — whole-network partial simulation of
  random / counter-example patterns (initialises and refines equivalence
  classes);
- :mod:`repro.simulation.window` — simulation windows (TFI of the roots
  intersected with the TFO of the inputs);
- :mod:`repro.simulation.merging` — the window-merging heuristic of
  §III-B3;
- :mod:`repro.simulation.exhaustive` — Algorithm 1, the multi-round
  memory-bounded exhaustive simulator;
- :mod:`repro.simulation.cex` — counter-example representation and
  expansion to full PI patterns.
"""

from repro.simulation.bitops import (
    WORD_BITS,
    num_tt_words,
    pattern_of_index,
    projection_segment,
    random_words,
)
from repro.simulation.partial import pack_patterns, simulate_words
from repro.simulation.window import Window, build_window
from repro.simulation.merging import merge_windows
from repro.simulation.exhaustive import (
    ExhaustiveSimulator,
    PairOutcome,
    PairStatus,
)
from repro.simulation.cex import CounterExample

__all__ = [
    "WORD_BITS",
    "CounterExample",
    "ExhaustiveSimulator",
    "PairOutcome",
    "PairStatus",
    "Window",
    "build_window",
    "merge_windows",
    "num_tt_words",
    "pack_patterns",
    "pattern_of_index",
    "projection_segment",
    "random_words",
    "simulate_words",
]
