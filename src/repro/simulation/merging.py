"""Window merging (§III-B3).

Windows with similar input sets are merged so shared logic is simulated
once instead of once per window.  The heuristic is exactly the paper's:
sort the batch of windows lexicographically by their (id-ordered) input
tuples — windows with similar inputs end up adjacent — then greedily merge
maximal runs of consecutive windows while the merged input set stays
within the support threshold ``k_s``.

Merging grows truth tables (more inputs → exponentially more patterns),
which is why it is only enabled for global function checking, where the
threshold already bounds the supports; local-function windows are small
and would not benefit.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.aig.network import Aig
from repro.simulation.window import Window, build_window


def merge_windows(
    aig: Aig, windows: Sequence[Window], k_s: int
) -> List[Window]:
    """Merge consecutive similar windows under the support threshold.

    Returns a new list of windows covering exactly the same pairs.  Each
    output window's input count is at most ``k_s`` (input windows already
    above the threshold are passed through unchanged).
    """
    if not windows:
        return []
    ordered = sorted(windows, key=lambda w: w.inputs)
    merged: List[Window] = []
    group: List[Window] = [ordered[0]]
    group_inputs = set(ordered[0].inputs)
    for window in ordered[1:]:
        candidate = group_inputs | set(window.inputs)
        if len(candidate) <= k_s:
            group.append(window)
            group_inputs = candidate
        else:
            merged.append(_merge_group(aig, group, group_inputs))
            group = [window]
            group_inputs = set(window.inputs)
    merged.append(_merge_group(aig, group, group_inputs))
    return merged


def total_simulation_slots(windows: Sequence[Window]) -> int:
    """Total number of simulation-table slots a batch would occupy.

    This is the quantity window merging tries to reduce (the ``N`` of
    Algorithm 1); exposed for the merging ablation benchmark.
    """
    return sum(w.size for w in windows)


def _merge_group(aig: Aig, group: List[Window], inputs: set) -> Window:
    if len(group) == 1:
        return group[0]
    pairs = [p for w in group for p in w.pairs]
    roots = set()
    for window in group:
        for pair in window.pairs:
            roots.add(pair.lit_a >> 1)
            roots.add(pair.lit_b >> 1)
    roots.discard(0)
    return build_window(aig, sorted(inputs), sorted(roots), pairs)
