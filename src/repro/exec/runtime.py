"""The parent side of the job runtime: registry, spawn, stop, absorb.

:class:`ExecRuntime` owns everything both pools used to duplicate:

- resolution of the multiprocessing start method and the shared-memory
  plane (:func:`resolve_start_method`, :func:`resolve_use_shm`);
- the run's :class:`~repro.shm.SegmentRegistry` (parent = reaper) and
  the orphan sweep that precedes it;
- worker spawn in one-shot or loop mode, each with a
  :class:`~repro.exec.cancel.CancelToken`, staged SIGTERM → SIGKILL
  stops (:func:`stop_process_staged`), and warm respawn;
- the result queue with bounded polling, reference resolution
  (:func:`~repro.exec.transport.unpack_message`), worker-trace
  re-basing, per-worker flight rings, and the late-message /
  spill-file drain;
- leak-free teardown: registry reap, queue close, spill-dir removal.

Policies hold :class:`WorkerHandle` records (or subclasses carrying
their own bookkeeping) and decide *what* to spawn and *when* to stop
it; the runtime is the only code that touches processes, queues and
segments.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs import FlightRecorder, get_tracer
from repro.shm import (
    SegmentDescriptor,
    SegmentRegistry,
    aig_shm_arrays,
    reap_orphans,
    shm_available,
)
from repro.sweep.classes import SharedPool

from repro.exec.cancel import CancelGroup, CancelToken
from repro.exec.transport import (
    collect_spilled_messages,
    stamp_pool,
    unpack_message,
)
from repro.exec.worker import exec_worker_main

#: Environment variable overriding the multiprocessing start method
#: (used by CI to run the suite under ``spawn``).
START_METHOD_ENV = "REPRO_MP_START_METHOD"

#: Environment variable disabling the shared-memory data plane
#: (``REPRO_SHM=0`` forces the legacy pickled-queue payload path).
SHM_ENV = "REPRO_SHM"


def resolve_use_shm(requested: Optional[bool] = None) -> bool:
    """Decide whether a run uses the shared-memory data plane.

    Resolution order: explicit ``requested`` argument, then the
    ``REPRO_SHM`` environment variable (``0``/``false``/``off``/``no``
    disables), then on-by-default.  Either way the plane is only used
    when the platform actually offers POSIX shared memory.
    """
    if requested is not None:
        return bool(requested) and shm_available()
    flag = os.environ.get(SHM_ENV, "").strip().lower()
    if flag in ("0", "false", "off", "no"):
        return False
    return shm_available()


def resolve_start_method(requested: Optional[str] = None) -> str:
    """Pick the multiprocessing start method for a pool.

    Resolution order: explicit ``requested`` argument, then the
    ``REPRO_MP_START_METHOD`` environment variable, then a per-platform
    default — ``spawn`` on platforms where ``fork`` is unsafe or absent
    (macOS, Windows), the interpreter's default elsewhere.  ``fork`` is
    therefore never forced: it remains an opt-in.
    """
    if requested is not None:
        method = requested
    else:
        method = os.environ.get(START_METHOD_ENV) or ""
        if not method:
            if sys.platform in ("win32", "darwin"):
                method = "spawn"
            else:
                method = mp.get_start_method()
    if method not in mp.get_all_start_methods():
        raise ValueError(
            f"start method {method!r} is not available on this platform "
            f"(choices: {mp.get_all_start_methods()})"
        )
    return method


def stop_process_staged(
    process: "mp.process.BaseProcess", grace: float, engine: str = ""
) -> None:
    """Staged termination: SIGTERM, join grace, then SIGKILL.

    The one stop path for every orchestrator — the portfolio racer, the
    serve daemon's worker reaper and the cube fan-out all funnel through
    here, so the escalation policy (and its ``portfolio.terminate``
    span) stays uniform.
    """
    if process is None or not process.is_alive():
        return
    with get_tracer().span(
        "portfolio.terminate", category="portfolio", engine=engine
    ) as span:
        process.terminate()
        process.join(grace)
        if process.is_alive():
            span.set("escalated", "SIGKILL")
            process.kill()
            process.join(grace)


@dataclass
class WorkerHandle:
    """Parent-side bookkeeping for one worker process.

    Policies subclass this with their own fields (engine record, budget,
    assignment list, …); the runtime only reads/writes the ones below.
    """

    index: int
    name: str = ""
    process: Optional["mp.process.BaseProcess"] = None
    #: Loop-mode job inbox (``None`` for one-shot workers).
    inbox: Optional["mp.Queue"] = None
    token: Optional[CancelToken] = None
    spill_path: Optional[str] = None
    mode: str = "oneshot"
    #: Monotonic spawn time.
    started: float = 0.0
    jobs_done: int = 0
    respawns: int = 0
    #: Job ids queued on this worker, oldest first (the head is the one
    #: the worker is executing) — loop-mode policies only.
    assigned: List[int] = field(default_factory=list)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class ExecRuntime:
    """One run's (or one daemon's) process/segment/queue plane.

    Parameters
    ----------
    start_method / use_shm:
        See :func:`resolve_start_method` / :func:`resolve_use_shm`.
    trace:
        Workers record their own span timelines and ship them for the
        parent tracer to re-base.
    terminate_grace:
        SIGTERM → SIGKILL escalation grace in seconds.
    spill:
        Give each one-shot worker a spill file for results that can no
        longer reach the queue (parent torn down mid-grace).
    flight / flight_capacity:
        Run per-worker flight recorders: a ring in each worker process
        (shipped incrementally on results) plus a parent-side ring per
        worker index that folds worker events in with parent milestones.
    """

    def __init__(
        self,
        start_method: Optional[str] = None,
        use_shm: Optional[bool] = None,
        trace: bool = False,
        terminate_grace: float = 1.0,
        spill: bool = False,
        flight: bool = False,
        flight_capacity: int = 256,
    ) -> None:
        self.context = mp.get_context(resolve_start_method(start_method))
        self.start_method = resolve_start_method(start_method)
        self.use_shm = resolve_use_shm(use_shm)
        self.trace = trace
        self.terminate_grace = terminate_grace
        self.spill = spill
        self.flight = flight
        self.flight_capacity = flight_capacity
        self.registry: Optional[SegmentRegistry] = None
        self.result_queue: Optional["mp.Queue"] = None
        self.spill_dir: Optional[str] = None
        self._flight: Dict[int, FlightRecorder] = {}
        self._opened = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open(self) -> "ExecRuntime":
        """Open the plane: orphan sweep, registry, queue, spill dir."""
        if self._opened:
            return self
        if self.use_shm:
            try:
                # Blocks stranded by a long-dead parent (SIGKILL, power
                # loss) have no reaper left; sweep them opportunistically.
                reap_orphans()
            except Exception:
                pass
            try:
                self.registry = SegmentRegistry()
            except Exception:
                self.registry = None
        self.result_queue = self.context.Queue()
        if self.spill:
            try:
                self.spill_dir = tempfile.mkdtemp(prefix="repro-ipc-")
            except OSError:
                self.spill_dir = None
        self._opened = True
        return self

    def close(self) -> None:
        """Tear the plane down leak-free (idempotent).

        The registry reap unlinks every segment of the run — including
        those of SIGKILLed workers — whatever state they died in.
        """
        if self.registry is not None:
            self.registry.reap()
            self.registry = None
        if self.result_queue is not None:
            self.result_queue.close()
            self.result_queue.cancel_join_thread()
            self.result_queue = None
        if self.spill_dir is not None:
            shutil.rmtree(self.spill_dir, ignore_errors=True)
            self.spill_dir = None
        self._opened = False

    def publish_aig(
        self,
        aig,
        pool: Optional[SharedPool] = None,
        disable_on_error: bool = False,
    ) -> Optional[SegmentDescriptor]:
        """Publish a miter (plus optional pattern pool) as a segment.

        Returns ``None`` when the plane is off or publishing fails; with
        ``disable_on_error`` a failure also reaps and drops the registry
        (the portfolio's all-or-nothing posture — one payload for every
        worker), without it the caller just falls back to shipping this
        one payload inline (the serve per-job posture).
        """
        if self.registry is None:
            return None
        try:
            arrays, meta = aig_shm_arrays(aig)
            stamp_pool(arrays, meta, pool)
            return self.registry.publish(arrays=arrays, meta=meta)
        except Exception:
            if disable_on_error:
                self.registry.reap()
                self.registry = None
            return None

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker_cfg(self, handle: WorkerHandle, trace_name: str) -> Dict:
        return {
            "trace": self.trace,
            "trace_name": trace_name,
            "shm_token": (
                self.registry.token if self.registry is not None else None
            ),
            "run_pid": os.getpid(),
            "spill_path": handle.spill_path,
            "flight": self.flight,
            "flight_capacity": min(self.flight_capacity, 128),
        }

    def spawn(
        self,
        handle: WorkerHandle,
        handler: Callable,
        payload: Optional[Dict] = None,
        mode: str = "oneshot",
        trace_name: str = "",
        group: Optional[CancelGroup] = None,
        start: bool = True,
    ) -> WorkerHandle:
        """Spawn a worker onto ``handle`` (one-shot job or warm loop).

        ``handler`` must be a module-level callable
        ``(payload, ctx) -> message`` (picklable under ``spawn``).  In
        one-shot mode ``payload`` is the single job; in loop mode the
        worker reads jobs from a fresh ``handle.inbox`` queue until the
        ``None`` sentinel.  Every spawn mints a fresh
        :class:`CancelToken` (joined to ``group`` when given).
        """
        handle.mode = mode
        handle.token = CancelToken(handle.name or f"w{handle.index}")
        if group is not None:
            group.add(handle.token)
        if self.spill_dir is not None:
            handle.spill_path = os.path.join(
                self.spill_dir, f"worker{handle.index}.msg"
            )
        if mode == "oneshot":
            inbox = payload
        else:
            handle.inbox = self.context.Queue()
            inbox = handle.inbox
        process = self.context.Process(
            target=exec_worker_main,
            args=(
                handle.index,
                mode,
                handler,
                inbox,
                self.result_queue,
                self._worker_cfg(
                    handle, trace_name or f"worker:{handle.name}"
                ),
            ),
            daemon=False,
        )
        handle.process = process
        if start:
            process.start()
            handle.started = time.monotonic()
        return handle

    def stop(self, handle: WorkerHandle, reason: Optional[str] = None) -> str:
        """Cancel a worker's token and staged-stop its process.

        Returns the canonical reason recorded on the token ("timeout" or
        "cancelled") — the string policies surface on run records and
        :class:`~repro.sweep.report.EngineFailure.reason`.
        """
        recorded = ""
        if handle.token is not None:
            recorded = handle.token.cancel(reason)
        if handle.process is not None:
            stop_process_staged(
                handle.process,
                self.terminate_grace,
                engine=handle.name or f"w{handle.index}",
            )
        return recorded

    def respawn(
        self,
        handle: WorkerHandle,
        handler: Callable,
        trace_name: str = "",
        reason: Optional[str] = None,
    ) -> WorkerHandle:
        """Stop a loop worker and restart it fresh on the same handle.

        The respawn starts warm at the policy layer (it reloads merged
        caches from disk); here it just gets a fresh inbox, token,
        process and parent-side flight ring.
        """
        self.stop(handle, reason)
        if handle.inbox is not None:
            handle.inbox.close()
            handle.inbox.cancel_join_thread()
            handle.inbox = None
        self._flight.pop(handle.index, None)
        respawns = handle.respawns + 1
        self.spawn(handle, handler, mode="loop", trace_name=trace_name)
        handle.respawns = respawns
        return handle

    # ------------------------------------------------------------------
    # Result absorption
    # ------------------------------------------------------------------

    def poll(self, timeout: float) -> Optional[Dict]:
        """One bounded wait on the result queue (raw message or None)."""
        if self.result_queue is None:
            return None
        try:
            return self.result_queue.get(timeout=max(timeout, 0.0))
        except (queue_module.Empty, OSError, ValueError):
            return None

    def absorb(self, message: Dict) -> Dict:
        """Resolve a raw message's segment references (see transport)."""
        return unpack_message(message, self.registry)

    def merge_trace(self, message: Dict) -> None:
        """Re-base a worker's span timeline onto the parent tracer."""
        payload = message.get("trace")
        if payload is None:
            return
        tracer = get_tracer()
        if tracer.enabled:
            tracer.merge_child(payload)

    def flight_ring(self, index: int) -> FlightRecorder:
        """The parent-side flight ring for one worker index."""
        ring = self._flight.get(index)
        if ring is None:
            ring = FlightRecorder(capacity=self.flight_capacity)
            self._flight[index] = ring
        return ring

    def fold_flight(self, message: Dict) -> None:
        """Fold a message's shipped worker flight events into the ring."""
        events = message.get("flight")
        index = message.get("index")
        if events and index is not None:
            self.flight_ring(int(index)).extend(events)

    def drain_late(
        self, callback: Callable[[Dict], None], max_wait: float = 2.0
    ) -> None:
        """Absorb messages still in flight after all workers stopped.

        Runs on teardown, before the queue is closed: cancelled workers
        post partial traces (and cache deltas) from the SIGTERM handler
        after the main loop has stopped reading, and a late loser's
        cache delta matters even without tracing.  Messages a worker had
        to spill to disk (queue already torn down on its side) are
        collected afterwards from the spill dir.  ``callback`` receives
        each raw message and must tolerate malformed ones.
        """
        deadline = time.monotonic() + max_wait
        while time.monotonic() < deadline:
            message = self.poll(0.05)
            if message is None:
                break
            try:
                callback(message)
            except (KeyError, IndexError, TypeError):
                continue  # malformed late payload: drop it, keep draining
        for message in collect_spilled_messages(self.spill_dir):
            try:
                callback(message)
            except (KeyError, IndexError, TypeError):
                continue
